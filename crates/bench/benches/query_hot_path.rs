//! The bound-pruned query hot path: each search method with and without
//! the inter-category lower-bound tables, at two world sizes, over a
//! mixed-traffic batch (hot pairs + uniform tails, mixed `k` and `|C|`).
//!
//! * `kpne_*` / `pruning_*` — the bound-ordered queue (`cost +
//!   rem[level]`) focuses expansion toward completable sequences; the
//!   table lookup happens once per query (`seq_bounds`), inside the
//!   measured window, so the speedup shown is net of that cost.
//! * `star_*` — StarKOSR keeps its estimate-ordered queue (the sibling
//!   chain requires it; see `kosr-core::star`) and uses the table only as
//!   a whole-query feasibility gate, so parity here is the expected
//!   result, not a regression.
//!
//! Worlds: `1x` is the repo's standard 16×16 grid bench world; `10x` is a
//! 50×51 grid (~10× the vertices) to show the gap scaling with size.

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Method, Query};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn world(w: u32, h: u32, seed: u64) -> IndexedGraph {
    let mut g = road_grid_directed(w, h, seed);
    assign_uniform(&mut g, 6, 20, 5);
    IndexedGraph::build_default(g)
}

fn query_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_hot_path");
    group.sample_size(12);

    for (label, w, h, batch) in [("1x", 16u32, 16u32, 48usize), ("10x", 50, 51, 16)] {
        let ig = world(w, h, 13);
        let queries: Vec<Query> = gen_mixed_traffic(&ig.graph, batch, &TrafficMix::default(), 29)
            .iter()
            .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
            .collect();

        for (mname, method) in [
            ("kpne", Method::Kpne),
            ("pruning", Method::Pk),
            ("star", Method::Sk),
        ] {
            group.bench_function(format!("{mname}_plain/{label}"), |b| {
                b.iter(|| {
                    let mut examined = 0u64;
                    for q in &queries {
                        examined += ig.run_canonical(q, method, u64::MAX).stats.examined_routes;
                    }
                    criterion::black_box(examined)
                });
            });
            group.bench_function(format!("{mname}_bounds/{label}"), |b| {
                b.iter(|| {
                    let mut examined = 0u64;
                    for q in &queries {
                        let sb = ig.seq_bounds(q);
                        examined += ig
                            .run_canonical_opt(q, method, u64::MAX, Some(&sb))
                            .stats
                            .examined_routes;
                    }
                    criterion::black_box(examined)
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, query_hot_path);
criterion_main!(benches);
