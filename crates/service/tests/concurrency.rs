//! Concurrent-correctness net for `kosr-service`: many threads hammering
//! one shared service must produce exactly the answers the single-threaded
//! `IndexedGraph::run` baseline produces, and the cache must never change
//! an answer — only its latency.

use std::sync::Arc;
use std::thread;

use kosr_core::{IndexedGraph, Query};
use kosr_service::{KosrService, QueryPlanner, ServiceConfig};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn build_world() -> (Arc<IndexedGraph>, Vec<Query>) {
    let mut g = road_grid_directed(14, 14, 21);
    assign_uniform(&mut g, 6, 18, 33);
    let ig = Arc::new(IndexedGraph::build_default(g));
    let stream = gen_mixed_traffic(
        &ig.graph,
        200,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        77,
    );
    let queries: Vec<Query> = stream
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    (ig, queries)
}

/// Sequential ground truth with the same per-query plans the service uses.
fn baseline(ig: &IndexedGraph, queries: &[Query]) -> Vec<Vec<u64>> {
    let planner = QueryPlanner::default();
    queries
        .iter()
        .map(|q| {
            let plan = planner.plan(ig, q);
            ig.run(q, plan.method).costs()
        })
        .collect()
}

#[test]
fn n_threads_agree_with_single_threaded_runner() {
    let (ig, queries) = build_world();
    let want = baseline(&ig, &queries);

    let service = Arc::new(KosrService::new(
        Arc::clone(&ig),
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
    ));

    const THREADS: usize = 6;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            thread::spawn(move || {
                // Each submitter walks the workload from a different offset
                // so interleavings differ across threads.
                let n = queries.len();
                let mut got = vec![Vec::new(); n];
                for i in 0..n {
                    let idx = (i + t * 31) % n;
                    let resp = service
                        .submit(queries[idx].clone())
                        .expect("workload fits queue")
                        .wait()
                        .expect("workload completes");
                    got[idx] = resp.outcome.costs();
                }
                got
            })
        })
        .collect();

    for h in handles {
        let got = h.join().expect("submitter thread");
        for (i, costs) in got.into_iter().enumerate() {
            assert_eq!(costs, want[i], "query {i} diverged from sequential run");
        }
    }

    let stats = service.stats();
    assert_eq!(stats.completed, (THREADS * queries.len()) as u64);
    assert_eq!(stats.submitted, stats.completed);
    // 6 threads × a 40%-hot stream over one shared cache: most work is
    // answered from cache, all of it correctly.
    assert!(
        stats.cache_hits > stats.completed / 2,
        "cache hits {} of {}",
        stats.cache_hits,
        stats.completed
    );
    assert!(stats.latency_p50 <= stats.latency_p99);
    assert!(stats.qps > 0.0);
}

#[test]
fn cached_and_uncached_responses_are_bit_identical() {
    let (ig, queries) = build_world();
    let service = KosrService::new(
        Arc::clone(&ig),
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
    );

    // First pass: all cold. Second pass: all hot (same canonical keys).
    let cold = service.run_batch(&queries[..50]);
    let hot = service.run_batch(&queries[..50]);
    let mut hits = 0;
    for (a, b) in cold.iter().zip(&hot) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.outcome.costs(), b.outcome.costs());
        let va: Vec<_> = a.outcome.witnesses.iter().map(|w| &w.vertices).collect();
        let vb: Vec<_> = b.outcome.witnesses.iter().map(|w| &w.vertices).collect();
        assert_eq!(va, vb, "cache must return identical routes");
        hits += b.cached as usize;
    }
    assert_eq!(hits, 50, "second pass must be served from cache");
}

#[test]
fn disabled_cache_still_agrees() {
    let (ig, queries) = build_world();
    let want = baseline(&ig, &queries[..40]);
    let service = KosrService::new(
        Arc::clone(&ig),
        ServiceConfig {
            workers: 4,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let out = service.run_batch(&queries[..40]);
    for (resp, want) in out.iter().zip(&want) {
        let resp = resp.as_ref().unwrap();
        assert!(!resp.cached);
        assert_eq!(&resp.outcome.costs(), want);
    }
    assert_eq!(service.stats().cache_hits, 0);
}
