//! Cross-query witness reuse: a cache of remaining-sequence bound
//! fragments shared by queries that agree on part of their shape.
//!
//! A query's [`SeqBounds`] suffix array factors into two independent
//! pieces (see `kosr_index::bounds`):
//!
//! * the **head** `dis(s, C₁)` — depends only on `(source, first
//!   category)`;
//! * the **tail** `rem[1..]` — the category-chain suffix, which depends
//!   only on `(categories, target)` and not on the source at all.
//!
//! Real workloads repeat both: commuters share destinations and errand
//! sequences, venues share first stops. Caching the two fragments under
//! their own keys lets a query whose exact `(s, t, C, k)` tuple was never
//! seen before still skip the label merge-joins — the expensive part of
//! bound assembly — whenever *either* fragment was computed for any
//! earlier query.
//!
//! Entries are exact distances over the current index, so they are
//! **epoch-guarded**: the cache remembers the index epoch it was filled
//! against and self-clears when handed a newer one (the same linearization
//! point the result cache uses). Capacity is bounded by clear-on-full —
//! fragments are a few machine words each and recomputing one is cheap, so
//! eviction bookkeeping would cost more than it saves.

use std::sync::Arc;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{CategoryId, FxHashMap, VertexId, Weight};
use kosr_index::SeqBounds;

/// Default fragment capacity per map (heads and tails each).
const DEFAULT_CAPACITY: usize = 4096;

/// Key for a cached tail fragment: the category suffix and the target.
type TailKey = (Box<[CategoryId]>, VertexId);

/// An epoch-guarded cache of [`SeqBounds`] fragments (see the module
/// docs). Not internally synchronized — the service keeps it behind a
/// mutex next to the result cache.
#[derive(Debug)]
pub struct WitnessCache {
    /// The index epoch the cached fragments were computed against.
    epoch: u64,
    /// `(source, first category) → dis(source, C₁)`.
    heads: FxHashMap<(VertexId, CategoryId), Weight>,
    /// `(categories, target) → rem[1..]` suffix chain.
    tails: FxHashMap<TailKey, Arc<Vec<Weight>>>,
    capacity: usize,
}

impl Default for WitnessCache {
    fn default() -> WitnessCache {
        WitnessCache::new(DEFAULT_CAPACITY)
    }
}

impl WitnessCache {
    /// A cache holding at most `capacity` head and `capacity` tail
    /// fragments (`0` keeps nothing — every call recomputes).
    pub fn new(capacity: usize) -> WitnessCache {
        WitnessCache {
            epoch: 0,
            heads: FxHashMap::default(),
            tails: FxHashMap::default(),
            capacity,
        }
    }

    /// Fragments currently held, `(heads, tails)`.
    pub fn entries(&self) -> (usize, usize) {
        (self.heads.len(), self.tails.len())
    }

    /// Drops every fragment (epoch bumps call this internally).
    pub fn clear(&mut self) {
        self.heads.clear();
        self.tails.clear();
    }

    /// Assembles `query`'s [`SeqBounds`] against `ig` (which must be the
    /// index of `epoch`), reusing cached fragments where possible.
    /// Returns the bounds plus how many fragments were served from cache
    /// (0–2: head and/or tail).
    pub fn seq_bounds(&mut self, epoch: u64, ig: &IndexedGraph, query: &Query) -> (SeqBounds, u64) {
        if epoch != self.epoch {
            // Fragments are exact distances over a superseded index:
            // worthless, possibly inadmissible. Start over.
            self.clear();
            self.epoch = epoch;
        }
        if query.categories.is_empty() {
            // rem = [dis(s,t), 0]: two label lookups, nothing worth caching.
            return (ig.seq_bounds(query), 0);
        }
        let mut hits = 0u64;

        let head_key = (query.source, query.categories[0]);
        let to_first = match self.heads.get(&head_key) {
            Some(&d) => {
                hits += 1;
                d
            }
            None => {
                let d = ig
                    .bounds
                    .to_category(&ig.labels, query.source, query.categories[0]);
                if self.capacity > 0 {
                    if self.heads.len() >= self.capacity {
                        self.heads.clear();
                    }
                    self.heads.insert(head_key, d);
                }
                d
            }
        };

        let tail_key = (query.categories.clone().into_boxed_slice(), query.target);
        let suffix = match self.tails.get(&tail_key) {
            Some(s) => {
                hits += 1;
                Arc::clone(s)
            }
            None => {
                let s = Arc::new(ig.bounds.suffix_chain(
                    &ig.labels,
                    query.target,
                    &query.categories,
                ));
                if self.capacity > 0 {
                    if self.tails.len() >= self.capacity {
                        self.tails.clear();
                    }
                    self.tails.insert(tail_key, Arc::clone(&s));
                }
                s
            }
        };

        (
            SeqBounds::from_parts(to_first, suffix.as_ref().clone()),
            hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;

    fn fixture() -> (IndexedGraph, Query, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        (ig, q, fx)
    }

    #[test]
    fn fragments_are_reused_and_recombine_exactly() {
        let (ig, q, fx) = fixture();
        let mut cache = WitnessCache::default();

        let (cold, hits) = cache.seq_bounds(0, &ig, &q);
        assert_eq!(hits, 0, "cold cache");
        assert_eq!(cold, ig.seq_bounds(&q));
        assert_eq!(cache.entries(), (1, 1));

        let (warm, hits) = cache.seq_bounds(0, &ig, &q);
        assert_eq!(hits, 2, "head and tail both reused");
        assert_eq!(warm, cold);

        // A different source shares the tail but not the head.
        let moved = Query::new(fx.t, fx.t, q.categories.clone(), 3);
        let (sb, hits) = cache.seq_bounds(0, &ig, &moved);
        assert_eq!(hits, 1, "tail only");
        assert_eq!(sb, ig.seq_bounds(&moved));

        // Same source + first category but a different sequence shares
        // the head but not the tail.
        let shorter = Query::new(fx.s, fx.t, vec![fx.ma, fx.ci], 3);
        let (sb, hits) = cache.seq_bounds(0, &ig, &shorter);
        assert_eq!(hits, 1, "head only");
        assert_eq!(sb, ig.seq_bounds(&shorter));
    }

    #[test]
    fn epoch_bump_clears_and_category_free_queries_bypass() {
        let (ig, q, fx) = fixture();
        let mut cache = WitnessCache::default();
        let _ = cache.seq_bounds(0, &ig, &q);
        assert_eq!(cache.entries(), (1, 1));

        let (sb, hits) = cache.seq_bounds(1, &ig, &q);
        assert_eq!(hits, 0, "new epoch starts cold");
        assert_eq!(sb, ig.seq_bounds(&q));
        assert_eq!(cache.entries(), (1, 1));

        let empty = Query::new(fx.s, fx.t, vec![], 1);
        let (sb, hits) = cache.seq_bounds(1, &ig, &empty);
        assert_eq!(hits, 0);
        assert_eq!(sb, ig.seq_bounds(&empty));
        assert_eq!(cache.entries(), (1, 1), "category-free queries not cached");
    }

    #[test]
    fn capacity_is_clear_on_full_and_zero_disables() {
        let (ig, q, fx) = fixture();
        let mut cache = WitnessCache::new(1);
        let _ = cache.seq_bounds(0, &ig, &q);
        assert_eq!(cache.entries(), (1, 1));
        // A second distinct head/tail pair trips clear-on-full, then lands.
        let other = Query::new(fx.t, fx.s, vec![fx.re], 1);
        let _ = cache.seq_bounds(0, &ig, &other);
        assert_eq!(cache.entries(), (1, 1));
        let (_, hits) = cache.seq_bounds(0, &ig, &other);
        assert_eq!(hits, 2, "the survivor is the newest pair");

        let mut disabled = WitnessCache::new(0);
        let (sb, hits) = disabled.seq_bounds(0, &ig, &q);
        assert_eq!((hits, disabled.entries()), (0, (0, 0)));
        assert_eq!(sb, ig.seq_bounds(&q));
        let (_, hits) = disabled.seq_bounds(0, &ig, &q);
        assert_eq!(hits, 0, "nothing retained, nothing reused");
    }
}
