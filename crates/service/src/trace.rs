//! kosr-trace: dependency-free per-query tracing.
//!
//! A [`TraceContext`] — 128-bit trace id, parent span id, sampled flag —
//! is minted at the edge, propagated through the router fan-out and the
//! wire (protocol v3 carries it as an optional trace header on Query
//! frames), and recorded as [`Span`]s at every tier: gateway parse /
//! serialize, router fan-out / merge, and replica admission / queue /
//! cache / execute with the paper's pruning counters (PNE expansions,
//! dominated candidates, expansion budget consumed) as tags.
//!
//! Everything here is allocation-light and lock-cheap by construction:
//!
//! * **Deterministic ids** — span ids derive from the trace id, the
//!   parent span id and a child index through [`splitmix64`], so every
//!   tier can mint ids independently without coordination and a
//!   reassembled trace still has unique, parent-resolvable ids.
//! * **Deterministic sampling** — [`sample_decision`] hashes the trace id
//!   against a ratio, so every tier (and a retry on another replica)
//!   agrees on the decision without extra wire state.
//! * **Bounded retention** — spans and traces land in fixed-capacity
//!   rings ([`SpanRing`], inside [`TraceStore`]); the worst-N traces by
//!   wall time survive in a [`SlowQueryLog`] even after the recent ring
//!   has lapped them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// The 64-bit finalizer of splitmix64 — the id/sampling hash used
/// throughout the trace layer. Good avalanche, no dependencies.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 128-bit trace identifier, rendered as 32 lowercase hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Mints a fresh id from the wall clock and a process-wide counter,
    /// mixed through [`splitmix64`] — unique without an RNG dependency.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ splitmix64(n));
        let lo = splitmix64(hi ^ n.wrapping_add(1));
        let id = ((hi as u128) << 64) | lo as u128;
        TraceId(if id == 0 { 1 } else { id })
    }

    /// The high 64 bits.
    pub fn hi(&self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The low 64 bits.
    pub fn lo(&self) -> u64 {
        self.0 as u64
    }

    /// Rebuilds an id from its halves.
    pub fn from_parts(hi: u64, lo: u64) -> TraceId {
        TraceId(((hi as u128) << 64) | lo as u128)
    }

    /// The canonical 32-hex-digit rendering (what `X-Kosr-Trace-Id`
    /// carries and `/v1/traces/{id}` accepts).
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the canonical rendering. `None` unless exactly 32 hex
    /// digits.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// A span identifier, unique within its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Derives the id of the `child_index`-th child of `parent` — every tier
/// mints ids this way, so ids are unique and reproducible without any
/// cross-tier coordination.
pub fn span_id_for(trace: TraceId, parent: SpanId, child_index: u64) -> SpanId {
    SpanId(splitmix64(
        trace.lo() ^ splitmix64(parent.0) ^ splitmix64(child_index.wrapping_add(1)),
    ))
}

/// The propagated trace header: everything a downstream tier needs to
/// attach its spans to the right parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this request belongs to.
    pub trace_id: TraceId,
    /// The span the receiving tier should parent its root span under.
    pub parent_span: SpanId,
    /// Whether spans should be recorded for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// A root context for a freshly minted trace. The root span id is
    /// derived from the trace id, so any tier can recompute it.
    pub fn root(trace_id: TraceId, sampled: bool) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: SpanId(splitmix64(trace_id.lo() ^ trace_id.hi())),
            sampled,
        }
    }

    /// The context a downstream tier receives when its spans should hang
    /// under `span`.
    pub fn child_of(&self, span: SpanId) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: span,
            sampled: self.sampled,
        }
    }
}

/// Deterministic per-trace-id sampling: every tier computes the same
/// decision from the id alone. `ratio` is clamped to `[0, 1]`.
pub fn sample_decision(trace_id: TraceId, ratio: f64) -> bool {
    if ratio >= 1.0 {
        return true;
    }
    if ratio <= 0.0 {
        return false;
    }
    // 53 uniform bits → [0, 1): compare against the ratio.
    let bits = splitmix64(trace_id.lo() ^ splitmix64(trace_id.hi())) >> 11;
    (bits as f64) / ((1u64 << 53) as f64) < ratio
}

/// A span tag value.
#[derive(Clone, Debug, PartialEq)]
pub enum TagValue {
    /// An unsigned counter (PNE expansions, budget consumed, …).
    U64(u64),
    /// A short string (planner method, …).
    Str(String),
    /// A flag (cache hit, truncated, …).
    Bool(bool),
}

/// One recorded span: a named interval with a parent link and tags.
///
/// Times are *relative* — `start_us` is the offset from the parent
/// span's start and `duration_us` the span's own wall time — so spans
/// recorded on different hosts need no clock synchronization to
/// assemble into one tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Unique (within the trace) span id.
    pub id: SpanId,
    /// Parent span id; `None` only for the trace's root span.
    pub parent: Option<SpanId>,
    /// Stage name (`gateway`, `router`, `shard`, `replica`, `admission`,
    /// `queue`, `cache`, `execute`, `merge`, `parse`, `serialize`).
    pub name: String,
    /// Start offset from the parent span's start, in microseconds.
    pub start_us: u64,
    /// Wall time of this span, in microseconds.
    pub duration_us: u64,
    /// Tags: algorithm-level counters and flags.
    pub tags: Vec<(String, TagValue)>,
}

impl Span {
    /// A tag-less span.
    pub fn new(
        id: SpanId,
        parent: Option<SpanId>,
        name: &str,
        start_us: u64,
        duration_us: u64,
    ) -> Span {
        Span {
            id,
            parent,
            name: name.to_string(),
            start_us,
            duration_us,
            tags: Vec::new(),
        }
    }

    /// Adds a tag (builder style).
    pub fn tag(mut self, key: &str, value: TagValue) -> Span {
        self.tags.push((key.to_string(), value));
        self
    }

    /// The value of tag `key`, if present.
    pub fn tag_value(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The value of a `U64` tag `key`, if present.
    pub fn tag_u64(&self, key: &str) -> Option<u64> {
        match self.tag_value(key) {
            Some(TagValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// One assembled trace: a flat span list forming a tree via parent ids.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The trace id.
    pub trace_id: TraceId,
    /// Total wall time observed at the tier that assembled the trace.
    pub wall_us: u64,
    /// Whether the trace was sampled (vs captured only because it was
    /// slow).
    pub sampled: bool,
    /// All spans, root first by convention (assembly does not rely on
    /// order).
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span (the unique span without a parent), if present.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// The span with id `id`, if present.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The first span named `name`, if present.
    pub fn span_named(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Children of `id`, in recorded order.
    pub fn children_of(&self, id: SpanId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Structural validation — the invariants the trace property suite
    /// holds across fault schedules:
    ///
    /// * span ids are unique;
    /// * exactly one root (parent-less) span exists;
    /// * every parent id resolves to a span in the trace (no orphans);
    /// * every child's duration fits inside its parent's;
    /// * sequential replica stages (`admission`/`queue`/`cache`/
    ///   `execute` under a `replica` span) sum to at most their parent's
    ///   wall time.
    pub fn validate(&self) -> Result<(), String> {
        let mut ids = std::collections::HashSet::new();
        for s in &self.spans {
            if !ids.insert(s.id) {
                return Err(format!("duplicate span id {:#x} ({})", s.id.0, s.name));
            }
        }
        let roots: Vec<&Span> = self.spans.iter().filter(|s| s.parent.is_none()).collect();
        if roots.len() != 1 {
            return Err(format!("{} root spans, expected exactly 1", roots.len()));
        }
        for s in &self.spans {
            let Some(pid) = s.parent else { continue };
            let Some(parent) = self.span(pid) else {
                return Err(format!(
                    "orphan span {} (parent {:#x} missing)",
                    s.name, pid.0
                ));
            };
            if s.duration_us > parent.duration_us {
                return Err(format!(
                    "span {} ({}us) exceeds its parent {} ({}us)",
                    s.name, s.duration_us, parent.name, parent.duration_us
                ));
            }
        }
        // Replica stages run sequentially: their durations must sum to at
        // most the replica span's wall time.
        for replica in self.spans.iter().filter(|s| s.name == "replica") {
            let stage_sum: u64 = self
                .children_of(replica.id)
                .iter()
                .map(|c| c.duration_us)
                .sum();
            if stage_sum > replica.duration_us {
                return Err(format!(
                    "replica stages sum to {}us > replica wall {}us",
                    stage_sum, replica.duration_us
                ));
            }
        }
        if let Some(root) = self.root() {
            if root.duration_us > self.wall_us {
                return Err(format!(
                    "root span {}us exceeds trace wall {}us",
                    root.duration_us, self.wall_us
                ));
            }
        }
        Ok(())
    }
}

/// A fixed-capacity, lock-cheap ring of recent spans — the per-tier
/// diagnostic buffer. One atomic fetch-add claims a slot; each slot has
/// its own mutex, so writers never contend unless the ring laps itself.
pub struct SpanRing {
    slots: Vec<Mutex<Option<Span>>>,
    cursor: AtomicU64,
}

impl SpanRing {
    /// A ring retaining the last `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Records `span`, overwriting the oldest entry once full.
    pub fn record(&self, span: Span) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[i].lock().unwrap() = Some(span);
    }

    /// Spans recorded so far (capped at capacity), oldest first.
    pub fn recent(&self) -> Vec<Span> {
        let written = self.cursor.load(Ordering::Relaxed) as usize;
        let cap = self.slots.len();
        let start = written.saturating_sub(cap);
        (start..written)
            .filter_map(|i| self.slots[i % cap].lock().unwrap().clone())
            .collect()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }
}

/// A bounded worst-N log of traces by wall time: the slowest queries
/// survive even after the recent ring has lapped them.
pub struct SlowQueryLog {
    capacity: usize,
    inner: Mutex<Vec<Trace>>,
}

impl SlowQueryLog {
    /// A log retaining the `capacity` slowest traces (minimum 1).
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            capacity: capacity.max(1),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Offers a trace; it is retained iff it is among the worst-N seen.
    /// Returns whether it was admitted.
    pub fn offer(&self, trace: Trace) -> bool {
        let mut log = self.inner.lock().unwrap();
        if log.len() < self.capacity {
            log.push(trace);
            log.sort_by_key(|t| std::cmp::Reverse(t.wall_us));
            return true;
        }
        // Full: replace the fastest retained trace if ours is slower.
        let last = log.len() - 1;
        if trace.wall_us > log[last].wall_us {
            log[last] = trace;
            log.sort_by_key(|t| std::cmp::Reverse(t.wall_us));
            return true;
        }
        false
    }

    /// The retained traces, slowest first.
    pub fn worst(&self) -> Vec<Trace> {
        self.inner.lock().unwrap().clone()
    }
}

/// The edge's trace retention: a recent ring, the slow-query log, and
/// summary counters for `/metrics`.
pub struct TraceStore {
    recent: Vec<Mutex<Option<Trace>>>,
    cursor: AtomicU64,
    slow: SlowQueryLog,
    sampled: AtomicU64,
    slow_only: AtomicU64,
}

impl TraceStore {
    /// A store retaining `recent_capacity` recent traces and the
    /// `slow_capacity` slowest ones.
    pub fn new(recent_capacity: usize, slow_capacity: usize) -> TraceStore {
        TraceStore {
            recent: (0..recent_capacity.max(1))
                .map(|_| Mutex::new(None))
                .collect(),
            cursor: AtomicU64::new(0),
            slow: SlowQueryLog::new(slow_capacity),
            sampled: AtomicU64::new(0),
            slow_only: AtomicU64::new(0),
        }
    }

    /// Records a sampled, fully assembled trace: it enters the recent
    /// ring and competes for the slow log.
    pub fn record(&self, trace: Trace) {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        self.slow.offer(trace.clone());
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.recent.len();
        *self.recent[i].lock().unwrap() = Some(trace);
    }

    /// Records an *unsampled* request's degraded (edge-only) trace: it
    /// competes for the slow log only — the always-sample-on-slow tail
    /// capture — and is counted iff admitted.
    pub fn record_slow_only(&self, trace: Trace) -> bool {
        let admitted = self.slow.offer(trace);
        if admitted {
            self.slow_only.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Looks a trace up by id, searching the recent ring then the slow
    /// log.
    pub fn get(&self, id: TraceId) -> Option<Trace> {
        for slot in &self.recent {
            if let Some(t) = slot.lock().unwrap().as_ref() {
                if t.trace_id == id {
                    return Some(t.clone());
                }
            }
        }
        self.slow.worst().into_iter().find(|t| t.trace_id == id)
    }

    /// Recent traces, oldest first (capped at the ring capacity).
    pub fn recent(&self) -> Vec<Trace> {
        let written = self.cursor.load(Ordering::Relaxed) as usize;
        let cap = self.recent.len();
        let start = written.saturating_sub(cap);
        (start..written)
            .filter_map(|i| self.recent[i % cap].lock().unwrap().clone())
            .collect()
    }

    /// The slow-query log, slowest first.
    pub fn slow(&self) -> Vec<Trace> {
        self.slow.worst()
    }

    /// Sampled traces recorded so far.
    pub fn sampled_total(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Unsampled traces captured by the slow-tail path.
    pub fn slow_only_total(&self) -> u64 {
        self.slow_only.load(Ordering::Relaxed)
    }
}

impl crate::MetricsSource for TraceStore {
    fn export(&self, registry: &mut crate::MetricsRegistry) {
        registry.counter(
            "kosr_trace_sampled_total",
            "Sampled traces recorded at the edge",
            &[],
            self.sampled_total() as f64,
        );
        registry.counter(
            "kosr_trace_slow_only_total",
            "Unsampled slow queries captured by the tail sampler",
            &[],
            self.slow_only_total() as f64,
        );
        registry.gauge(
            "kosr_trace_recent",
            "Traces currently held in the recent ring",
            &[],
            self.recent().len() as f64,
        );
        registry.gauge(
            "kosr_trace_slow_retained",
            "Traces currently held in the slow-query log",
            &[],
            self.slow().len() as f64,
        );
        registry.gauge(
            "kosr_trace_slowest_seconds",
            "Wall time of the slowest retained trace in seconds",
            &[],
            self.slow().first().map_or(0.0, |t| t.wall_us as f64 * 1e-6),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_roundtrip_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_eq!(TraceId::parse_hex(&a.to_hex()), Some(a));
        assert_eq!(a.to_hex().len(), 32);
        assert_eq!(TraceId::parse_hex("zz"), None);
        assert_eq!(TraceId::from_parts(a.hi(), a.lo()), a);
    }

    #[test]
    fn sampling_is_deterministic_and_ratio_shaped() {
        let id = TraceId::mint();
        assert_eq!(sample_decision(id, 0.5), sample_decision(id, 0.5));
        assert!(sample_decision(id, 1.0));
        assert!(!sample_decision(id, 0.0));
        let hits = (0..2000)
            .filter(|_| sample_decision(TraceId::mint(), 0.25))
            .count();
        assert!((300..700).contains(&hits), "{hits} of 2000 at ratio 0.25");
    }

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let t = TraceId(42);
        let root = TraceContext::root(t, true).parent_span;
        let a = span_id_for(t, root, 0);
        let b = span_id_for(t, root, 1);
        let c = span_id_for(t, a, 0);
        assert_eq!(a, span_id_for(t, root, 0));
        assert!(a != b && a != c && b != c && a != root);
    }

    fn toy_trace() -> Trace {
        let t = TraceId(7);
        let root = TraceContext::root(t, true).parent_span;
        let replica = span_id_for(t, root, 0);
        Trace {
            trace_id: t,
            wall_us: 120,
            sampled: true,
            spans: vec![
                Span::new(root, None, "gateway", 0, 100),
                Span::new(replica, Some(root), "replica", 5, 80),
                Span::new(
                    span_id_for(t, replica, 0),
                    Some(replica),
                    "admission",
                    0,
                    10,
                ),
                Span::new(span_id_for(t, replica, 1), Some(replica), "execute", 10, 60),
            ],
        }
    }

    #[test]
    fn validation_accepts_wellformed_and_rejects_broken_trees() {
        let good = toy_trace();
        good.validate().unwrap();
        assert_eq!(good.root().unwrap().name, "gateway");
        assert_eq!(good.children_of(good.root().unwrap().id).len(), 1);
        assert_eq!(good.span_named("execute").unwrap().duration_us, 60);

        let mut orphan = good.clone();
        orphan.spans[1].parent = Some(SpanId(999));
        assert!(orphan.validate().unwrap_err().contains("orphan"));

        let mut dup = good.clone();
        dup.spans[3].id = dup.spans[2].id;
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut oversize = good.clone();
        oversize.spans[1].duration_us = 500;
        assert!(oversize.validate().unwrap_err().contains("exceeds"));

        let mut oversum = good.clone();
        oversum.spans[2].duration_us = 30;
        oversum.spans[3].duration_us = 60;
        assert!(oversum.validate().unwrap_err().contains("stages sum"));

        let mut tworoots = good;
        tworoots.spans[1].parent = None;
        assert!(tworoots.validate().unwrap_err().contains("root"));
    }

    #[test]
    fn span_ring_retains_the_newest_spans() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.record(Span::new(SpanId(i), None, "s", 0, i));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(
            recent.iter().map(|s| s.id.0).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn slow_log_retains_worst_n_by_wall_time() {
        let log = SlowQueryLog::new(3);
        let mk = |wall: u64| Trace {
            trace_id: TraceId(wall as u128),
            wall_us: wall,
            sampled: true,
            spans: Vec::new(),
        };
        for wall in [10, 50, 20, 5, 90, 30] {
            log.offer(mk(wall));
        }
        let walls: Vec<u64> = log.worst().iter().map(|t| t.wall_us).collect();
        assert_eq!(walls, vec![90, 50, 30]);
        assert!(!log.offer(mk(1)), "faster than everything retained");
        assert!(log.offer(mk(1000)));
        assert_eq!(log.worst()[0].wall_us, 1000);
    }

    #[test]
    fn trace_store_records_looks_up_and_counts() {
        let store = TraceStore::new(4, 2);
        let mk = |id: u128, wall: u64| Trace {
            trace_id: TraceId(id),
            wall_us: wall,
            sampled: true,
            spans: Vec::new(),
        };
        store.record(mk(1, 10));
        store.record(mk(2, 99));
        assert_eq!(store.get(TraceId(1)).unwrap().wall_us, 10);
        assert_eq!(store.recent().len(), 2);
        assert_eq!(store.sampled_total(), 2);

        // Unsampled slow-tail capture: admitted while the log has room…
        assert!(store.record_slow_only(mk(3, 50)));
        assert_eq!(store.slow_only_total(), 1);
        // …rejected when faster than the retained worst-N.
        assert!(!store.record_slow_only(mk(4, 1)));
        assert_eq!(store.slow_only_total(), 1);
        // Slow-only traces are findable by id even off the recent ring.
        assert_eq!(store.get(TraceId(3)).unwrap().wall_us, 50);

        // The ring laps: old traces fall out of `recent` but the slow log
        // keeps the worst.
        for i in 10..20 {
            store.record(mk(i, i as u64));
        }
        assert_eq!(store.recent().len(), 4);
        assert!(store.get(TraceId(2)).is_some(), "slowest survives the lap");
    }
}
