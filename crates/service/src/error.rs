//! The typed error / admission-control surface of the service.

use kosr_core::{GraphUpdateError, QueryError};
use kosr_graph::{CategoryId, VertexId};
use std::time::Duration;

/// Why the service refused, dropped, or failed a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The submission queue is at capacity; the caller should back off and
    /// retry (the service sheds load instead of buffering unboundedly).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The query spent longer than its deadline waiting in the queue.
    DeadlineExceeded {
        /// The deadline the query was admitted with.
        deadline: Duration,
    },
    /// The search exhausted its examined-routes budget before finding all
    /// k routes; the partial answer is discarded (and never cached).
    BudgetExhausted {
        /// The expansion budget the planner granted.
        examined_budget: u64,
    },
    /// The query failed validation against the served graph (bad endpoint,
    /// unknown or empty category, `k == 0`) — rejected at admission, before
    /// consuming worker time.
    InvalidQuery(QueryError),
    /// The service is draining and no longer accepts work.
    ShuttingDown,
    /// The worker executing this query disappeared without responding
    /// (a worker panic); the query's fate is unknown.
    WorkerLost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServiceError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            ServiceError::BudgetExhausted { examined_budget } => {
                write!(
                    f,
                    "expansion budget of {examined_budget} examined routes exhausted"
                )
            }
            ServiceError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::WorkerLost => write!(f, "worker lost before responding"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidQuery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> ServiceError {
        ServiceError::InvalidQuery(e)
    }
}

/// Why [`crate::KosrService::apply_update`] refused a dynamic update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// A vertex id exceeds the served graph's vertex count.
    VertexOutOfRange(VertexId),
    /// A category id exceeds the served graph's category count.
    UnknownCategory(CategoryId),
    /// The structural update was rejected by the index layer (self-loop,
    /// weight increase, …).
    Graph(GraphUpdateError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::VertexOutOfRange(v) => write!(f, "vertex {v:?} out of range"),
            UpdateError::UnknownCategory(c) => write!(f, "unknown category {c:?}"),
            UpdateError::Graph(e) => write!(f, "graph update rejected: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<GraphUpdateError> for UpdateError {
    fn from(e: GraphUpdateError) -> UpdateError {
        UpdateError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(ServiceError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServiceError::DeadlineExceeded {
            deadline: Duration::from_millis(5)
        }
        .to_string()
        .contains("deadline"));
        assert!(ServiceError::BudgetExhausted {
            examined_budget: 500
        }
        .to_string()
        .contains("500"));
        let e: ServiceError = QueryError::ZeroK.into();
        assert!(e.to_string().contains("positive"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServiceError::ShuttingDown).is_none());
    }
}
