//! The fleet-wide metrics surface: one [`MetricsSource`] trait every
//! serving layer exports its counters through, a [`MetricsRegistry`] that
//! collects samples and renders the Prometheus text exposition format, and
//! a [`validate_prometheus_text`] checker the format tests (and the
//! gateway's `/metrics` suite) run against rendered output.
//!
//! Before this module each layer grew an ad-hoc snapshot struct
//! ([`ServiceStats`], shard replica health vectors, the supervisor's
//! report) with its own display logic; an edge that wants one `/metrics`
//! page had to know all of them. Now a source implements
//!
//! ```ignore
//! impl MetricsSource for MyLayer {
//!     fn export(&self, registry: &mut MetricsRegistry) { ... }
//! }
//! ```
//!
//! and the edge just walks its sources. Snapshot structs stay — they are
//! the programmatic API — but the *export* path is this one trait.

use std::fmt::Write as _;
use std::time::Duration;

use crate::stats::ServiceStats;

/// What a metric family measures, in Prometheus terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically nondecreasing (resets only on restart).
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A cumulative distribution: `name_bucket{le="…"}` samples plus
    /// `name_sum` / `name_count`, emitted via
    /// [`MetricsRegistry::histogram`].
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Sample {
    /// Appended to the family name on the sample line — `"_bucket"`,
    /// `"_sum"`, `"_count"` for histogram series, empty otherwise.
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// Collects metric samples from any number of [`MetricsSource`]s and
/// renders them in the Prometheus text exposition format (version 0.0.4).
///
/// Families are keyed by metric name: the first registration of a name
/// fixes its `# HELP`/`# TYPE` header, later samples under the same name
/// append to the family (this is how per-shard sources emit one family
/// with a `shard` label per sample).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

/// `true` iff `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` iff `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`, not starting with `__`).
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    !name.starts_with("__") && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one sample. The first call for a `name` fixes its help text
    /// and kind; mismatched re-registrations keep the original header (the
    /// sample still lands in the family).
    ///
    /// # Panics
    /// Panics on an invalid metric or label name — metric names are
    /// compile-time constants in every source, so a bad one is a bug, not
    /// an input.
    pub fn sample(
        &mut self,
        name: &str,
        kind: MetricKind,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let family = match self.families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                self.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                self.families.last_mut().unwrap()
            }
        };
        family.samples.push(Sample {
            suffix: "",
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Records a full histogram family: one `name_bucket{le="…"}` sample
    /// per `(upper_bound, cumulative_count)` pair in `buckets`, a closing
    /// `le="+Inf"` bucket at `count`, and the `name_sum` / `name_count`
    /// series — the real Prometheus histogram shape, not quantile gauges.
    /// `buckets` must be cumulative and sorted by upper bound (as
    /// [`crate::LatencyHistogram::cumulative_octaves`] returns them).
    ///
    /// # Panics
    /// Panics on invalid metric/label names, like
    /// [`MetricsRegistry::sample`].
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let family = match self.families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                self.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind: MetricKind::Histogram,
                    samples: Vec::new(),
                });
                self.families.last_mut().unwrap()
            }
        };
        let base: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut bucket = |le: String, value: f64| {
            let mut labels = base.clone();
            labels.push(("le".to_string(), le));
            family.samples.push(Sample {
                suffix: "_bucket",
                labels,
                value,
            });
        };
        for &(le, cumulative) in buckets {
            bucket(format!("{le}"), cumulative as f64);
        }
        bucket("+Inf".to_string(), count as f64);
        family.samples.push(Sample {
            suffix: "_sum",
            labels: base.clone(),
            value: sum,
        });
        family.samples.push(Sample {
            suffix: "_count",
            labels: base,
            value: count as f64,
        });
    }

    /// Records a counter sample (see [`MetricsRegistry::sample`]).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.sample(name, MetricKind::Counter, help, labels, value);
    }

    /// Records a gauge sample (see [`MetricsRegistry::sample`]).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.sample(name, MetricKind::Gauge, help, labels, value);
    }

    /// Collects everything `source` exports into this registry.
    pub fn collect(&mut self, source: &dyn MetricsSource) {
        source.export(self);
    }

    /// Number of metric families registered so far.
    pub fn num_families(&self) -> usize {
        self.families.len()
    }

    /// Renders the Prometheus text exposition format: `# HELP` / `# TYPE`
    /// headers followed by one `name{labels} value` line per sample,
    /// terminated by a newline. [`validate_prometheus_text`] accepts every
    /// rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            escape_help(&f.help, &mut out);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                out.push_str(&f.name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(k);
                        out.push_str("=\"");
                        escape_label_value(v, &mut out);
                        out.push('"');
                    }
                    out.push('}');
                }
                out.push(' ');
                if s.value.is_nan() {
                    out.push_str("NaN");
                } else if s.value == f64::INFINITY {
                    out.push_str("+Inf");
                } else if s.value == f64::NEG_INFINITY {
                    out.push_str("-Inf");
                } else {
                    let _ = write!(out, "{}", s.value);
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Anything that can export its counters into a [`MetricsRegistry`] — the
/// one export trait the service, shard, supervisor and gateway layers all
/// implement instead of each growing its own snapshot-to-text path.
pub trait MetricsSource {
    /// Appends this source's current samples to `registry`.
    fn export(&self, registry: &mut MetricsRegistry);
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

impl ServiceStats {
    /// Exports this snapshot's counters under the `kosr_service_*` metric
    /// names, tagging every sample with `labels` (a sharded deployment
    /// passes `[("shard", "3")]` so one family carries all replicas).
    pub fn export_labeled(&self, registry: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let mut l: Vec<(&str, &str)> = labels.to_vec();
        registry.counter(
            "kosr_service_submitted_total",
            "Queries accepted into the submission queue",
            &l,
            self.submitted as f64,
        );
        registry.counter(
            "kosr_service_completed_total",
            "Queries answered successfully (cache or worker)",
            &l,
            self.completed as f64,
        );
        registry.counter(
            "kosr_service_rejected_queue_full_total",
            "Rejections because the submission queue was full",
            &l,
            self.rejected_queue_full as f64,
        );
        registry.counter(
            "kosr_service_deadline_exceeded_total",
            "Queries failed by their deadline",
            &l,
            self.deadline_exceeded as f64,
        );
        registry.counter(
            "kosr_service_budget_exhausted_total",
            "Queries that exhausted their expansion budget",
            &l,
            self.budget_exhausted as f64,
        );
        registry.counter(
            "kosr_service_rejected_invalid_total",
            "Queries rejected at validation",
            &l,
            self.rejected_invalid as f64,
        );
        registry.counter(
            "kosr_service_cache_hits_total",
            "Completions served from the result cache",
            &l,
            self.cache_hits as f64,
        );
        registry.counter(
            "kosr_prune_bound_total",
            "Queue pushes dropped by the remaining-sequence lower bound",
            &l,
            self.bound_prunes as f64,
        );
        registry.counter(
            "kosr_witness_reuse_total",
            "SeqBounds fragments served from the cross-query witness cache",
            &l,
            self.witness_reuses as f64,
        );
        registry.gauge(
            "kosr_service_qps",
            "Completed queries per second over the stats window",
            &l,
            self.qps,
        );
        registry.gauge(
            "kosr_service_cache_hit_rate",
            "Cache hits over completed queries (0..1)",
            &l,
            self.cache_hit_rate(),
        );
        registry.gauge(
            "kosr_service_cache_entries",
            "Result-cache entries currently held",
            &l,
            self.cache.entries as f64,
        );
        registry.counter(
            "kosr_service_cache_evictions_total",
            "Result-cache evictions",
            &l,
            self.cache.evictions as f64,
        );
        registry.counter(
            "kosr_service_busy_seconds_total",
            "Worker compute time spent executing uncached queries",
            &l,
            secs(self.busy),
        );
        const LAT_HELP: &str = "End-to-end query latency quantiles in seconds";
        for (q, v) in [
            ("0.5", self.latency_p50),
            ("0.99", self.latency_p99),
            ("1", self.latency_max),
        ] {
            l.push(("quantile", q));
            registry.gauge("kosr_service_latency_seconds", LAT_HELP, &l, secs(v));
            l.pop();
        }
        // The real histogram family next to the quantile gauges: snapshots
        // built by hand (no bucket data) simply omit it.
        if let Some(&(_, total)) = self.latency_buckets.last() {
            registry.histogram(
                "kosr_service_latency_histogram_seconds",
                "End-to-end query latency distribution (cumulative log buckets)",
                labels,
                &self.latency_buckets,
                secs(self.latency_sum),
                total,
            );
        }
        for m in &self.per_method {
            l.push(("method", m.method.name()));
            registry.counter(
                "kosr_service_method_completed_total",
                "Uncached completions per planner method",
                &l,
                m.completed as f64,
            );
            registry.gauge(
                "kosr_service_method_latency_p99_seconds",
                "Per-method p99 end-to-end latency in seconds",
                &l,
                secs(m.latency_p99),
            );
            l.pop();
        }
    }
}

impl MetricsSource for crate::KosrService {
    fn export(&self, registry: &mut MetricsRegistry) {
        self.stats().export_labeled(registry, &[]);
        registry.gauge(
            "kosr_service_index_epoch",
            "Index epoch (bumped by every applied update)",
            &[],
            self.index_epoch() as f64,
        );
        registry.gauge(
            "kosr_service_workers",
            "Worker threads in the pool",
            &[],
            self.num_workers() as f64,
        );
    }
}

/// Checks that `text` is well-formed Prometheus text exposition format:
/// every line is a `# HELP`, a `# TYPE` naming `counter`/`gauge`, or a
/// `name{labels} value` sample whose name was declared by a preceding
/// `# TYPE`, with valid names, balanced/escaped label quoting, and a
/// parseable value. Returns the first offense as `Err`.
///
/// This is the checker the `/metrics` acceptance tests run — deliberately
/// strict about structure, not a full PromQL-compatible parser.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed: Vec<String> = Vec::new();
    let mut histograms: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = rest
                .split_once(' ')
                .ok_or(format!("line {n}: bare comment"))?;
            match keyword {
                "HELP" => {
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: HELP for invalid name {name:?}"));
                    }
                }
                "TYPE" => {
                    let mut parts = rest.splitn(2, ' ');
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: TYPE for invalid name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown metric type {kind:?}"));
                    }
                    typed.push(name.to_string());
                    if kind == "histogram" {
                        histograms.push(name.to_string());
                    }
                }
                other => return Err(format!("line {n}: unknown comment keyword {other:?}")),
            }
            continue;
        }
        // A sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or(format!("line {n}: no value on sample line"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid sample name {name:?}"));
        }
        if !typed.iter().any(|t| t == name) {
            // Histogram families declare the *base* name; their series
            // carry the `_bucket`/`_sum`/`_count` suffixes.
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"));
            match base {
                Some(b) if histograms.iter().any(|h| h == b) => {
                    if name.ends_with("_bucket") && !line.contains("le=\"") {
                        return Err(format!("line {n}: histogram bucket without an le label"));
                    }
                }
                _ => return Err(format!("line {n}: sample {name:?} has no preceding TYPE")),
            }
        }
        let mut rest = &line[name_end..];
        if let Some(inner) = rest.strip_prefix('{') {
            let close =
                find_unescaped_brace(inner).ok_or(format!("line {n}: unterminated label block"))?;
            let labels = &inner[..close];
            validate_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
            rest = &inner[close + 1..];
        }
        let value = rest.trim_start();
        if !(value == "NaN" || value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok()) {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
    }
    Ok(())
}

/// Index of the `}` closing a label block, skipping braces inside quoted
/// label values.
fn find_unescaped_brace(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Err("empty label block".into());
    }
    // Split on commas outside quotes.
    let mut in_quotes = false;
    let mut escaped = false;
    let mut start = 0;
    let mut pairs = Vec::new();
    for (i, c) in labels.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return Err("unterminated label value".into());
    }
    pairs.push(&labels[start..]);
    for p in pairs {
        let (k, v) = p.split_once('=').ok_or(format!("label {p:?} has no ="))?;
        if !valid_label_name(k) {
            return Err(format!("invalid label name {k:?}"));
        }
        if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
            return Err(format!("label value {v:?} not quoted"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KosrService, ServiceConfig};
    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Query};
    use std::sync::Arc;

    #[test]
    fn render_is_valid_and_groups_families() {
        let mut reg = MetricsRegistry::new();
        reg.counter("demo_total", "a demo counter", &[], 3.0);
        reg.counter("demo_total", "ignored later help", &[("shard", "1")], 4.0);
        reg.gauge(
            "demo_ratio",
            "with \"quotes\" and \\slashes\nand newlines",
            &[("kind", "a\"b\\c\nd")],
            0.25,
        );
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert_eq!(reg.num_families(), 2, "same-name samples share a family");
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("demo_total{shard=\"1\"} 4"));
        assert!(text.contains("demo_ratio{kind=\"a\\\"b\\\\c\\nd\"} 0.25"));
        // One TYPE header per family, however many samples.
        assert_eq!(text.matches("# TYPE demo_total").count(), 1);
    }

    #[test]
    fn histograms_render_bucket_sum_count_series() {
        let h = crate::LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(5));
        let mut reg = MetricsRegistry::new();
        reg.histogram(
            "demo_seconds",
            "a demo histogram",
            &[("shard", "0")],
            &h.cumulative_octaves(),
            h.sum().as_secs_f64(),
            h.count(),
        );
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("# TYPE demo_seconds histogram"));
        assert!(text.contains("demo_seconds_bucket{shard=\"0\",le=\"0.000002\"} 0"));
        assert!(text.contains("demo_seconds_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("demo_seconds_sum{shard=\"0\"} 0.005003"));
        assert!(text.contains("demo_seconds_count{shard=\"0\"} 2"));
        // Cumulative bucket values never decrease down the exposition.
        let mut last = 0.0;
        for line in text
            .lines()
            .filter(|l| l.starts_with("demo_seconds_bucket"))
        {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "monotone buckets: {line}");
            last = v;
        }
    }

    #[test]
    fn validator_understands_histogram_suffixes() {
        let ok = "# TYPE demo histogram\ndemo_bucket{le=\"+Inf\"} 2\ndemo_sum 0.1\ndemo_count 2\n";
        validate_prometheus_text(ok).unwrap();
        // A bucket without an le label is malformed…
        assert!(validate_prometheus_text("# TYPE demo histogram\ndemo_bucket 2\n").is_err());
        // …and the suffixes only attach to a declared histogram family.
        assert!(
            validate_prometheus_text("# TYPE demo counter\ndemo_bucket{le=\"1\"} 2\n").is_err()
        );
        assert!(validate_prometheus_text("# TYPE other histogram\ndemo_sum 1\n").is_err());
    }

    #[test]
    fn special_values_render_and_validate() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("weird", "special floats", &[("v", "nan")], f64::NAN);
        reg.gauge("weird", "special floats", &[("v", "inf")], f64::INFINITY);
        reg.gauge(
            "weird",
            "special floats",
            &[("v", "ninf")],
            f64::NEG_INFINITY,
        );
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("NaN") && text.contains("+Inf") && text.contains("-Inf"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_are_bugs() {
        MetricsRegistry::new().counter("kosr-bad-name", "dashes are invalid", &[], 1.0);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (text, why) in [
            ("", "empty"),
            ("demo 1", "missing trailing newline"),
            ("demo 1\n", "no TYPE header"),
            ("# TYPE demo counter\ndemo one\n", "unparseable value"),
            ("# TYPE demo counter\ndemo{a=1} 2\n", "unquoted label"),
            ("# TYPE demo widget\ndemo 1\n", "unknown type"),
            ("# TYPE demo counter\ndemo{a=\"x} 2\n", "unterminated label"),
            ("# NOTE demo counter\n", "unknown keyword"),
        ] {
            assert!(validate_prometheus_text(text).is_err(), "{why}: {text:?}");
        }
    }

    #[test]
    fn service_exports_through_the_trait() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        svc.submit(q.clone()).unwrap().wait().unwrap();
        svc.submit(q).unwrap().wait().unwrap(); // cache hit

        let mut reg = MetricsRegistry::new();
        reg.collect(&svc);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_service_completed_total 2"));
        assert!(text.contains("kosr_service_cache_hits_total 1"));
        assert!(text.contains("kosr_service_cache_hit_rate 0.5"));
        assert!(text.contains("kosr_service_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("# TYPE kosr_service_latency_histogram_seconds histogram"));
        assert!(text.contains("kosr_service_latency_histogram_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("kosr_service_latency_histogram_seconds_count 2"));
        assert!(text.contains("kosr_service_method_completed_total{method="));
        assert!(text.contains("kosr_service_qps"));
        assert!(text.contains("kosr_prune_bound_total"));
        // The repeat submission was a result-cache hit — it never executed,
        // so no witness fragment was consulted.
        assert!(text.contains("kosr_witness_reuse_total 0"));
    }

    #[test]
    fn labeled_export_tags_every_sample() {
        let stats = ServiceStats {
            submitted: 7,
            completed: 5,
            ..Default::default()
        };
        let mut reg = MetricsRegistry::new();
        stats.export_labeled(&mut reg, &[("shard", "2")]);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_service_submitted_total{shard=\"2\"} 7"));
        assert!(!text.contains("kosr_service_submitted_total 7"));
    }
}
