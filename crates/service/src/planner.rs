//! The query planner: picks a [`Method`] and an expansion budget per query
//! from its shape — `k`, `|C|`, and category selectivity read from the
//! shared index (`kosr_index` via [`IndexedGraph`]).
//!
//! The policy distils the paper's evaluation (§V, Figure 3):
//!
//! * **StarKOSR (SK)** wins overall — estimation-guided expansion examines
//!   orders of magnitude fewer routes, and its edge *grows* with sparse
//!   categories, long sequences and small k. It is the default.
//! * **PruningKOSR (PK)** stays within a small constant of SK while
//!   skipping per-route `dis(·, t)` estimation. When categories are dense
//!   (high selectivity) and k is large, most partial routes must be
//!   expanded anyway, so the estimation spend buys little — PK is chosen.
//! * **KPNE** is only competitive when the whole candidate space is tiny
//!   (the product of the queried category sizes fits in a few dozen
//!   routes); then its lack of dominance bookkeeping makes it cheapest.
//!
//! With [`PlannerConfig::calibrate`] on, the paper-informed thresholds
//! stop being static: per-method latency EWMAs (fed by the executor's
//! [`MethodStats`](crate::MethodStats) pipeline, or seeded from an
//! external stats snapshot via [`QueryPlanner::calibrate_from`]) scale
//! `kpne_cutoff` and `dense_selectivity` toward whichever method the
//! *observed* workload shows to be cheaper — the ROADMAP's "planner
//! calibration" loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kosr_core::{IndexedGraph, Method, Query};

use crate::stats::{method_slot, MethodStats};

/// Tunables for [`QueryPlanner`]. The defaults encode the paper-derived
/// policy above; services can override any threshold.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Candidate-space cutoff below which KPNE is picked: if
    /// `Π |Ci| · k ≤ kpne_cutoff`, exhaustive expansion is cheapest.
    pub kpne_cutoff: u64,
    /// Selectivity above which categories count as "dense" for the PK
    /// rule.
    pub dense_selectivity: f64,
    /// `k` at or above which dense queries switch from SK to PK.
    pub dense_k: usize,
    /// Per-witness-level examined-routes allowance backing the expansion
    /// budget: `budget = expansion_per_level · k · (|C| + 2)`.
    pub expansion_per_level: u64,
    /// Hard ceiling on any query's examined-routes budget.
    pub max_examined: u64,
    /// Default wall-clock deadline stamped on plans (queue wait included);
    /// `None` admits queries with no deadline.
    pub deadline: Option<Duration>,
    /// Opt-in latency feedback: when `true`, observed per-method latency
    /// EWMAs scale `kpne_cutoff` and `dense_selectivity` (within
    /// [`CALIBRATION_CLAMP`]) toward the methods the live workload shows
    /// to be cheaper. Off by default — thresholds stay the paper-informed
    /// constants.
    pub calibrate: bool,
    /// When `true` (the default), executions run with the index's
    /// inter-category lower-bound tables: the search queue is ordered by
    /// `cost + remaining-sequence bound` and provably uncompletable
    /// candidates are pruned at push time. Results are bit-identical
    /// either way (the bounds are admissible and consistent); the toggle
    /// exists for A/B measurement and as an escape hatch.
    pub use_bounds: bool,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            kpne_cutoff: 64,
            dense_selectivity: 0.25,
            dense_k: 8,
            // Generous: ~1M examined routes per level covers every workload
            // in the repro suite without ever truncating, while still
            // bounding adversarial queries.
            expansion_per_level: 1_000_000,
            max_examined: u64::MAX,
            deadline: None,
            calibrate: false,
            use_bounds: true,
        }
    }
}

/// How far calibration may scale a threshold away from its configured
/// value, in either direction. Bounding the swing keeps a burst of skewed
/// observations from driving the planner into a corner it cannot observe
/// its way back out of.
pub const CALIBRATION_CLAMP: f64 = 4.0;

/// EWMA smoothing: `ewma ← (7·ewma + sample) / 8`.
const EWMA_WEIGHT: u64 = 8;

/// Fixed-point unit of the budget scale: 1000 ≙ ×1.0.
const BUDGET_SCALE_ONE: u64 = 1000;

/// Learned calibration state (per-method latency EWMAs in µs, 0 = no
/// samples yet, plus the expansion-budget scale), shared by every clone of
/// a planner so executor feedback and planning read one state.
#[derive(Debug)]
struct CalibrationState {
    ewma_micros: [AtomicU64; 6],
    /// Expansion-budget multiplier in milli-units (1000 = the configured
    /// budget). Grows on observed budget exhaustion, decays back toward
    /// 1000 on successful completions; never drops below the configured
    /// budget and never exceeds [`CALIBRATION_CLAMP`]× it.
    budget_scale_milli: AtomicU64,
}

impl Default for CalibrationState {
    fn default() -> CalibrationState {
        CalibrationState {
            ewma_micros: Default::default(),
            budget_scale_milli: AtomicU64::new(BUDGET_SCALE_ONE),
        }
    }
}

impl CalibrationState {
    fn observe(&self, m: Method, latency: Duration) {
        // Clamp into [1, u64::MAX] so a recorded sample is never mistaken
        // for the "no samples" sentinel.
        let sample = (latency.as_micros().min(u64::MAX as u128) as u64).max(1);
        let slot = &self.ewma_micros[method_slot(m)];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = if current == 0 {
                sample
            } else {
                ((EWMA_WEIGHT - 1) * current + sample) / EWMA_WEIGHT
            };
            match slot.compare_exchange_weak(
                current,
                next.max(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    fn ewma(&self, m: Method) -> Option<u64> {
        match self.ewma_micros[method_slot(m)].load(Ordering::Relaxed) {
            0 => None,
            micros => Some(micros),
        }
    }

    /// `observed(a) / observed(b)` clamped into the calibration swing;
    /// `1.0` until both methods have samples.
    fn ratio(&self, a: Method, b: Method) -> f64 {
        match (self.ewma(a), self.ewma(b)) {
            (Some(a), Some(b)) => {
                (a as f64 / b as f64).clamp(1.0 / CALIBRATION_CLAMP, CALIBRATION_CLAMP)
            }
            _ => 1.0,
        }
    }

    /// Budget feedback: exhaustion grows the scale by 3/2 (clamped to
    /// [`CALIBRATION_CLAMP`]×); a successful completion decays it
    /// proportionally back toward the configured budget. The scale never
    /// drops *below* ×1 — a budget the operator configured is a floor, not
    /// a suggestion.
    fn observe_budget(&self, truncated: bool) {
        let ceiling = (BUDGET_SCALE_ONE as f64 * CALIBRATION_CLAMP) as u64;
        let slot = &self.budget_scale_milli;
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = if truncated {
                (current.saturating_mul(3) / 2).clamp(BUDGET_SCALE_ONE, ceiling)
            } else {
                current
                    .saturating_sub((current / 256).max(1))
                    .max(BUDGET_SCALE_ONE)
            };
            if next == current {
                return;
            }
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    fn budget_scale(&self) -> u64 {
        self.budget_scale_milli.load(Ordering::Relaxed)
    }
}

/// Why a calibration blob was refused by
/// [`QueryPlanner::decode_calibration`]. The decoder is total: any byte
/// input yields `Ok` or one of these, never a panic — and a refused blob
/// leaves the planner's learned state untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalibrationBlobError {
    /// The blob does not start with the `KCAL` magic.
    BadMagic,
    /// The blob's format version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The blob ends before the full payload.
    Truncated {
        /// Bytes a well-formed blob carries.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// Extra bytes follow a complete payload (corruption, not a format
    /// extension — versions exist for that).
    TrailingBytes(usize),
}

impl std::fmt::Display for CalibrationBlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationBlobError::BadMagic => write!(f, "calibration blob: bad magic"),
            CalibrationBlobError::UnsupportedVersion(v) => {
                write!(f, "calibration blob: unsupported version {v}")
            }
            CalibrationBlobError::Truncated { expected, found } => {
                write!(f, "calibration blob truncated: {found} of {expected} bytes")
            }
            CalibrationBlobError::TrailingBytes(n) => {
                write!(f, "calibration blob: {n} trailing bytes")
            }
        }
    }
}

impl std::error::Error for CalibrationBlobError {}

const CALIBRATION_MAGIC: [u8; 4] = *b"KCAL";
const CALIBRATION_VERSION: u8 = 1;
/// magic + version + 6 EWMAs + budget scale.
const CALIBRATION_BLOB_LEN: usize = 4 + 1 + 6 * 8 + 8;

/// What the planner decided for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// The algorithm to run.
    pub method: Method,
    /// Examined-routes budget handed to `IndexedGraph::run_bounded`.
    pub examined_budget: u64,
    /// Wall-clock deadline for the query (submit → response), if any.
    pub deadline: Option<Duration>,
    /// Run with remaining-sequence lower bounds (bound-ordered queue +
    /// push-time pruning). See [`PlannerConfig::use_bounds`].
    pub use_bounds: bool,
}

/// Chooses per-query plans against one shared [`IndexedGraph`].
#[derive(Clone, Debug, Default)]
pub struct QueryPlanner {
    config: PlannerConfig,
    /// Shared across clones: the executor's feedback and every planning
    /// thread read/write one EWMA table.
    calibration: Arc<CalibrationState>,
}

impl QueryPlanner {
    /// A planner with the given tunables.
    pub fn new(config: PlannerConfig) -> QueryPlanner {
        QueryPlanner {
            config,
            calibration: Arc::new(CalibrationState::default()),
        }
    }

    /// The active tunables.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Records one uncached completion's `(method, latency)` into the
    /// calibration EWMAs. No-op unless [`PlannerConfig::calibrate`] is on.
    pub fn observe(&self, method: Method, latency: Duration) {
        if self.config.calibrate {
            self.calibration.observe(method, latency);
        }
    }

    /// Records one execution's budget outcome: `truncated == true` means
    /// the search exhausted its examined-routes budget before finding all
    /// k routes. Exhaustion grows the effective expansion budget (up to
    /// [`CALIBRATION_CLAMP`]× the configured value); completions decay it
    /// back toward the configured floor. No-op unless
    /// [`PlannerConfig::calibrate`] is on.
    pub fn observe_budget(&self, truncated: bool) {
        if self.config.calibrate {
            self.calibration.observe_budget(truncated);
        }
    }

    /// Seeds the calibration EWMAs from an existing [`MethodStats`]
    /// snapshot (e.g. another replica's counters), so a fresh planner
    /// starts from fleet-observed latencies instead of cold. No-op unless
    /// [`PlannerConfig::calibrate`] is on.
    pub fn calibrate_from(&self, stats: &[MethodStats]) {
        if !self.config.calibrate {
            return;
        }
        for m in stats {
            if m.completed > 0 {
                self.calibration.observe(m.method, m.latency_mean);
            }
        }
    }

    /// The calibrated-or-configured `(kpne_cutoff, dense_selectivity)`
    /// pair planning uses right now — exposed so tests and operators can
    /// see where the feedback loop has moved the thresholds.
    pub fn effective_thresholds(&self) -> (u64, f64) {
        let eff = self.effective_config();
        (eff.kpne_cutoff, eff.dense_selectivity)
    }

    /// The full tunable set planning uses right now: the configured
    /// [`PlannerConfig`] with every calibrated threshold substituted.
    /// With [`PlannerConfig::calibrate`] off this is the configuration
    /// verbatim; with it on,
    ///
    /// * `kpne_cutoff` scales by the observed SK/KPNE latency ratio (KPNE
    ///   cheaper → admit larger candidate spaces to KPNE);
    /// * `dense_selectivity` and `dense_k` divide by the observed SK/PK
    ///   ratio (PK cheaper → the dense/PK branch opens at lower density
    ///   and smaller k);
    /// * `expansion_per_level` scales by the budget-feedback multiplier
    ///   (grown by observed exhaustions, decayed by completions).
    ///
    /// Every swing is bounded by [`CALIBRATION_CLAMP`] in either
    /// direction — the ratios are clamped at the source, and the budget
    /// scale lives in `[1, CALIBRATION_CLAMP]`.
    pub fn effective_config(&self) -> PlannerConfig {
        let mut cfg = self.config.clone();
        if !cfg.calibrate {
            return cfg;
        }
        // KPNE cheaper than SK in practice → admit larger candidate
        // spaces to KPNE (scale the cutoff up by SK/KPNE), and vice versa.
        cfg.kpne_cutoff = ((cfg.kpne_cutoff as f64)
            * self.calibration.ratio(Method::Sk, Method::Kpne))
        .round()
        .max(1.0) as u64;
        // PK cheaper than SK → lower the density bar so more dense
        // queries take PK (divide by SK/PK), and vice versa…
        let sk_over_pk = self.calibration.ratio(Method::Sk, Method::Pk);
        cfg.dense_selectivity = (self.config.dense_selectivity / sk_over_pk).clamp(0.01, 1.0);
        // …and open the PK branch at smaller k by the same evidence.
        cfg.dense_k = ((self.config.dense_k as f64) / sk_over_pk).round().max(1.0) as usize;
        let scale = self.calibration.budget_scale();
        cfg.expansion_per_level = ((self.config.expansion_per_level as u128 * scale as u128)
            / BUDGET_SCALE_ONE as u128)
            .min(u64::MAX as u128) as u64;
        cfg
    }

    /// Serializes the learned calibration state (per-method latency EWMAs
    /// and the budget scale) into a versioned little-endian blob, so a
    /// restarted service can resume with learned thresholds instead of
    /// defaults ([`QueryPlanner::decode_calibration`]). The blob captures
    /// *observations*, not effective thresholds — restoring into a planner
    /// with different configured constants re-derives its own effective
    /// values from the same evidence.
    pub fn encode_calibration(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CALIBRATION_BLOB_LEN);
        out.extend_from_slice(&CALIBRATION_MAGIC);
        out.push(CALIBRATION_VERSION);
        for slot in &self.calibration.ewma_micros {
            out.extend_from_slice(&slot.load(Ordering::Relaxed).to_le_bytes());
        }
        out.extend_from_slice(&self.calibration.budget_scale().to_le_bytes());
        out
    }

    /// Restores learned calibration state from an
    /// [`QueryPlanner::encode_calibration`] blob. Total and panic-free:
    /// malformed input yields a typed [`CalibrationBlobError`] and leaves
    /// the current state untouched. The restored evidence only moves plans
    /// while [`PlannerConfig::calibrate`] is on.
    pub fn decode_calibration(&self, blob: &[u8]) -> Result<(), CalibrationBlobError> {
        if blob.len() < CALIBRATION_MAGIC.len() || blob[..4] != CALIBRATION_MAGIC {
            return Err(CalibrationBlobError::BadMagic);
        }
        let Some(&version) = blob.get(4) else {
            return Err(CalibrationBlobError::Truncated {
                expected: CALIBRATION_BLOB_LEN,
                found: blob.len(),
            });
        };
        if version != CALIBRATION_VERSION {
            return Err(CalibrationBlobError::UnsupportedVersion(version));
        }
        match blob.len() {
            n if n < CALIBRATION_BLOB_LEN => {
                return Err(CalibrationBlobError::Truncated {
                    expected: CALIBRATION_BLOB_LEN,
                    found: n,
                })
            }
            n if n > CALIBRATION_BLOB_LEN => {
                return Err(CalibrationBlobError::TrailingBytes(
                    n - CALIBRATION_BLOB_LEN,
                ))
            }
            _ => {}
        }
        let word = |i: usize| {
            let at = 5 + 8 * i;
            u64::from_le_bytes(blob[at..at + 8].try_into().expect("length checked"))
        };
        for (i, slot) in self.calibration.ewma_micros.iter().enumerate() {
            slot.store(word(i), Ordering::Relaxed);
        }
        let ceiling = (BUDGET_SCALE_ONE as f64 * CALIBRATION_CLAMP) as u64;
        self.calibration
            .budget_scale_milli
            .store(word(6).clamp(BUDGET_SCALE_ONE, ceiling), Ordering::Relaxed);
        Ok(())
    }

    /// Plans `query` against `ig`. The query is assumed validated.
    pub fn plan(&self, ig: &IndexedGraph, query: &Query) -> QueryPlan {
        let cfg = self.effective_config();
        let (kpne_cutoff, dense_selectivity) = (cfg.kpne_cutoff, cfg.dense_selectivity);

        // Candidate-space size: Π |Ci| (saturating) times k. Member counts
        // and selectivity come from the inverted label index — the
        // query-time source of truth, which dynamic updates keep current.
        let mut product: u64 = 1;
        let mut max_selectivity: f64 = 0.0;
        for &c in &query.categories {
            let members = ig.inverted.members_of(c) as u64;
            product = product.saturating_mul(members.max(1));
            max_selectivity = max_selectivity.max(ig.category_selectivity(c));
        }
        let space = product.saturating_mul(query.k as u64);

        let method = if !query.categories.is_empty() && space <= kpne_cutoff {
            Method::Kpne
        } else if max_selectivity >= dense_selectivity && query.k >= cfg.dense_k {
            Method::Pk
        } else {
            Method::Sk
        };

        let levels = (query.categories.len() as u64).saturating_add(2);
        let examined_budget = cfg
            .expansion_per_level
            .saturating_mul(query.k as u64)
            .saturating_mul(levels)
            .min(cfg.max_examined);

        QueryPlan {
            method,
            examined_budget,
            deadline: cfg.deadline,
            use_bounds: cfg.use_bounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_graph::{CategoryId, VertexId};
    use kosr_workloads::{assign_uniform, road_grid_directed};

    fn fig1_ig() -> IndexedGraph {
        IndexedGraph::build_default(figure1().graph.clone())
    }

    #[test]
    fn tiny_candidate_space_uses_kpne() {
        // Figure 1 has three categories with ≤ 2 members each: the whole
        // candidate space fits under the KPNE cutoff.
        let fx = figure1();
        let ig = fig1_ig();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let plan = QueryPlanner::default().plan(&ig, &q);
        assert_eq!(plan.method, Method::Kpne);
        assert!(plan.examined_budget >= 1_000_000);
        // And the plan actually answers the paper's example correctly.
        let out = ig.run_bounded(&q, plan.method, plan.examined_budget);
        assert_eq!(out.costs(), vec![20, 21, 22]);
    }

    #[test]
    fn sparse_categories_use_sk_dense_large_k_uses_pk() {
        let mut g = road_grid_directed(16, 16, 3);
        // 4 sparse categories (8 of 256 vertices ≈ 3% selectivity).
        assign_uniform(&mut g, 4, 8, 7);
        let ig = IndexedGraph::build_default(g);
        let planner = QueryPlanner::default();

        let sparse = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1), CategoryId(2)],
            4,
        );
        assert_eq!(planner.plan(&ig, &sparse).method, Method::Sk);

        // Dense: 2 categories covering 40% of vertices, large k.
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 102, 7);
        let ig = IndexedGraph::build_default(g);
        let dense = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            16,
        );
        assert_eq!(planner.plan(&ig, &dense).method, Method::Pk);
        // Same shape but k below the dense threshold stays on SK.
        let small_k = Query::new(VertexId(0), VertexId(255), vec![CategoryId(0)], 2);
        assert_eq!(planner.plan(&ig, &small_k).method, Method::Sk);
    }

    #[test]
    fn budget_scales_with_query_shape_and_respects_ceiling() {
        let ig = fig1_ig();
        let fx = figure1();
        let planner = QueryPlanner::new(PlannerConfig {
            expansion_per_level: 10,
            max_examined: 1000,
            ..Default::default()
        });
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 3);
        // 10 per level · k=3 · (2 + 2) levels = 120.
        assert_eq!(planner.plan(&ig, &q).examined_budget, 120);

        let big = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 1000);
        assert_eq!(planner.plan(&ig, &big).examined_budget, 1000, "ceiling");
    }

    #[test]
    fn skewed_latencies_shift_method_choice_only_when_calibrating() {
        // Dense-ish world: 2 categories at ~16% selectivity — under the
        // default 25% bar, so large-k queries default to SK.
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 40, 7);
        let ig = IndexedGraph::build_default(g);
        let dense = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            16,
        );

        let calibrating = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        assert_eq!(calibrating.plan(&ig, &dense).method, Method::Sk);

        // The live workload shows PK an order of magnitude cheaper: the
        // density bar drops (clamped) and the same query flips to PK.
        for _ in 0..16 {
            calibrating.observe(Method::Sk, Duration::from_millis(10));
            calibrating.observe(Method::Pk, Duration::from_millis(1));
        }
        let (_, dense_bar) = calibrating.effective_thresholds();
        assert!(dense_bar < 0.25 / (CALIBRATION_CLAMP - 0.5), "{dense_bar}");
        assert_eq!(calibrating.plan(&ig, &dense).method, Method::Pk);

        // The same evidence with the flag off must not move the plan.
        let frozen = QueryPlanner::default();
        for _ in 0..16 {
            frozen.observe(Method::Sk, Duration::from_millis(10));
            frozen.observe(Method::Pk, Duration::from_millis(1));
        }
        assert_eq!(frozen.plan(&ig, &dense).method, Method::Sk);
        assert_eq!(frozen.effective_thresholds(), (64, 0.25));
    }

    #[test]
    fn kpne_cutoff_scales_with_observed_kpne_advantage() {
        // Figure 1 at a k that puts the candidate space just above the
        // default cutoff of 64, so the planner starts on SK.
        let fx = figure1();
        let ig = fig1_ig();
        let space_per_k: u64 = [fx.ma, fx.re, fx.ci]
            .iter()
            .map(|&c| ig.inverted.members_of(c) as u64)
            .product();
        let k = (64 / space_per_k + 1) as usize;
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], k);
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            // Keep the dense/PK branch out of the way: this test isolates
            // the KPNE-cutoff half of the feedback loop.
            dense_k: usize::MAX,
            ..Default::default()
        });
        assert_eq!(planner.plan(&ig, &q).method, Method::Sk);
        for _ in 0..16 {
            planner.observe(Method::Kpne, Duration::from_micros(100));
            planner.observe(Method::Sk, Duration::from_millis(2));
        }
        let (cutoff, _) = planner.effective_thresholds();
        assert!(cutoff >= space_per_k * k as u64, "cutoff grew to {cutoff}");
        assert_eq!(planner.plan(&ig, &q).method, Method::Kpne);
    }

    #[test]
    fn calibrate_from_seeds_the_ewmas_from_a_stats_snapshot() {
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 40, 7);
        let ig = IndexedGraph::build_default(g);
        let dense = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            16,
        );
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        let snap = |m: Method, mean: Duration| crate::MethodStats {
            method: m,
            completed: 50,
            latency_mean: mean,
            latency_p50: mean,
            latency_p99: mean,
        };
        planner.calibrate_from(&[
            snap(Method::Sk, Duration::from_millis(20)),
            snap(Method::Pk, Duration::from_millis(1)),
        ]);
        assert_eq!(planner.plan(&ig, &dense).method, Method::Pk);
    }

    #[test]
    fn budget_feedback_grows_within_clamp_and_decays_to_the_floor() {
        let per_level = 100;
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            expansion_per_level: per_level,
            ..Default::default()
        });
        assert_eq!(planner.effective_config().expansion_per_level, per_level);

        // A storm of exhaustions: the budget grows, but the 4× clamp holds
        // however long the storm lasts.
        for _ in 0..50 {
            planner.observe_budget(true);
        }
        let grown = planner.effective_config().expansion_per_level;
        assert!(grown > per_level, "exhaustions must grow the budget");
        assert!(
            grown <= per_level * CALIBRATION_CLAMP as u64,
            "swing exceeded the clamp: {grown}"
        );
        assert_eq!(
            grown,
            per_level * CALIBRATION_CLAMP as u64,
            "storm saturates"
        );

        // Sustained clean completions decay back to the configured floor —
        // and never below it.
        for _ in 0..2000 {
            planner.observe_budget(false);
        }
        assert_eq!(planner.effective_config().expansion_per_level, per_level);

        // With calibration off the same evidence moves nothing.
        let frozen = QueryPlanner::new(PlannerConfig {
            expansion_per_level: per_level,
            ..Default::default()
        });
        for _ in 0..50 {
            frozen.observe_budget(true);
        }
        assert_eq!(frozen.effective_config().expansion_per_level, per_level);
    }

    #[test]
    fn dense_k_calibrates_with_pk_evidence_within_clamp() {
        // Dense world (40% selectivity), k=4 — under the default dense_k
        // of 8, so the uncalibrated plan is SK.
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 102, 7);
        let ig = IndexedGraph::build_default(g);
        let dense_small_k = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            4,
        );
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        assert_eq!(planner.plan(&ig, &dense_small_k).method, Method::Sk);

        // PK observed an order of magnitude cheaper: the dense branch
        // opens at smaller k and the same query flips to PK…
        for _ in 0..16 {
            planner.observe(Method::Sk, Duration::from_millis(10));
            planner.observe(Method::Pk, Duration::from_millis(1));
        }
        let eff = planner.effective_config();
        assert!(eff.dense_k < 8, "dense_k must drop: {}", eff.dense_k);
        // …but never past the 4× clamp, however extreme the skew.
        assert!(eff.dense_k >= 2, "clamp breached: {}", eff.dense_k);
        assert_eq!(planner.plan(&ig, &dense_small_k).method, Method::Pk);

        // The same evidence with the flag off moves nothing.
        let frozen = QueryPlanner::default();
        for _ in 0..16 {
            frozen.observe(Method::Sk, Duration::from_millis(10));
            frozen.observe(Method::Pk, Duration::from_millis(1));
        }
        assert_eq!(frozen.effective_config().dense_k, 8);
        assert_eq!(frozen.plan(&ig, &dense_small_k).method, Method::Sk);
    }

    #[test]
    fn calibration_blob_roundtrips_learned_state() {
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        for _ in 0..16 {
            planner.observe(Method::Sk, Duration::from_millis(10));
            planner.observe(Method::Pk, Duration::from_millis(1));
            planner.observe_budget(true);
        }
        let blob = planner.encode_calibration();

        // A restarted planner resumes with the learned thresholds instead
        // of the configured defaults.
        let restarted = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        let defaults = restarted.effective_config();
        assert_eq!(defaults.dense_k, 8);
        restarted.decode_calibration(&blob).unwrap();
        let restored = restarted.effective_config();
        let learned = planner.effective_config();
        assert_eq!(restored.dense_k, learned.dense_k);
        assert_eq!(restored.kpne_cutoff, learned.kpne_cutoff);
        assert_eq!(restored.expansion_per_level, learned.expansion_per_level);
        assert!((restored.dense_selectivity - learned.dense_selectivity).abs() < 1e-12);
    }

    #[test]
    fn calibration_blob_decoder_is_total_and_typed() {
        let planner = QueryPlanner::new(PlannerConfig {
            calibrate: true,
            ..Default::default()
        });
        assert_eq!(
            planner.decode_calibration(b"nope"),
            Err(CalibrationBlobError::BadMagic)
        );
        assert_eq!(
            planner.decode_calibration(b""),
            Err(CalibrationBlobError::BadMagic)
        );
        let good = planner.encode_calibration();
        assert!(planner.decode_calibration(&good).is_ok());
        let mut wrong_version = good.clone();
        wrong_version[4] = 99;
        assert_eq!(
            planner.decode_calibration(&wrong_version),
            Err(CalibrationBlobError::UnsupportedVersion(99))
        );
        for cut in 4..good.len() {
            let err = planner.decode_calibration(&good[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CalibrationBlobError::Truncated { .. } | CalibrationBlobError::BadMagic
                ),
                "cut {cut}: {err:?}"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            planner.decode_calibration(&trailing),
            Err(CalibrationBlobError::TrailingBytes(1))
        );
        // A refused blob must not have disturbed the learned state.
        assert_eq!(planner.encode_calibration(), good);
    }

    #[test]
    fn bounds_toggle_propagates_to_plans() {
        let ig = fig1_ig();
        let fx = figure1();
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert!(
            QueryPlanner::default().plan(&ig, &q).use_bounds,
            "default on"
        );
        let off = QueryPlanner::new(PlannerConfig {
            use_bounds: false,
            ..Default::default()
        });
        assert!(!off.plan(&ig, &q).use_bounds);
    }

    #[test]
    fn deadline_propagates_to_plans() {
        let ig = fig1_ig();
        let fx = figure1();
        let planner = QueryPlanner::new(PlannerConfig {
            deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        });
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert_eq!(
            planner.plan(&ig, &q).deadline,
            Some(Duration::from_millis(250))
        );
    }
}
