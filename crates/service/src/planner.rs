//! The query planner: picks a [`Method`] and an expansion budget per query
//! from its shape — `k`, `|C|`, and category selectivity read from the
//! shared index (`kosr_index` via [`IndexedGraph`]).
//!
//! The policy distils the paper's evaluation (§V, Figure 3):
//!
//! * **StarKOSR (SK)** wins overall — estimation-guided expansion examines
//!   orders of magnitude fewer routes, and its edge *grows* with sparse
//!   categories, long sequences and small k. It is the default.
//! * **PruningKOSR (PK)** stays within a small constant of SK while
//!   skipping per-route `dis(·, t)` estimation. When categories are dense
//!   (high selectivity) and k is large, most partial routes must be
//!   expanded anyway, so the estimation spend buys little — PK is chosen.
//! * **KPNE** is only competitive when the whole candidate space is tiny
//!   (the product of the queried category sizes fits in a few dozen
//!   routes); then its lack of dominance bookkeeping makes it cheapest.

use kosr_core::{IndexedGraph, Method, Query};
use std::time::Duration;

/// Tunables for [`QueryPlanner`]. The defaults encode the paper-derived
/// policy above; services can override any threshold.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Candidate-space cutoff below which KPNE is picked: if
    /// `Π |Ci| · k ≤ kpne_cutoff`, exhaustive expansion is cheapest.
    pub kpne_cutoff: u64,
    /// Selectivity above which categories count as "dense" for the PK
    /// rule.
    pub dense_selectivity: f64,
    /// `k` at or above which dense queries switch from SK to PK.
    pub dense_k: usize,
    /// Per-witness-level examined-routes allowance backing the expansion
    /// budget: `budget = expansion_per_level · k · (|C| + 2)`.
    pub expansion_per_level: u64,
    /// Hard ceiling on any query's examined-routes budget.
    pub max_examined: u64,
    /// Default wall-clock deadline stamped on plans (queue wait included);
    /// `None` admits queries with no deadline.
    pub deadline: Option<Duration>,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            kpne_cutoff: 64,
            dense_selectivity: 0.25,
            dense_k: 8,
            // Generous: ~1M examined routes per level covers every workload
            // in the repro suite without ever truncating, while still
            // bounding adversarial queries.
            expansion_per_level: 1_000_000,
            max_examined: u64::MAX,
            deadline: None,
        }
    }
}

/// What the planner decided for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// The algorithm to run.
    pub method: Method,
    /// Examined-routes budget handed to `IndexedGraph::run_bounded`.
    pub examined_budget: u64,
    /// Wall-clock deadline for the query (submit → response), if any.
    pub deadline: Option<Duration>,
}

/// Chooses per-query plans against one shared [`IndexedGraph`].
#[derive(Clone, Debug, Default)]
pub struct QueryPlanner {
    config: PlannerConfig,
}

impl QueryPlanner {
    /// A planner with the given tunables.
    pub fn new(config: PlannerConfig) -> QueryPlanner {
        QueryPlanner { config }
    }

    /// The active tunables.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plans `query` against `ig`. The query is assumed validated.
    pub fn plan(&self, ig: &IndexedGraph, query: &Query) -> QueryPlan {
        let cfg = &self.config;

        // Candidate-space size: Π |Ci| (saturating) times k. Member counts
        // and selectivity come from the inverted label index — the
        // query-time source of truth, which dynamic updates keep current.
        let mut product: u64 = 1;
        let mut max_selectivity: f64 = 0.0;
        for &c in &query.categories {
            let members = ig.inverted.members_of(c) as u64;
            product = product.saturating_mul(members.max(1));
            max_selectivity = max_selectivity.max(ig.category_selectivity(c));
        }
        let space = product.saturating_mul(query.k as u64);

        let method = if !query.categories.is_empty() && space <= cfg.kpne_cutoff {
            Method::Kpne
        } else if max_selectivity >= cfg.dense_selectivity && query.k >= cfg.dense_k {
            Method::Pk
        } else {
            Method::Sk
        };

        let levels = (query.categories.len() as u64).saturating_add(2);
        let examined_budget = cfg
            .expansion_per_level
            .saturating_mul(query.k as u64)
            .saturating_mul(levels)
            .min(cfg.max_examined);

        QueryPlan {
            method,
            examined_budget,
            deadline: cfg.deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_graph::{CategoryId, VertexId};
    use kosr_workloads::{assign_uniform, road_grid_directed};

    fn fig1_ig() -> IndexedGraph {
        IndexedGraph::build_default(figure1().graph.clone())
    }

    #[test]
    fn tiny_candidate_space_uses_kpne() {
        // Figure 1 has three categories with ≤ 2 members each: the whole
        // candidate space fits under the KPNE cutoff.
        let fx = figure1();
        let ig = fig1_ig();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let plan = QueryPlanner::default().plan(&ig, &q);
        assert_eq!(plan.method, Method::Kpne);
        assert!(plan.examined_budget >= 1_000_000);
        // And the plan actually answers the paper's example correctly.
        let out = ig.run_bounded(&q, plan.method, plan.examined_budget);
        assert_eq!(out.costs(), vec![20, 21, 22]);
    }

    #[test]
    fn sparse_categories_use_sk_dense_large_k_uses_pk() {
        let mut g = road_grid_directed(16, 16, 3);
        // 4 sparse categories (8 of 256 vertices ≈ 3% selectivity).
        assign_uniform(&mut g, 4, 8, 7);
        let ig = IndexedGraph::build_default(g);
        let planner = QueryPlanner::default();

        let sparse = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1), CategoryId(2)],
            4,
        );
        assert_eq!(planner.plan(&ig, &sparse).method, Method::Sk);

        // Dense: 2 categories covering 40% of vertices, large k.
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 102, 7);
        let ig = IndexedGraph::build_default(g);
        let dense = Query::new(
            VertexId(0),
            VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            16,
        );
        assert_eq!(planner.plan(&ig, &dense).method, Method::Pk);
        // Same shape but k below the dense threshold stays on SK.
        let small_k = Query::new(VertexId(0), VertexId(255), vec![CategoryId(0)], 2);
        assert_eq!(planner.plan(&ig, &small_k).method, Method::Sk);
    }

    #[test]
    fn budget_scales_with_query_shape_and_respects_ceiling() {
        let ig = fig1_ig();
        let fx = figure1();
        let planner = QueryPlanner::new(PlannerConfig {
            expansion_per_level: 10,
            max_examined: 1000,
            ..Default::default()
        });
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 3);
        // 10 per level · k=3 · (2 + 2) levels = 120.
        assert_eq!(planner.plan(&ig, &q).examined_budget, 120);

        let big = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 1000);
        assert_eq!(planner.plan(&ig, &big).examined_budget, 1000, "ceiling");
    }

    #[test]
    fn deadline_propagates_to_plans() {
        let ig = fig1_ig();
        let fx = figure1();
        let planner = QueryPlanner::new(PlannerConfig {
            deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        });
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert_eq!(
            planner.plan(&ig, &q).deadline,
            Some(Duration::from_millis(250))
        );
    }
}
