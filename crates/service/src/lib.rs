//! # kosr-service
//!
//! The concurrent query-serving subsystem of the KOSR workspace: takes the
//! single-shot algorithms of `kosr-core` (Liu et al., ICDE 2018) and turns
//! them into a thread-safe engine that serves many heterogeneous sequenced-
//! route queries against **one** shared, immutable [`IndexedGraph`] — the
//! serving shape systems like *Sequenced Route Query with Semantic
//! Hierarchy* (arXiv:2009.03776) argue for.
//!
//! | piece | role |
//! |---|---|
//! | [`QueryPlanner`] / [`QueryPlan`] | picks `Method::{Kpne, Pk, Sk}` + expansion budget from k, \|C\| and category selectivity |
//! | [`ResultCache`] | canonical-key LRU over complete outcomes, with prefix (`k' < k`) truncation reuse, counters + invalidation hooks |
//! | [`KosrService`] | bounded submission queue + worker pool + admission control |
//! | [`Update`] / [`KosrService::apply_update`] | live §IV-C updates: index mutation + epoch bump + cache invalidation |
//! | [`ServiceStats`] / [`LatencyHistogram`] / [`MethodStats`] | QPS, p50/p99 end-to-end latency, cache hit rate, per-method latency |
//! | [`ServiceError`] / [`UpdateError`] | typed rejections: queue-full, deadline, invalid query/update |
//! | [`MetricsRegistry`] / [`MetricsSource`] | the one export trait + Prometheus text renderer every layer (service, shard, supervisor, gateway) surfaces counters through |
//!
//! All answers use **canonical top-k semantics**
//! ([`IndexedGraph::run_canonical`]): nondecreasing cost with
//! lexicographic tie-breaks, closed over cost-tie groups — the property
//! that makes cached results truncatable and sharded execution
//! bit-identical.
//!
//! ```
//! use std::sync::Arc;
//! use kosr_core::{figure1, IndexedGraph, Query};
//! use kosr_service::{KosrService, ServiceConfig};
//!
//! let fx = figure1::figure1();
//! let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
//! let service = KosrService::new(ig, ServiceConfig::default());
//!
//! let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
//! let resp = service.submit(q).unwrap().wait().unwrap();
//! assert_eq!(resp.outcome.costs(), vec![20, 21, 22]); // Example 1 of the paper
//! assert!(service.stats().completed >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod events;
mod executor;
mod metrics;
mod planner;
mod stats;
mod trace;
mod witness;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use error::{ServiceError, UpdateError};
pub use events::{
    Alert, AlertState, Event, EventJournal, EventKind, Severity, SloEngine, SloObjective, SloSpec,
    Source,
};
pub use executor::{
    run_sequential, KosrService, QueryResponse, ServiceConfig, Ticket, Update, UpdateReceipt,
};
pub use metrics::{validate_prometheus_text, MetricKind, MetricsRegistry, MetricsSource};
pub use planner::{
    CalibrationBlobError, PlannerConfig, QueryPlan, QueryPlanner, CALIBRATION_CLAMP,
};
pub use stats::{LatencyHistogram, MethodStats, ServiceStats};
pub use trace::{
    sample_decision, span_id_for, splitmix64, SlowQueryLog, Span, SpanId, SpanRing, TagValue,
    Trace, TraceContext, TraceId, TraceStore,
};
pub use witness::WitnessCache;

// Re-exported so service users don't need a direct kosr-core dependency
// for the common request/response types.
pub use kosr_core::{IndexedGraph, KosrOutcome, Method, Query, QueryError};
