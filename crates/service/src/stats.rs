//! Service-level instrumentation: a lock-free log-bucketed latency
//! histogram and the aggregate [`ServiceStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::cache::CacheStats;
use kosr_core::Method;

/// Number of histogram buckets: bucket `i` covers latencies in
/// `[2^(i/SUB) µs, 2^((i+1)/SUB) µs)` at `SUB` sub-buckets per octave,
/// spanning 1 µs up to ~1.2 hours.
const BUCKETS: usize = 128;
/// Sub-buckets per factor-of-two, trading memory for quantile resolution.
const SUB: u32 = 4;

/// A fixed-memory, thread-safe latency histogram with logarithmic buckets
/// (~19% relative resolution), supporting approximate quantiles without
/// retaining per-query samples.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

fn bucket_of(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    // log2(micros) * SUB, computed from the bit position + linear offset
    // within the octave.
    let msb = 63 - micros.leading_zeros() as u64;
    let base = (1u64) << msb;
    let frac = (((micros - base) as u128 * SUB as u128) / base as u128) as u64; // 0..SUB
    ((msb * SUB as u64) + frac).min(BUCKETS as u64 - 1) as usize
}

/// The representative (geometric-midpoint-ish) latency of a bucket.
fn bucket_value(i: usize) -> u64 {
    let msb = i as u32 / SUB;
    let frac = i as u32 % SUB;
    let base = 1u64 << msb;
    base + (base * frac as u64) / SUB as u64
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n)
    }

    /// The largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`), accurate to one bucket
    /// (~19% relative error). Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(bucket_value(i));
            }
        }
        self.max()
    }

    /// Total recorded latency (the Prometheus `_sum` of the histogram).
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed))
    }

    /// The cumulative distribution at octave boundaries, as Prometheus
    /// histogram buckets: one `(le_seconds, cumulative_count)` pair per
    /// power-of-two boundary `2^(o+1) µs` (so `2 µs, 4 µs, … ≈ 1.2 h`),
    /// counting every observation that landed strictly below the
    /// boundary. Counts are monotone nondecreasing and the final pair
    /// covers every bucket, so appending a `+Inf` bucket with
    /// [`LatencyHistogram::count`] yields a well-formed exposition.
    pub fn cumulative_octaves(&self) -> Vec<(f64, u64)> {
        let octaves = BUCKETS / SUB as usize;
        let mut out = Vec::with_capacity(octaves);
        let mut cumulative = 0u64;
        for o in 0..octaves {
            for i in (o * SUB as usize)..((o + 1) * SUB as usize) {
                cumulative += self.buckets[i].load(Ordering::Relaxed);
            }
            let le_us = (1u64 << (o + 1)) as f64;
            out.push((le_us * 1e-6, cumulative));
        }
        out
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
        self.max_micros.store(0, Ordering::Relaxed);
    }
}

/// The dense counter-slot index of a method — shared by the executor's
/// per-method histograms and the planner's calibration EWMAs so the two
/// tables can never disagree on which slot a method owns.
pub(crate) fn method_slot(m: Method) -> usize {
    match m {
        Method::Kpne => 0,
        Method::KpneDij => 1,
        Method::Pk => 2,
        Method::PkDij => 3,
        Method::Sk => 4,
        Method::SkDij => 5,
    }
}

/// Execution counters of one planner method (`Kpne`/`Pk`/`Sk`) — the
/// feedback signal planner calibration consumes: observed per-method
/// latency against the planner's selectivity-based choices. Cache hits are
/// excluded (they measure the cache, not the method).
#[derive(Clone, Copy, Debug)]
pub struct MethodStats {
    /// The method these counters describe.
    pub method: Method,
    /// Uncached completions executed with this method.
    pub completed: u64,
    /// Mean end-to-end latency of those completions.
    pub latency_mean: Duration,
    /// Median end-to-end latency.
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: Duration,
}

/// A point-in-time snapshot of the service's aggregate health — the
/// serving-layer analogue of the paper's per-query `QueryStats`.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Queries accepted into the queue (admission passed).
    pub submitted: u64,
    /// Queries answered successfully (from cache or by a worker).
    pub completed: u64,
    /// Rejections with [`crate::ServiceError::QueueFull`].
    pub rejected_queue_full: u64,
    /// Failures with [`crate::ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Failures with [`crate::ServiceError::BudgetExhausted`].
    pub budget_exhausted: u64,
    /// Rejections with [`crate::ServiceError::InvalidQuery`].
    pub rejected_invalid: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Queue pushes dropped across all executed queries because the
    /// remaining-sequence lower bound proved them uncompletable.
    pub bound_prunes: u64,
    /// `SeqBounds` fragments served from the cross-query witness cache
    /// (up to two per executed query: head and tail).
    pub witness_reuses: u64,
    /// Wall-clock window the stats cover (since start or last reset).
    pub window: Duration,
    /// Completed queries per second over `window`.
    pub qps: f64,
    /// Mean end-to-end latency (submit → response) of completed queries.
    pub latency_mean: Duration,
    /// Median end-to-end latency.
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: Duration,
    /// Largest observed end-to-end latency.
    pub latency_max: Duration,
    /// Total end-to-end latency across completed queries (the histogram's
    /// `_sum`).
    pub latency_sum: Duration,
    /// The cumulative latency distribution at octave boundaries —
    /// `(le_seconds, cumulative_count)` pairs straight from
    /// [`LatencyHistogram::cumulative_octaves`], what the Prometheus
    /// `*_bucket` export renders.
    pub latency_buckets: Vec<(f64, u64)>,
    /// Total worker compute time spent executing (uncached) queries —
    /// `busy / (window · workers)` is pool utilization, and the largest
    /// per-shard `busy` is a sharded deployment's capacity critical path.
    pub busy: Duration,
    /// Result-cache counters (hits/misses/evictions/size).
    pub cache: CacheStats,
    /// Per-method execution counters (methods with at least one uncached
    /// completion, in `Method::ALL` order).
    pub per_method: Vec<MethodStats>,
}

impl ServiceStats {
    /// Cache hit rate over completed queries, in `0.0 ..= 1.0`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} completed / {} submitted in {:.2?}  ({:.0} QPS)",
            self.completed, self.submitted, self.window, self.qps
        )?;
        writeln!(
            f,
            "latency: p50 {:?}  p99 {:?}  mean {:?}  max {:?}",
            self.latency_p50, self.latency_p99, self.latency_mean, self.latency_max
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits, {} misses, {} evictions, {} entries)",
            100.0 * self.cache_hit_rate(),
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries
        )?;
        writeln!(
            f,
            "bounds: {} pruned pushes, {} witness-fragment reuses",
            self.bound_prunes, self.witness_reuses
        )?;
        for m in &self.per_method {
            writeln!(
                f,
                "method {:>8}: {} runs  p50 {:?}  p99 {:?}  mean {:?}",
                m.method.name(),
                m.completed,
                m.latency_p50,
                m.latency_p99,
                m.latency_mean
            )?;
        }
        write!(
            f,
            "rejected: {} queue-full, {} deadline, {} budget, {} invalid",
            self.rejected_queue_full,
            self.deadline_exceeded,
            self.budget_exhausted,
            self.rejected_invalid
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_range() {
        let mut last = 0;
        for micros in [0u64, 1, 2, 3, 7, 8, 100, 999, 1000, 1_000_000, u64::MAX] {
            let b = bucket_of(micros);
            assert!(b >= last || micros <= 1, "bucket order at {micros}");
            last = b.max(last);
            assert!(b < BUCKETS);
        }
        // Representative values map back to their own bucket once octaves
        // are wide enough to hold SUB distinct integer sub-buckets.
        for i in (2 * SUB as usize)..BUCKETS {
            let v = bucket_value(i);
            assert_eq!(bucket_of(v), i, "bucket {i} value {v} maps back");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = LatencyHistogram::new();
        // 99 fast queries at ~1ms, one slow at ~1s.
        for _ in 0..99 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_secs(1));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert!(
            (Duration::from_micros(800)..Duration::from_micros(1300)).contains(&p50),
            "p50={p50:?}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 < Duration::from_millis(2), "p99 is still fast: {p99:?}");
        assert!(h.quantile(1.0) >= Duration::from_millis(900));
        assert!(h.max() >= Duration::from_secs(1));
        assert!(h.mean() >= Duration::from_millis(10));

        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn cumulative_octaves_form_a_monotone_cdf() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 3, 100, 1000, 1000, 5_000_000] {
            h.record(Duration::from_micros(micros));
        }
        let buckets = h.cumulative_octaves();
        assert_eq!(buckets.len(), BUCKETS / SUB as usize);
        let mut last = 0;
        for (le, cum) in &buckets {
            assert!(*le > 0.0);
            assert!(*cum >= last, "cumulative counts never decrease");
            last = *cum;
        }
        assert_eq!(last, h.count(), "the widest bucket covers everything");
        // The 1 µs observation sits below the first (2 µs) boundary; the
        // two 1 ms observations are inside the ≤ ~2 ms boundary.
        assert_eq!(buckets[0].1, 1);
        let two_ms = buckets.iter().find(|(le, _)| *le >= 2e-3).unwrap();
        assert_eq!(two_ms.1, 5, "everything but the 5 s outlier");
        assert_eq!(h.sum(), Duration::from_micros(5_002_104));
    }

    #[test]
    fn stats_display_and_hit_rate() {
        let mut s = ServiceStats {
            submitted: 10,
            completed: 8,
            cache_hits: 2,
            ..Default::default()
        };
        s.qps = 100.0;
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("8 completed"));
        assert!(text.contains("hit rate"));
        assert_eq!(ServiceStats::default().cache_hit_rate(), 0.0);
    }
}
