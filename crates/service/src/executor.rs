//! The serving engine: a worker pool draining a bounded submission queue
//! against one shared, immutable [`IndexedGraph`].
//!
//! Life of a query:
//!
//! 1. **Admission** — [`KosrService::submit`] validates the query against
//!    the graph (typed rejection on bad endpoints / categories / k) and
//!    refuses when the queue is full, so overload sheds load instead of
//!    buffering unboundedly.
//! 2. **Planning** — the [`QueryPlanner`] picks a method and expansion
//!    budget from the query's shape and category selectivity.
//! 3. **Cache** — a canonicalised-key LRU returns memoised outcomes for
//!    repeat queries without touching a worker's search state.
//! 4. **Execution** — a worker runs `IndexedGraph::run_canonical` against
//!    an epoch-stamped snapshot of the index; the outcome travels back
//!    through the ticket. End-to-end latency (queue wait included) feeds
//!    the service and per-method histograms.
//! 5. **Live updates** — [`KosrService::apply_update`] mutates the index
//!    copy-on-write behind an `RwLock`, bumps the index epoch, and drives
//!    the matching cache-invalidation hook; workers refuse to cache
//!    results computed against a superseded epoch, so a stale answer is
//!    never served after an update.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use kosr_core::{IndexedGraph, KosrOutcome, Method, Query};
use kosr_graph::{CategoryId, VertexId, Weight};

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::error::{ServiceError, UpdateError};
use crate::events::{EventJournal, EventKind, Source};
use crate::planner::{QueryPlan, QueryPlanner};
use crate::stats::{method_slot, LatencyHistogram, MethodStats, ServiceStats};
use crate::trace::{span_id_for, Span, SpanRing, TagValue, TraceContext};
use crate::witness::WitnessCache;

/// Service tunables.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. `0` means one per core.
    pub workers: usize,
    /// Submission-queue capacity; submissions beyond it get
    /// [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Planner thresholds.
    pub planner: crate::planner::PlannerConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_capacity: 4096,
            cache_capacity: 8192,
            planner: Default::default(),
        }
    }
}

/// A successfully answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The routes and per-query search instrumentation.
    pub outcome: KosrOutcome,
    /// What the planner decided for this query.
    pub plan: QueryPlan,
    /// `true` when the outcome came from the result cache.
    pub cached: bool,
    /// End-to-end latency: submission to response, queue wait included.
    pub latency: Duration,
    /// Replica-side spans, populated only for sampled traced submissions
    /// (see [`KosrService::submit_traced`]); empty otherwise.
    pub spans: Vec<Span>,
}

/// A pending response: redeem with [`Ticket::wait`].
#[must_use = "a ticket must be waited on to observe the query's result"]
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the query resolves.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerLost))
    }

    fn immediate(result: Result<QueryResponse, ServiceError>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(result);
        Ticket { rx }
    }
}

/// A dynamic update routed through a live service (the paper's §IV-C
/// operations, service-side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Add `vertex` to `category` (a POI opens / gains a tag).
    InsertMembership {
        /// The vertex gaining the membership.
        vertex: VertexId,
        /// The category gaining a member.
        category: CategoryId,
    },
    /// Remove `vertex` from `category` (a POI closes / loses a tag).
    RemoveMembership {
        /// The vertex losing the membership.
        vertex: VertexId,
        /// The category losing a member.
        category: CategoryId,
    },
    /// Insert edge `(from, to)` with `weight`, or decrease an existing
    /// edge's weight to `weight` (a road opens / congestion clears).
    InsertEdge {
        /// Edge source.
        from: VertexId,
        /// Edge target.
        to: VertexId,
        /// The new weight (must be smaller than any existing weight).
        weight: Weight,
    },
}

impl Update {
    /// The category whose cached answers the update can stale, if the
    /// update is category-scoped (`None` for structural updates, which
    /// stale everything).
    pub fn touched_category(&self) -> Option<CategoryId> {
        match self {
            Update::InsertMembership { category, .. }
            | Update::RemoveMembership { category, .. } => Some(*category),
            Update::InsertEdge { .. } => None,
        }
    }
}

/// What applying an [`Update`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReceipt {
    /// `false` when the update was a validated no-op (e.g. inserting an
    /// existing membership).
    pub applied: bool,
    /// 2-hop label entries added by an [`Update::InsertEdge`] repair.
    pub label_entries_added: usize,
    /// Cached results dropped by the matching invalidation hook.
    pub invalidated: usize,
}

struct Job {
    query: Query,
    key: CacheKey,
    plan: QueryPlan,
    submitted: Instant,
    /// Set only for sampled traced submissions: the propagated context
    /// plus how long admission (validate + plan + cache probe) took, so
    /// the worker can attribute the queue wait separately.
    trace: Option<JobTrace>,
    tx: mpsc::Sender<Result<QueryResponse, ServiceError>>,
}

struct JobTrace {
    ctx: TraceContext,
    admission_us: u64,
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// The per-stage measurements one traced query accumulates replica-side.
struct StageProfile {
    admission_us: u64,
    queue_us: u64,
    cache_us: u64,
    cache_hit: bool,
    /// `(execution wall, outcome profile)` for uncached completions.
    exec: Option<(u64, ExecProfile)>,
}

/// Algorithm-level counters lifted off a [`KosrOutcome`] — the paper's
/// pruning-effectiveness evidence, per query.
struct ExecProfile {
    epoch: u64,
    pne_expansions: u64,
    dominated: u64,
    nn_queries: u64,
    heap_peak: u64,
    bound_pruned: u64,
    table_hits: u64,
}

/// Builds the replica-side span tree: a `replica` root parented under the
/// propagated context, with sequential `admission`/`queue`/`cache`(/
/// `execute`) stage children whose durations sum to at most the root's.
fn build_replica_spans(
    ctx: &TraceContext,
    plan: &QueryPlan,
    total_us: u64,
    stages: &StageProfile,
) -> Vec<Span> {
    let t = ctx.trace_id;
    let root_id = span_id_for(t, ctx.parent_span, 0);
    let root = Span::new(root_id, Some(ctx.parent_span), "replica", 0, total_us);
    let admission = Span::new(
        span_id_for(t, root_id, 0),
        Some(root_id),
        "admission",
        0,
        stages.admission_us.min(total_us),
    )
    .tag("method", TagValue::Str(format!("{:?}", plan.method)))
    .tag("budget", TagValue::U64(plan.examined_budget));
    let queue = Span::new(
        span_id_for(t, root_id, 1),
        Some(root_id),
        "queue",
        admission.duration_us,
        stages.queue_us.min(total_us),
    );
    let cache = Span::new(
        span_id_for(t, root_id, 2),
        Some(root_id),
        "cache",
        admission.duration_us + queue.duration_us,
        stages.cache_us.min(total_us),
    )
    .tag("hit", TagValue::Bool(stages.cache_hit));
    let mut spans = vec![root, admission, queue, cache];
    if let Some((exec_us, profile)) = &stages.exec {
        let start = spans[1].duration_us + spans[2].duration_us + spans[3].duration_us;
        spans.push(
            Span::new(
                span_id_for(t, root_id, 3),
                Some(root_id),
                "execute",
                start,
                (*exec_us).min(total_us),
            )
            .tag("method", TagValue::Str(format!("{:?}", plan.method)))
            .tag("pne_expansions", TagValue::U64(profile.pne_expansions))
            .tag("dominated", TagValue::U64(profile.dominated))
            .tag("nn_queries", TagValue::U64(profile.nn_queries))
            .tag("heap_peak", TagValue::U64(profile.heap_peak))
            .tag("bound_prunes", TagValue::U64(profile.bound_pruned))
            .tag("table_hits", TagValue::U64(profile.table_hits))
            .tag("budget", TagValue::U64(plan.examined_budget))
            .tag("epoch", TagValue::U64(profile.epoch)),
        );
    }
    spans
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// Per-method execution counters (uncached completions only).
#[derive(Default)]
struct MethodCounter {
    completed: AtomicU64,
    latency: LatencyHistogram,
}

struct Shared {
    /// The served index. Reads take a brief shared lock to clone the
    /// `Arc`; updates mutate copy-on-write behind the exclusive lock.
    index: RwLock<Arc<IndexedGraph>>,
    /// Bumped (under the write lock) by every applied update. Workers
    /// stamp their index snapshot with it and refuse to cache results
    /// whose epoch is no longer current — the guard that makes
    /// invalidation race-free against in-flight queries.
    epoch: AtomicU64,
    planner: QueryPlanner,
    queue: Mutex<QueueState>,
    /// Signals workers that a job (or shutdown) is available.
    wake: Condvar,
    queue_capacity: usize,
    /// `cache_capacity > 0`: lets hot paths skip the cache mutex entirely
    /// when caching is disabled.
    cache_enabled: bool,
    cache: Mutex<ResultCache>,
    /// Cross-query witness reuse: cached `SeqBounds` fragments keyed by
    /// `(source, C₁)` and `(categories, target)`. Epoch-guarded
    /// internally — a fragment never outlives the index it was exact for.
    witness: Mutex<WitnessCache>,
    /// The oldest upstream update-log sequence still replayable, as told
    /// by `Compact` notices. Monotone; the transport host refuses notices
    /// that would move it backwards (a stale controller's view).
    log_head: AtomicU64,
    latency: LatencyHistogram,
    /// The replica-local lifecycle journal: epoch swaps and calibration
    /// adjustments land here (never the query hot path), and transport
    /// hosts forward it fleet-ward piggybacked on heartbeat responses.
    events: Arc<EventJournal>,
    /// The replica tier's recent-span ring: every span produced for a
    /// sampled trace also lands here for local diagnostics.
    spans: SpanRing,
    methods: [MethodCounter; 6],
    /// Total worker compute time (µs) spent executing uncached queries —
    /// the capacity signal: `busy / (window · workers)` is pool
    /// utilization, and shard schedulers use it as the scale-out critical
    /// path.
    busy_micros: AtomicU64,
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    deadline_exceeded: AtomicU64,
    budget_exhausted: AtomicU64,
    rejected_invalid: AtomicU64,
    cache_hits: AtomicU64,
    /// Queue pushes dropped because the remaining-sequence bound proved
    /// them uncompletable, summed over every executed query.
    bound_prunes: AtomicU64,
    /// `SeqBounds` fragments served from the witness cache (0–2 per
    /// executed query: head and/or tail).
    witness_reuses: AtomicU64,
}

impl Shared {
    fn respond(
        &self,
        tx: &mpsc::Sender<Result<QueryResponse, ServiceError>>,
        result: Result<QueryResponse, ServiceError>,
    ) {
        match &result {
            Ok(resp) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                if resp.cached {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    let m = &self.methods[method_slot(resp.plan.method)];
                    m.completed.fetch_add(1, Ordering::Relaxed);
                    m.latency.record(resp.latency);
                    // Close the calibration loop: observed per-method
                    // latency feeds the planner's threshold EWMAs, and a
                    // clean completion decays the budget scale back toward
                    // its configured floor (both no-ops unless `calibrate`
                    // is on).
                    self.planner.observe(resp.plan.method, resp.latency);
                    self.planner.observe_budget(false);
                }
                self.latency.record(resp.latency);
            }
            Err(ServiceError::DeadlineExceeded { .. }) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::BudgetExhausted { .. }) => {
                self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        // A dropped ticket just means the caller stopped listening.
        let _ = tx.send(result);
    }

    /// Snapshots the served index together with the epoch it belongs to.
    /// Both are read under one shared lock, so the pair is consistent.
    fn index_snapshot(&self) -> (u64, Arc<IndexedGraph>) {
        let guard = self.index.read().unwrap();
        (self.epoch.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Builds, records (in the replica span ring) and returns the span
    /// tree of one traced job.
    fn trace_spans(
        &self,
        trace: &JobTrace,
        plan: &QueryPlan,
        total_us: u64,
        stages: StageProfile,
    ) -> Vec<Span> {
        let spans = build_replica_spans(&trace.ctx, plan, total_us, &stages);
        for s in &spans {
            self.spans.record(s.clone());
        }
        spans
    }

    fn execute(&self, job: Job) {
        let queue_us = job
            .trace
            .as_ref()
            .map(|t| elapsed_us(job.submitted).saturating_sub(t.admission_us))
            .unwrap_or(0);
        if let Some(deadline) = job.plan.deadline {
            if job.submitted.elapsed() > deadline {
                self.respond(&job.tx, Err(ServiceError::DeadlineExceeded { deadline }));
                return;
            }
        }

        let mut cache_us = 0;
        if self.cache_enabled {
            let probe_started = Instant::now();
            let hit = self.cache.lock().unwrap().get_prefix(&job.key);
            cache_us = elapsed_us(probe_started);
            if let Some((outcome, _)) = hit {
                let spans = match &job.trace {
                    Some(t) => self.trace_spans(
                        t,
                        &job.plan,
                        elapsed_us(job.submitted),
                        StageProfile {
                            admission_us: t.admission_us,
                            queue_us,
                            cache_us,
                            cache_hit: true,
                            exec: None,
                        },
                    ),
                    None => Vec::new(),
                };
                self.respond(
                    &job.tx,
                    Ok(QueryResponse {
                        outcome,
                        plan: job.plan,
                        cached: true,
                        latency: job.submitted.elapsed(),
                        spans,
                    }),
                );
                return;
            }
        }

        let (epoch, ig) = self.index_snapshot();
        let exec_started = Instant::now();
        // Assemble the query's remaining-sequence bounds through the
        // witness cache (reusing fragments from earlier queries that share
        // a head or tail), then run the bound-pruned search. Identical
        // routes either way — the bounds only change how fast we get them.
        let (bounds, table_hits) = if job.plan.use_bounds {
            let (sb, hits) = self
                .witness
                .lock()
                .unwrap()
                .seq_bounds(epoch, &ig, &job.query);
            (Some(sb), hits)
        } else {
            (None, 0)
        };
        if table_hits > 0 {
            self.witness_reuses.fetch_add(table_hits, Ordering::Relaxed);
        }
        let outcome = ig.run_canonical_opt(
            &job.query,
            job.plan.method,
            job.plan.examined_budget,
            bounds.as_ref(),
        );
        let exec_us = elapsed_us(exec_started);
        self.busy_micros.fetch_add(exec_us, Ordering::Relaxed);
        if outcome.stats.bound_pruned > 0 {
            self.bound_prunes
                .fetch_add(outcome.stats.bound_pruned, Ordering::Relaxed);
        }

        if outcome.stats.truncated {
            // The budget ran out before all k routes were found: surface a
            // typed failure rather than caching a partial answer — and
            // feed the exhaustion into budget calibration so repeat
            // offenders get a larger (clamped) budget.
            self.planner.observe_budget(true);
            self.respond(
                &job.tx,
                Err(ServiceError::BudgetExhausted {
                    examined_budget: job.plan.examined_budget,
                }),
            );
            return;
        }

        if self.cache_enabled {
            let mut cache = self.cache.lock().unwrap();
            // Epoch guard: an update may have superseded the snapshot this
            // outcome was computed from *after* the invalidation hook ran;
            // caching it would resurrect a stale answer. (An insert racing
            // *ahead* of the invalidation is fine — the hook sweeps it.)
            if self.epoch.load(Ordering::Acquire) == epoch {
                cache.insert(job.key, outcome.clone());
            }
        }
        let spans = match &job.trace {
            Some(t) => self.trace_spans(
                t,
                &job.plan,
                elapsed_us(job.submitted),
                StageProfile {
                    admission_us: t.admission_us,
                    queue_us,
                    cache_us,
                    cache_hit: false,
                    exec: Some((
                        exec_us,
                        ExecProfile {
                            epoch,
                            pne_expansions: outcome.stats.examined_routes,
                            dominated: outcome.stats.dominated_routes,
                            nn_queries: outcome.stats.nn_queries,
                            heap_peak: outcome.stats.heap_peak as u64,
                            bound_pruned: outcome.stats.bound_pruned,
                            table_hits,
                        },
                    )),
                },
            ),
            None => Vec::new(),
        };
        self.respond(
            &job.tx,
            Ok(QueryResponse {
                outcome,
                plan: job.plan,
                cached: false,
                latency: job.submitted.elapsed(),
                spans,
            }),
        );
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutting_down {
                        return;
                    }
                    q = self.wake.wait(q).unwrap();
                }
            };
            self.execute(job);
        }
    }
}

/// A thread-safe KOSR serving engine over one shared immutable index.
///
/// Dropping the service drains outstanding work: already-queued queries
/// are answered, new submissions are refused, workers then join.
pub struct KosrService {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl KosrService {
    /// Spawns the worker pool against `ig`.
    pub fn new(ig: Arc<IndexedGraph>, config: ServiceConfig) -> KosrService {
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            index: RwLock::new(ig),
            epoch: AtomicU64::new(0),
            planner: QueryPlanner::new(config.planner),
            queue: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            cache_enabled: config.cache_capacity > 0,
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            witness: Mutex::new(WitnessCache::default()),
            log_head: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            events: Arc::new(EventJournal::new(128)),
            spans: SpanRing::new(256),
            methods: Default::default(),
            busy_micros: AtomicU64::new(0),
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            budget_exhausted: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            bound_prunes: AtomicU64::new(0),
            witness_reuses: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("kosr-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        KosrService {
            shared,
            workers: handles,
        }
    }

    /// A point-in-time snapshot of the served index. Updates replace the
    /// `Arc` copy-on-write, so a held snapshot stays internally consistent
    /// (and goes stale) rather than changing underfoot.
    pub fn indexed_graph(&self) -> Arc<IndexedGraph> {
        self.shared.index_snapshot().1
    }

    /// The planner configuration this service was built with — what the
    /// shard router reads to honor per-fleet toggles (e.g. `use_bounds`)
    /// in its own pre-submission gates.
    pub fn planner_config(&self) -> &crate::planner::PlannerConfig {
        self.shared.planner.config()
    }

    /// The index epoch: bumped by every applied [`Update`]. Snapshot +
    /// epoch pairs let callers detect staleness.
    pub fn index_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The served index together with the epoch it belongs to, read under
    /// one lock so the pair is consistent even against concurrent updates.
    /// This is what transport hosts serialize when a cold replica asks for
    /// a snapshot.
    pub fn epoch_and_index(&self) -> (u64, Arc<IndexedGraph>) {
        self.shared.index_snapshot()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The planner's decision for `query` (what execution would do) —
    /// exposed so callers and tests can cross-check plans.
    pub fn plan(&self, query: &Query) -> QueryPlan {
        self.shared.planner.plan(&self.indexed_graph(), query)
    }

    /// Admission control + enqueue. Returns a [`Ticket`] redeemable for the
    /// response, or a typed rejection without consuming worker time.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServiceError> {
        self.submit_traced(query, None)
    }

    /// [`KosrService::submit`] with a propagated [`TraceContext`]: when the
    /// context is present and sampled, the response carries the replica's
    /// span tree (admission / queue / cache / execute with the paper's
    /// pruning counters). With `None` — the plain `submit` path — tracing
    /// costs one branch.
    pub fn submit_traced(
        &self,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> Result<Ticket, ServiceError> {
        let submitted = Instant::now();
        let trace = ctx.filter(|c| c.sampled);
        let ig = self.indexed_graph();
        if let Err(e) = query.validate(&ig.graph) {
            self.shared.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::InvalidQuery(e));
        }
        let plan = self.shared.planner.plan(&ig, &query);
        let key = CacheKey::canonical(&query);
        let admission_us = elapsed_us(submitted);

        // Fast path: answer cache hits inline — no queue round-trip for hot
        // repeated queries. `try_lock` keeps submitters from serialising on
        // the cache mutex under contention: on a busy cache the query just
        // takes the queue path, where the worker re-checks the cache.
        if self.shared.cache_enabled {
            // `probe_prefix` (not `get_prefix`) so a cold query missed here
            // and again by the worker is charged exactly one miss in the
            // counters.
            let probe_started = Instant::now();
            let cached = match self.shared.cache.try_lock() {
                Ok(mut cache) => cache.probe_prefix(&key).map(|(outcome, _)| outcome),
                Err(_) => None,
            };
            let cache_us = elapsed_us(probe_started);
            if let Some(outcome) = cached {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                let spans = match &trace {
                    Some(c) => self.shared.trace_spans(
                        &JobTrace {
                            ctx: *c,
                            admission_us,
                        },
                        &plan,
                        elapsed_us(submitted),
                        StageProfile {
                            admission_us,
                            queue_us: 0,
                            cache_us,
                            cache_hit: true,
                            exec: None,
                        },
                    ),
                    None => Vec::new(),
                };
                let resp = QueryResponse {
                    outcome,
                    plan,
                    cached: true,
                    latency: submitted.elapsed(),
                    spans,
                };
                self.shared.completed.fetch_add(1, Ordering::Relaxed);
                self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.shared.latency.record(resp.latency);
                return Ok(Ticket::immediate(Ok(resp)));
            }
        }

        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.shutting_down {
                return Err(ServiceError::ShuttingDown);
            }
            if q.jobs.len() >= self.shared.queue_capacity {
                self.shared
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            q.jobs.push_back(Job {
                query,
                key,
                plan,
                submitted,
                trace: trace.map(|ctx| JobTrace { ctx, admission_us }),
                tx,
            });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_one();
        Ok(Ticket { rx })
    }

    /// The replica tier's recent-span ring (sampled traces only), oldest
    /// first — local diagnostics even when the edge assembling full traces
    /// is elsewhere.
    pub fn recent_spans(&self) -> Vec<Span> {
        self.shared.spans.recent()
    }

    /// The replica-local lifecycle journal (epoch swaps, calibration
    /// adjustments). Transport hosts drain it over the wire so the fleet
    /// journal sees remote replicas' lifecycle too.
    pub fn events(&self) -> Arc<EventJournal> {
        Arc::clone(&self.shared.events)
    }

    /// Submits a whole batch and blocks until every query resolves;
    /// responses come back in input order. Queries the queue cannot admit
    /// are reported as their rejection error in-place.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<QueryResponse, ServiceError>> {
        let tickets: Vec<Result<Ticket, ServiceError>> =
            queries.iter().map(|q| self.submit(q.clone())).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait))
            .collect()
    }

    /// Applies a dynamic update end-to-end: mutates the served index
    /// (copy-on-write behind the index lock), bumps the index epoch, and
    /// drives the matching cache-invalidation hook — membership updates
    /// drop only the answers touching the category, structural updates
    /// drop everything. After `apply_update` returns, no response can ever
    /// again be served from a pre-update answer: already-cached stale
    /// entries are swept by the hook, and in-flight queries computed
    /// against the old snapshot are barred from the cache by the epoch
    /// guard (they still *answer* with the old snapshot — updates are
    /// linearised at the index swap, not at submission).
    ///
    /// Copy-on-write means an update clones the index only when snapshots
    /// are held elsewhere (in-flight queries, external `Arc`s); a quiescent
    /// service mutates in place, and edge inserts repair the 2-hop labels
    /// incrementally either way.
    pub fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, UpdateError> {
        let mut guard = self.shared.index.write().unwrap();
        // Validate against the current index before mutating.
        let n = guard.graph.num_vertices();
        let nc = guard.graph.categories().num_categories();
        let check_vertex = |v: VertexId| {
            (v.index() < n)
                .then_some(())
                .ok_or(UpdateError::VertexOutOfRange(v))
        };
        let (applied, label_entries_added) = match *update {
            Update::InsertMembership { vertex, category } => {
                check_vertex(vertex)?;
                if category.index() >= nc {
                    return Err(UpdateError::UnknownCategory(category));
                }
                (
                    Arc::make_mut(&mut guard).insert_membership(vertex, category),
                    0,
                )
            }
            Update::RemoveMembership { vertex, category } => {
                check_vertex(vertex)?;
                if category.index() >= nc {
                    return Err(UpdateError::UnknownCategory(category));
                }
                (
                    Arc::make_mut(&mut guard).remove_membership(vertex, category),
                    0,
                )
            }
            Update::InsertEdge { from, to, weight } => {
                check_vertex(from)?;
                check_vertex(to)?;
                let added = Arc::make_mut(&mut guard).insert_edge(from, to, weight)?;
                (true, added)
            }
        };
        if applied {
            // Bump while still holding the write lock: workers read
            // (epoch, index) under the read lock, so the pair is atomic.
            self.shared.epoch.fetch_add(1, Ordering::Release);
        }
        drop(guard);

        let invalidated = if applied {
            let dropped = match update.touched_category() {
                Some(c) => self.invalidate_category(c),
                None => self.invalidate_all(),
            };
            self.shared.events.emit(
                Source::Service,
                EventKind::EpochSwap,
                None,
                vec![
                    ("epoch".to_string(), TagValue::U64(self.index_epoch())),
                    ("reason".to_string(), TagValue::Str("update".to_string())),
                    ("invalidated".to_string(), TagValue::U64(dropped as u64)),
                ],
            );
            dropped
        } else {
            0
        };
        Ok(UpdateReceipt {
            applied,
            label_entries_added,
            invalidated,
        })
    }

    /// Replaces the served index wholesale with `ig` — the snapshot-push
    /// recovery path: a supervisor ships a fresher replica's snapshot into
    /// this one when the update-log suffix it missed has been compacted
    /// away. The swap bumps the index epoch (so in-flight queries computed
    /// against the old index are barred from the cache) and flushes every
    /// cached answer.
    pub fn install_index(&self, ig: Arc<IndexedGraph>) {
        {
            let mut guard = self.shared.index.write().unwrap();
            *guard = ig;
            // Bump under the write lock: workers read (epoch, index) under
            // the read lock, so the pair stays atomic.
            self.shared.epoch.fetch_add(1, Ordering::Release);
        }
        let dropped = self.invalidate_all();
        self.shared.events.emit(
            Source::Service,
            EventKind::EpochSwap,
            None,
            vec![
                ("epoch".to_string(), TagValue::U64(self.index_epoch())),
                (
                    "reason".to_string(),
                    TagValue::Str("snapshot_install".to_string()),
                ),
                ("invalidated".to_string(), TagValue::U64(dropped as u64)),
            ],
        );
    }

    /// Records an upstream update-log compaction notice: entries below
    /// `through` are gone. The head is monotone — `Ok(head)` with the new
    /// (possibly unchanged) head, or `Err(current)` when `through` is
    /// *behind* the recorded head, which marks the notice's sender stale.
    pub fn advance_log_head(&self, through: u64) -> Result<u64, u64> {
        let mut current = self.shared.log_head.load(Ordering::Acquire);
        loop {
            if through < current {
                return Err(current);
            }
            match self.shared.log_head.compare_exchange_weak(
                current,
                through,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(through),
                Err(seen) => current = seen,
            }
        }
    }

    /// The recorded upstream update-log head (see
    /// [`KosrService::advance_log_head`]).
    pub fn log_head(&self) -> u64 {
        self.shared.log_head.load(Ordering::Acquire)
    }

    /// Seeds the planner's calibration EWMAs from an existing
    /// [`MethodStats`] snapshot (e.g. another replica's counters) — see
    /// [`crate::QueryPlanner::calibrate_from`].
    pub fn calibrate_from(&self, stats: &[MethodStats]) {
        self.shared.planner.calibrate_from(stats);
        self.shared.events.emit(
            Source::Service,
            EventKind::CalibrationAdjusted,
            None,
            vec![
                (
                    "reason".to_string(),
                    TagValue::Str("peer_stats".to_string()),
                ),
                ("methods".to_string(), TagValue::U64(stats.len() as u64)),
            ],
        );
    }

    /// Serializes the planner's learned calibration state so a restarted
    /// service can resume with learned thresholds instead of defaults —
    /// see [`crate::QueryPlanner::encode_calibration`].
    pub fn encode_calibration(&self) -> Vec<u8> {
        self.shared.planner.encode_calibration()
    }

    /// Restores learned calibration state from an
    /// [`KosrService::encode_calibration`] blob; total and panic-free —
    /// see [`crate::QueryPlanner::decode_calibration`].
    pub fn decode_calibration(
        &self,
        blob: &[u8],
    ) -> Result<(), crate::planner::CalibrationBlobError> {
        self.shared.planner.decode_calibration(blob)?;
        self.shared.events.emit(
            Source::Service,
            EventKind::CalibrationAdjusted,
            None,
            vec![(
                "reason".to_string(),
                TagValue::Str("blob_restore".to_string()),
            )],
        );
        Ok(())
    }

    /// Per-method execution counters with at least one completion, in
    /// `Method::ALL` order.
    pub fn method_stats(&self) -> Vec<MethodStats> {
        Method::ALL
            .into_iter()
            .filter_map(|m| {
                let c = &self.shared.methods[method_slot(m)];
                let completed = c.completed.load(Ordering::Relaxed);
                (completed > 0).then(|| MethodStats {
                    method: m,
                    completed,
                    latency_mean: c.latency.mean(),
                    latency_p50: c.latency.quantile(0.5),
                    latency_p99: c.latency.quantile(0.99),
                })
            })
            .collect()
    }

    /// Drops every cached answer touching category `c` — the hook dynamic
    /// category updates drive (directly or through [`Self::apply_update`]).
    pub fn invalidate_category(&self, c: CategoryId) -> usize {
        self.shared.cache.lock().unwrap().invalidate_category(c)
    }

    /// Drops the whole result cache (graph-structure updates).
    pub fn invalidate_all(&self) -> usize {
        self.shared.cache.lock().unwrap().clear()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().unwrap().stats()
    }

    /// Aggregate service health snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared;
        let window = s.started.elapsed();
        let completed = s.completed.load(Ordering::Relaxed);
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed,
            rejected_queue_full: s.rejected_queue_full.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            budget_exhausted: s.budget_exhausted.load(Ordering::Relaxed),
            rejected_invalid: s.rejected_invalid.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            bound_prunes: s.bound_prunes.load(Ordering::Relaxed),
            witness_reuses: s.witness_reuses.load(Ordering::Relaxed),
            window,
            qps: if window.as_secs_f64() > 0.0 {
                completed as f64 / window.as_secs_f64()
            } else {
                0.0
            },
            latency_mean: s.latency.mean(),
            latency_p50: s.latency.quantile(0.5),
            latency_p99: s.latency.quantile(0.99),
            latency_max: s.latency.max(),
            latency_sum: s.latency.sum(),
            latency_buckets: s.latency.cumulative_octaves(),
            busy: Duration::from_micros(s.busy_micros.load(Ordering::Relaxed)),
            cache: s.cache.lock().unwrap().stats(),
            per_method: self.method_stats(),
        }
    }
}

impl Drop for KosrService {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutting_down = true;
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Convenience: answers `queries` sequentially on the caller's thread with
/// the same planner policy and canonical top-k semantics a service would
/// use — the single-threaded baseline services (and shard routers) are
/// validated against, bit for bit.
pub fn run_sequential(
    ig: &IndexedGraph,
    planner: &QueryPlanner,
    queries: &[Query],
) -> Vec<KosrOutcome> {
    queries
        .iter()
        .map(|q| {
            let plan = planner.plan(ig, q);
            if plan.use_bounds {
                let sb = ig.seq_bounds(q);
                ig.run_canonical_opt(q, plan.method, plan.examined_budget, Some(&sb))
            } else {
                ig.run_canonical(q, plan.method, plan.examined_budget)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;

    fn service(
        workers: usize,
        queue: usize,
        cache: usize,
    ) -> (KosrService, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        (
            KosrService::new(
                ig,
                ServiceConfig {
                    workers,
                    queue_capacity: queue,
                    cache_capacity: cache,
                    ..Default::default()
                },
            ),
            fx,
        )
    }

    fn fig1_query(fx: &kosr_core::figure1::Figure1, k: usize) -> Query {
        Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], k)
    }

    #[test]
    fn answers_figure1_through_the_pool() {
        let (svc, fx) = service(4, 64, 64);
        let resp = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(!resp.cached);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_identical_routes() {
        let (svc, fx) = service(2, 64, 64);
        let first = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        let second = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(
            first
                .outcome
                .witnesses
                .iter()
                .map(|w| &w.vertices)
                .collect::<Vec<_>>(),
            second
                .outcome
                .witnesses
                .iter()
                .map(|w| &w.vertices)
                .collect::<Vec<_>>(),
        );
        assert_eq!(first.outcome.costs(), second.outcome.costs());
        let stats = svc.stats();
        assert_eq!(stats.cache_hits, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_queries_rejected_at_admission() {
        let (svc, fx) = service(1, 8, 8);
        let bad = Query::new(fx.s, fx.t, vec![fx.ma], 0);
        match svc.submit(bad) {
            Err(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK)) => {}
            other => panic!("expected ZeroK rejection, got {other:?}"),
        }
        let bad_cat = Query::new(fx.s, fx.t, vec![kosr_graph::CategoryId(99)], 1);
        assert!(matches!(
            svc.submit(bad_cat),
            Err(ServiceError::InvalidQuery(
                kosr_core::QueryError::UnknownCategory(_)
            ))
        ));
        assert_eq!(svc.stats().rejected_invalid, 2);
        assert_eq!(svc.stats().submitted, 0);
    }

    #[test]
    fn batch_preserves_order_and_reports_inline_errors() {
        let (svc, fx) = service(4, 64, 0);
        let queries = vec![
            fig1_query(&fx, 1),
            Query::new(fx.s, fx.t, vec![fx.ma], 0), // invalid
            fig1_query(&fx, 3),
        ];
        let results = svc.run_batch(&queries);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().outcome.costs(), vec![20]);
        assert!(matches!(
            results[1],
            Err(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK))
        ));
        assert_eq!(
            results[2].as_ref().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn zero_deadline_times_out_in_queue() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                planner: crate::planner::PlannerConfig {
                    deadline: Some(Duration::ZERO),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let err = svc
            .submit(fig1_query(&fx, 3))
            .unwrap()
            .wait()
            .expect_err("a zero deadline cannot be met");
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        );
        assert_eq!(svc.stats().deadline_exceeded, 1);
    }

    #[test]
    fn truncated_searches_report_budget_exhausted_and_stay_uncached() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                planner: crate::planner::PlannerConfig {
                    // One examined route cannot complete k=3.
                    expansion_per_level: 0,
                    max_examined: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let err = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap_err();
        assert!(
            matches!(err, ServiceError::BudgetExhausted { .. }),
            "{err:?}"
        );
        assert_eq!(svc.stats().budget_exhausted, 1);
        assert_eq!(svc.stats().deadline_exceeded, 0);
        assert_eq!(
            svc.cache_stats().insertions,
            0,
            "partial answers not cached"
        );
    }

    #[test]
    fn queue_full_rejects_while_workers_are_wedged() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 8,
                ..Default::default()
            },
        );
        // Wedge the worker: it must take the cache lock before executing
        // any job, so holding it from here freezes the drain deterministically.
        // Distinct k values keep every submission off the submit-side
        // cache fast path (all cold misses).
        let mut tickets = Vec::new();
        let mut rejected = 0;
        {
            let _wedge = svc.shared.cache.lock().unwrap();
            for k in 1..=8 {
                match svc.submit(fig1_query(&fx, k)) {
                    Ok(t) => tickets.push(t),
                    Err(ServiceError::QueueFull { capacity }) => {
                        assert_eq!(capacity, 2);
                        rejected += 1;
                    }
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
        // Capacity 2 + at most 1 job already claimed by the worker: at
        // least 5 of the 8 must have been shed.
        assert!(rejected >= 5, "rejected={rejected}");
        assert_eq!(svc.stats().rejected_queue_full, rejected);
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn category_invalidation_forces_recompute() {
        let (svc, fx) = service(2, 16, 16);
        let _ = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert_eq!(svc.cache_stats().entries, 1);
        assert_eq!(svc.invalidate_category(fx.re), 1);
        assert_eq!(svc.cache_stats().entries, 0);
        let again = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert!(!again.cached, "invalidated entry must be recomputed");
        assert_eq!(svc.invalidate_all(), 1);
    }

    #[test]
    fn drop_drains_and_joins() {
        let (svc, fx) = service(2, 64, 0);
        let tickets: Vec<Ticket> = (1..=4)
            .map(|k| svc.submit(fig1_query(&fx, k)).unwrap())
            .collect();
        drop(svc); // must not deadlock; queued work still answered
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().expect("queued before shutdown → answered");
            assert_eq!(resp.outcome.costs().len(), i + 1);
        }
    }

    #[test]
    fn updates_never_serve_stale_answers() {
        let (svc, fx) = service(2, 64, 64);
        let q = fig1_query(&fx, 3);
        let before = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(before.outcome.costs(), vec![20, 21, 22]);
        // The answer is now hot in the cache.
        assert!(svc.submit(q.clone()).unwrap().wait().unwrap().cached);

        // Close the restaurant the best route goes through (witness layout
        // ⟨s, ma, re, ci, t⟩ — the RE stop is position 2).
        let gone = before.outcome.witnesses[0].vertices[2];
        let receipt = svc
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(receipt.invalidated, 1, "the cached answer touching RE");
        assert_eq!(svc.index_epoch(), 1);

        // The next response must reflect the updated world (compare to a
        // from-scratch rebuild), and must not come from the cache.
        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        let after = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert!(!after.cached, "stale entry must have been invalidated");
        let plan = svc.plan(&q);
        let want = fresh.run_canonical(&q, plan.method, plan.examined_budget);
        assert_eq!(after.outcome.witnesses, want.witnesses);
        assert_ne!(
            after.outcome.witnesses, before.outcome.witnesses,
            "removing the best route's restaurant must change the answer"
        );

        // Reopen it: answers (and the cache) recover.
        let receipt = svc
            .apply_update(&Update::InsertMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        let back = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(back.outcome.costs(), vec![20, 21, 22]);
        // Duplicate insert: validated no-op, nothing invalidated.
        let receipt = svc
            .apply_update(&Update::InsertMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert_eq!(receipt, UpdateReceipt::default());

        // Typed rejections.
        assert_eq!(
            svc.apply_update(&Update::InsertMembership {
                vertex: VertexId(99),
                category: fx.re,
            }),
            Err(UpdateError::VertexOutOfRange(VertexId(99)))
        );
        assert_eq!(
            svc.apply_update(&Update::RemoveMembership {
                vertex: fx.s,
                category: CategoryId(77),
            }),
            Err(UpdateError::UnknownCategory(CategoryId(77)))
        );
    }

    #[test]
    fn edge_updates_flush_everything_and_change_routes() {
        let (svc, fx) = service(2, 64, 64);
        let q = fig1_query(&fx, 1);
        let before = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(before.outcome.costs(), vec![20]);

        // An expressway from s to the first mall.
        let mall = fx.graph.categories().vertices_of(fx.ma)[0];
        let receipt = svc
            .apply_update(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 1,
            })
            .unwrap();
        assert!(receipt.applied);
        assert!(receipt.label_entries_added > 0);
        assert_eq!(receipt.invalidated, 1, "structural updates flush all");

        let mut b2 = fx.graph.to_builder();
        b2.add_edge(fx.s, mall, 1);
        let fresh = IndexedGraph::build_default(b2.build());
        let after = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert!(!after.cached);
        let plan = svc.plan(&q);
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, plan.method, plan.examined_budget)
                .witnesses
        );

        // Weight increases are typed rejections, not silent corruption.
        assert!(matches!(
            svc.apply_update(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 50,
            }),
            Err(UpdateError::Graph(_))
        ));
    }

    #[test]
    fn smaller_k_served_by_truncating_cached_result() {
        let (svc, fx) = service(2, 64, 64);
        let big = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert!(!big.cached);
        // k' < k: a cache hit by prefix truncation, bit-identical to the
        // prefix of the k=3 answer (canonical semantics guarantee it).
        let small = svc.submit(fig1_query(&fx, 2)).unwrap().wait().unwrap();
        assert!(small.cached, "prefix truncation is a cache hit");
        assert_eq!(small.outcome.witnesses[..], big.outcome.witnesses[..2]);
        assert!(svc.cache_stats().prefix_hits >= 1);
        // And it matches a from-scratch k=2 run exactly.
        let q2 = fig1_query(&fx, 2);
        let plan = svc.plan(&q2);
        let want = svc
            .indexed_graph()
            .run_canonical(&q2, plan.method, plan.examined_budget);
        assert_eq!(small.outcome.witnesses, want.witnesses);
        // k' > k still computes.
        let bigger = svc.submit(fig1_query(&fx, 4)).unwrap().wait().unwrap();
        assert!(!bigger.cached);
        assert_eq!(bigger.outcome.witnesses[..3], big.outcome.witnesses[..]);
    }

    #[test]
    fn per_method_latency_counters_accumulate() {
        let (svc, fx) = service(2, 64, 64);
        for k in 1..=3 {
            svc.submit(fig1_query(&fx, k)).unwrap().wait().unwrap();
        }
        // Repeat: cache hits must not count as method executions.
        svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        let per_method = svc.method_stats();
        let total: u64 = per_method.iter().map(|m| m.completed).sum();
        assert_eq!(total, 3, "uncached completions only: {per_method:?}");
        for m in &per_method {
            assert!(m.latency_p50 <= m.latency_p99);
        }
        let stats = svc.stats();
        assert_eq!(stats.per_method.len(), per_method.len());
        assert!(stats.to_string().contains("method"));
    }

    #[test]
    fn install_index_swaps_state_and_flushes_the_cache() {
        let (svc, fx) = service(2, 64, 64);
        let q = fig1_query(&fx, 3);
        let before = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(before.outcome.costs(), vec![20, 21, 22]);
        assert!(svc.submit(q.clone()).unwrap().wait().unwrap().cached);

        // An index where the best route's restaurant is gone.
        let gone = before.outcome.witnesses[0].vertices[2];
        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        svc.install_index(Arc::new(fresh.clone()));
        assert_eq!(svc.index_epoch(), 1, "install bumps the epoch");
        assert_eq!(svc.cache_stats().entries, 0, "install flushes the cache");

        let after = svc.submit(q.clone()).unwrap().wait().unwrap();
        assert!(!after.cached);
        let plan = svc.plan(&q);
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, plan.method, plan.examined_budget)
                .witnesses,
            "answers come from the installed index"
        );
    }

    #[test]
    fn log_head_is_monotone_with_typed_stale_rejection() {
        let (svc, _fx) = service(1, 8, 8);
        assert_eq!(svc.log_head(), 0);
        assert_eq!(svc.advance_log_head(5), Ok(5));
        assert_eq!(svc.advance_log_head(5), Ok(5), "idempotent");
        assert_eq!(svc.advance_log_head(9), Ok(9));
        assert_eq!(svc.advance_log_head(3), Err(9), "stale notices refused");
        assert_eq!(svc.log_head(), 9);
    }

    #[test]
    fn restarted_service_resumes_learned_calibration() {
        use kosr_workloads::{assign_uniform, road_grid_directed};

        // Dense world where calibration evidence flips SK → PK.
        let mut g = road_grid_directed(16, 16, 3);
        assign_uniform(&mut g, 2, 102, 7);
        let ig = Arc::new(IndexedGraph::build_default(g));
        let calibrating = ServiceConfig {
            workers: 1,
            planner: crate::planner::PlannerConfig {
                calibrate: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let dense = Query::new(
            kosr_graph::VertexId(0),
            kosr_graph::VertexId(255),
            vec![CategoryId(0), CategoryId(1)],
            16,
        );

        let first = KosrService::new(Arc::clone(&ig), calibrating.clone());
        assert_eq!(first.plan(&dense).method, Method::Pk, "dense large-k");
        let dense_small = Query {
            k: 4,
            ..dense.clone()
        };
        assert_eq!(first.plan(&dense_small).method, Method::Sk);
        let snap = |m: Method, mean: Duration| MethodStats {
            method: m,
            completed: 50,
            latency_mean: mean,
            latency_p50: mean,
            latency_p99: mean,
        };
        first.calibrate_from(&[
            snap(Method::Sk, Duration::from_millis(20)),
            snap(Method::Pk, Duration::from_millis(1)),
        ]);
        assert_eq!(first.plan(&dense_small).method, Method::Pk, "learned");

        // "Restart": a fresh service starts at defaults, resumes from the
        // persisted blob, and plans like the learned one.
        let blob = first.encode_calibration();
        drop(first);
        let restarted = KosrService::new(Arc::clone(&ig), calibrating);
        assert_eq!(restarted.plan(&dense_small).method, Method::Sk, "cold");
        restarted.decode_calibration(&blob).unwrap();
        assert_eq!(restarted.plan(&dense_small).method, Method::Pk, "resumed");

        // Garbage blobs are typed rejections, not panics.
        assert!(restarted.decode_calibration(b"garbage").is_err());
        assert_eq!(restarted.plan(&dense_small).method, Method::Pk, "kept");
    }

    #[test]
    fn bound_pruning_and_witness_reuse_are_counted_and_traced() {
        use crate::trace::TraceId;

        // Cache off so every submission actually executes.
        let (svc, fx) = service(1, 64, 0);
        let q = fig1_query(&fx, 3);
        let ctx = TraceContext::root(TraceId(7), true);
        let tag = |spans: &[Span], name: &str| -> TagValue {
            spans
                .iter()
                .find(|s| s.name == "execute")
                .expect("uncached completions carry an execute span")
                .tags
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("missing tag {name}"))
                .1
                .clone()
        };

        let first = svc
            .submit_traced(q.clone(), Some(ctx))
            .unwrap()
            .wait()
            .unwrap();
        assert!(first.plan.use_bounds, "bounds are on by default");
        assert_eq!(first.outcome.costs(), vec![20, 21, 22]);
        assert_eq!(tag(&first.spans, "table_hits"), TagValue::U64(0), "cold");
        assert_eq!(
            tag(&first.spans, "bound_prunes"),
            TagValue::U64(first.outcome.stats.bound_pruned)
        );

        // A repeat query reuses both witness fragments (head + tail) and
        // still answers bit-identically.
        let second = svc
            .submit_traced(q.clone(), Some(ctx))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(second.outcome.witnesses, first.outcome.witnesses);
        assert_eq!(tag(&second.spans, "table_hits"), TagValue::U64(2));

        let stats = svc.stats();
        assert_eq!(stats.witness_reuses, 2);
        assert_eq!(
            stats.bound_prunes,
            first.outcome.stats.bound_pruned + second.outcome.stats.bound_pruned
        );
        assert!(stats.to_string().contains("witness-fragment"));

        // An applied update bumps the epoch: no stale fragment is reused.
        let gone = first.outcome.witnesses[0].vertices[2];
        svc.apply_update(&Update::RemoveMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        let third = svc
            .submit_traced(q.clone(), Some(ctx))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(tag(&third.spans, "table_hits"), TagValue::U64(0));
        assert_eq!(
            svc.stats().witness_reuses,
            2,
            "epoch guard cleared the cache"
        );
        assert_ne!(third.outcome.witnesses, first.outcome.witnesses);
    }

    #[test]
    fn disabling_bounds_answers_identically() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                cache_capacity: 0,
                planner: crate::planner::PlannerConfig {
                    use_bounds: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let resp = svc.submit(fig1_query(&fx, 3)).unwrap().wait().unwrap();
        assert!(!resp.plan.use_bounds);
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert_eq!(resp.outcome.stats.bound_pruned, 0);
        let stats = svc.stats();
        assert_eq!((stats.bound_prunes, stats.witness_reuses), (0, 0));
    }

    #[test]
    fn sequential_baseline_matches_service() {
        let (svc, fx) = service(4, 64, 64);
        let queries: Vec<Query> = (1..=3).map(|k| fig1_query(&fx, k)).collect();
        let service_out = svc.run_batch(&queries);
        let seq = run_sequential(&svc.indexed_graph(), &QueryPlanner::default(), &queries);
        for (a, b) in service_out.iter().zip(&seq) {
            let a = a.as_ref().unwrap();
            assert_eq!(a.outcome.costs(), b.costs());
            assert_eq!(
                a.outcome
                    .witnesses
                    .iter()
                    .map(|w| &w.vertices)
                    .collect::<Vec<_>>(),
                b.witnesses.iter().map(|w| &w.vertices).collect::<Vec<_>>()
            );
        }
    }
}
