//! The fleet event journal and the SLO burn-rate alert engine.
//!
//! Prometheus counters say *how many* failovers happened; the journal says
//! **who, when, and why**: every lifecycle edge the fleet has (replica
//! health flips, failovers, quarantines, replay/snapshot recoveries, log
//! compactions, epoch swaps, calibration adjustments, gateway admission
//! rejections) is recorded as a typed [`Event`] with a monotone sequence
//! number, a wall-clock stamp, structured tags, and — when one is in
//! scope — the trace id of the query that observed the edge, so an alert
//! can be walked back to the exact request trace that saw the fault.
//!
//! Retention is bounded **per severity**: each severity level owns its own
//! ring, so a flood of `Info` chatter can never evict the `Critical`
//! record of a failover (the property the journal test suite proves).
//! Cumulative per-`(severity, kind)` counters survive ring eviction and
//! feed the `kosr_events_total` metric family — and let the supervisor's
//! report be reconciled *exactly* against the journal.
//!
//! The [`SloEngine`] sits on top: per-[`SloSpec`] multi-window burn-rate
//! evaluation (availability and p99 latency objectives, fed once per
//! supervisor tick), with flap damping on both the `Firing` and
//! `Resolved` transitions. Transitions are themselves journaled
//! ([`EventKind::AlertFiring`] / [`EventKind::AlertResolved`]) and served
//! at the edge via `GET /v1/alerts`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::metrics::{MetricsRegistry, MetricsSource};
use crate::trace::{TagValue, TraceId};

/// How loud an event is. Severities retain independently: each level has
/// its own bounded ring, so low-severity chatter never evicts a
/// [`Severity::Critical`] record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine lifecycle: successful recoveries, compactions, epoch swaps.
    Info,
    /// Degradation worth attention: quarantines, stale cursors, rejections.
    Warn,
    /// Serving impact: replica loss, failover, a firing alert.
    Critical,
}

impl Severity {
    /// Every severity, ring order.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warn, Severity::Critical];

    pub(crate) fn slot(self) -> usize {
        match self {
            Severity::Info => 0,
            Severity::Warn => 1,
            Severity::Critical => 2,
        }
    }

    /// The lowercase label used in metrics, JSON, and `/v1/events` filters.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parses a [`Severity::name`] label (the `/v1/events?severity=` form).
    pub fn parse(s: &str) -> Option<Severity> {
        Severity::ALL.into_iter().find(|sev| sev.name() == s)
    }
}

/// Where an event was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// A replica-local [`crate::KosrService`] (epoch swaps, calibration).
    Service,
    /// A shard's replica set or update bus (health flips, quarantines).
    Shard(u32),
    /// Forwarded from a remote replica's local journal over the wire.
    Replica {
        /// The shard the forwarding replica serves.
        shard: u32,
        /// The replica index within that shard.
        replica: u32,
    },
    /// The fleet supervisor's recovery loop and the SLO engine.
    Supervisor,
    /// The HTTP edge (admission rejections).
    Gateway,
}

impl Source {
    /// The lowercase tier label used in JSON and `/v1/events?source=`.
    pub fn label(self) -> &'static str {
        match self {
            Source::Service => "service",
            Source::Shard(_) => "shard",
            Source::Replica { .. } => "replica",
            Source::Supervisor => "supervisor",
            Source::Gateway => "gateway",
        }
    }
}

/// The closed set of lifecycle edges the fleet journals. `slot`/`name`
/// are dense and stable — they key the cumulative counters behind
/// `kosr_events_total{severity,kind}` and the supervisor-report
/// reconciliation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A heartbeat or publish fault took a replica out of rotation.
    ReplicaDown,
    /// A live query observed a fault and failed over mid-flight.
    Failover,
    /// The update bus quarantined a replica that rejected a committed
    /// update its siblings accepted.
    ReplicaQuarantined,
    /// The supervisor replayed a downed replica back to the log tail.
    ReplayRecovered,
    /// The supervisor refreshed a replica by snapshot push.
    SnapshotRefreshed,
    /// A replica's cursor fell below the compacted head — replay is
    /// impossible and recovery must go through a snapshot.
    CursorTooOld,
    /// A recovery attempt failed; the replica stays down for next tick.
    RecoveryFailed,
    /// The supervisor compacted the update log.
    LogCompacted,
    /// An update committed through the live update bus.
    UpdatePublished,
    /// A replica's index epoch advanced (applied update or snapshot
    /// install).
    EpochSwap,
    /// Planner calibration adjusted its cutoffs.
    CalibrationAdjusted,
    /// The edge refused work (connection pool full, overload shedding).
    AdmissionRejected,
    /// An SLO began burning error budget past its threshold.
    AlertFiring,
    /// A firing SLO recovered and its alert resolved.
    AlertResolved,
    /// A standing subscription registered (continuous-query session
    /// opened, initial top-k delivered).
    SubscriptionCreated,
    /// A subscription's delta queue overflowed (or its recompute failed):
    /// queued deltas were dropped and the client must re-fetch the full
    /// top-k.
    SubscriptionResync,
    /// A subscription was dropped (client unsubscribe).
    SubscriptionDropped,
}

/// Number of [`EventKind`] variants (the width of the counter tables).
pub(crate) const NUM_KINDS: usize = 17;

impl EventKind {
    /// Every kind, slot order.
    pub const ALL: [EventKind; NUM_KINDS] = [
        EventKind::ReplicaDown,
        EventKind::Failover,
        EventKind::ReplicaQuarantined,
        EventKind::ReplayRecovered,
        EventKind::SnapshotRefreshed,
        EventKind::CursorTooOld,
        EventKind::RecoveryFailed,
        EventKind::LogCompacted,
        EventKind::UpdatePublished,
        EventKind::EpochSwap,
        EventKind::CalibrationAdjusted,
        EventKind::AdmissionRejected,
        EventKind::AlertFiring,
        EventKind::AlertResolved,
        EventKind::SubscriptionCreated,
        EventKind::SubscriptionResync,
        EventKind::SubscriptionDropped,
    ];

    pub(crate) fn slot(self) -> usize {
        match self {
            EventKind::ReplicaDown => 0,
            EventKind::Failover => 1,
            EventKind::ReplicaQuarantined => 2,
            EventKind::ReplayRecovered => 3,
            EventKind::SnapshotRefreshed => 4,
            EventKind::CursorTooOld => 5,
            EventKind::RecoveryFailed => 6,
            EventKind::LogCompacted => 7,
            EventKind::UpdatePublished => 8,
            EventKind::EpochSwap => 9,
            EventKind::CalibrationAdjusted => 10,
            EventKind::AdmissionRejected => 11,
            EventKind::AlertFiring => 12,
            EventKind::AlertResolved => 13,
            EventKind::SubscriptionCreated => 14,
            EventKind::SubscriptionResync => 15,
            EventKind::SubscriptionDropped => 16,
        }
    }

    /// The snake_case label used in metrics, JSON, and filters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ReplicaDown => "replica_down",
            EventKind::Failover => "failover",
            EventKind::ReplicaQuarantined => "replica_quarantined",
            EventKind::ReplayRecovered => "replay_recovered",
            EventKind::SnapshotRefreshed => "snapshot_refreshed",
            EventKind::CursorTooOld => "cursor_too_old",
            EventKind::RecoveryFailed => "recovery_failed",
            EventKind::LogCompacted => "log_compacted",
            EventKind::UpdatePublished => "update_published",
            EventKind::EpochSwap => "epoch_swap",
            EventKind::CalibrationAdjusted => "calibration_adjusted",
            EventKind::AdmissionRejected => "admission_rejected",
            EventKind::AlertFiring => "alert_firing",
            EventKind::AlertResolved => "alert_resolved",
            EventKind::SubscriptionCreated => "subscription_created",
            EventKind::SubscriptionResync => "subscription_resync",
            EventKind::SubscriptionDropped => "subscription_dropped",
        }
    }

    /// The severity this kind journals at.
    pub fn severity(self) -> Severity {
        match self {
            EventKind::ReplicaDown | EventKind::Failover | EventKind::AlertFiring => {
                Severity::Critical
            }
            EventKind::ReplicaQuarantined
            | EventKind::CursorTooOld
            | EventKind::RecoveryFailed
            | EventKind::AdmissionRejected
            | EventKind::SubscriptionResync => Severity::Warn,
            EventKind::ReplayRecovered
            | EventKind::SnapshotRefreshed
            | EventKind::LogCompacted
            | EventKind::UpdatePublished
            | EventKind::EpochSwap
            | EventKind::CalibrationAdjusted
            | EventKind::AlertResolved
            | EventKind::SubscriptionCreated
            | EventKind::SubscriptionDropped => Severity::Info,
        }
    }
}

/// One journaled lifecycle event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotone journal sequence number (gap-free per journal).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at emission.
    pub wall_ms: u64,
    /// How loud the event is (fixes which retention ring holds it).
    pub severity: Severity,
    /// Where the event was observed.
    pub source: Source,
    /// Which lifecycle edge fired.
    pub kind: EventKind,
    /// The trace of the query that observed the edge, when one was in
    /// scope — resolvable via `GET /v1/traces/{id}` while retained.
    pub trace_id: Option<TraceId>,
    /// Structured detail (`replica`, `trigger` seq, burn rates, …).
    pub tags: Vec<(String, TagValue)>,
}

fn wall_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// The bounded, typed fleet event journal.
///
/// Sequence numbers are monotone and gap-free (one `fetch_add` per
/// emission); retention is **per severity** — each [`Severity`] owns a
/// ring of `capacity` events, so eviction pressure in one severity never
/// drops events of another. Cumulative per-`(severity, kind)` counters
/// survive eviction and back the `kosr_events_total` metric family.
#[derive(Debug)]
pub struct EventJournal {
    next_seq: AtomicU64,
    capacity: usize,
    rings: [Mutex<VecDeque<Event>>; 3],
    totals: [[AtomicU64; NUM_KINDS]; 3],
}

impl EventJournal {
    /// A journal retaining up to `capacity` events *per severity level*.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            next_seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            rings: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            totals: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Emits one event at `kind`'s default severity and returns its
    /// sequence number.
    pub fn emit(
        &self,
        source: Source,
        kind: EventKind,
        trace_id: Option<TraceId>,
        tags: Vec<(String, TagValue)>,
    ) -> u64 {
        let severity = kind.severity();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            wall_ms: wall_ms_now(),
            severity,
            source,
            kind,
            trace_id,
            tags,
        };
        self.push(event);
        seq
    }

    /// Appends an event forwarded from a remote replica's journal: the
    /// event is re-sequenced into this journal (its original seq kept as
    /// an `origin_seq` tag), re-sourced as [`Source::Replica`], and keeps
    /// its remote wall clock, severity, kind, trace id and tags.
    pub fn append_forwarded(&self, remote: &Event, shard: u32, replica: u32) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut tags = remote.tags.clone();
        tags.push(("origin_seq".to_string(), TagValue::U64(remote.seq)));
        self.push(Event {
            seq,
            wall_ms: remote.wall_ms,
            severity: remote.severity,
            source: Source::Replica { shard, replica },
            kind: remote.kind,
            trace_id: remote.trace_id,
            tags,
        });
        seq
    }

    fn push(&self, event: Event) {
        let sev = event.severity.slot();
        self.totals[sev][event.kind.slot()].fetch_add(1, Ordering::Relaxed);
        let mut ring = self.rings[sev].lock().unwrap();
        ring.push_back(event);
        while ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// The sequence number the *next* emission will receive — equal to
    /// the total number of events ever emitted.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Retained events with `seq >= since_seq`, optionally filtered by
    /// severity and/or source tier label, merged across the severity
    /// rings in ascending sequence order.
    pub fn events_since(
        &self,
        since_seq: u64,
        severity: Option<Severity>,
        source: Option<&str>,
    ) -> Vec<Event> {
        let mut out: Vec<Event> = Vec::new();
        for sev in Severity::ALL {
            if severity.is_some_and(|want| want != sev) {
                continue;
            }
            let ring = self.rings[sev.slot()].lock().unwrap();
            out.extend(
                ring.iter()
                    .filter(|e| {
                        e.seq >= since_seq && source.is_none_or(|label| e.source.label() == label)
                    })
                    .cloned(),
            );
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// All currently retained events, ascending by sequence number.
    pub fn recent(&self) -> Vec<Event> {
        self.events_since(0, None, None)
    }

    /// Events ever emitted at `(severity, kind)` — survives ring
    /// eviction.
    pub fn total(&self, severity: Severity, kind: EventKind) -> u64 {
        self.totals[severity.slot()][kind.slot()].load(Ordering::Relaxed)
    }

    /// Events ever emitted of `kind`, across all severities. This is the
    /// reconciliation hook: the supervisor's counted recoveries must
    /// equal these totals exactly.
    pub fn kind_total(&self, kind: EventKind) -> u64 {
        Severity::ALL.iter().map(|&s| self.total(s, kind)).sum()
    }
}

impl MetricsSource for EventJournal {
    fn export(&self, registry: &mut MetricsRegistry) {
        registry.counter(
            "kosr_events_emitted_total",
            "Fleet events journaled (all severities and kinds)",
            &[],
            self.next_seq() as f64,
        );
        for sev in Severity::ALL {
            for kind in EventKind::ALL {
                let v = self.total(sev, kind);
                if v > 0 {
                    registry.counter(
                        "kosr_events_total",
                        "Fleet events journaled, per severity and kind",
                        &[("severity", sev.name()), ("kind", kind.name())],
                        v as f64,
                    );
                }
            }
        }
    }
}

/// What an [`SloSpec`] measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloObjective {
    /// The fraction of replicas healthy, fleet-wide, each observation.
    Availability,
    /// The end-to-end p99 query latency must stay at or under `target`
    /// (an observation over target burns that tick's full error budget).
    LatencyP99 {
        /// The latency objective.
        target: Duration,
    },
}

/// One service-level objective with multi-window burn-rate alerting.
///
/// Each supervisor tick contributes one observation whose *bad fraction*
/// is `1 - availability` (availability objective) or `0/1` (latency
/// objective, breached or not). The burn rate of a window is the mean bad
/// fraction over its last `window` observations divided by the error
/// budget `1 - goal`; the alert fires only when **both** the long and the
/// short window burn past `max_burn_rate` (the multi-window rule: the
/// long window proves it matters, the short window proves it is still
/// happening), sustained for `fire_after` consecutive observations, and
/// resolves after `resolve_after` consecutive clean ones — the flap
/// damping on both edges.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// The alert label (`kosr_alert_active{slo="…"}`).
    pub name: String,
    /// What the objective measures.
    pub objective: SloObjective,
    /// Target good fraction in `(0, 1)` — e.g. `0.99` availability.
    pub goal: f64,
    /// Long evaluation window, in observations (supervisor ticks).
    pub long_window: usize,
    /// Short evaluation window, in observations.
    pub short_window: usize,
    /// Burn-rate threshold both windows must exceed to fire.
    pub max_burn_rate: f64,
    /// Consecutive burning observations before `Firing` (≥ 1).
    pub fire_after: u32,
    /// Consecutive clean observations before `Resolved` (≥ 1).
    pub resolve_after: u32,
}

impl SloSpec {
    /// The default availability objective: 99% of replicas serving. The
    /// windows are sized so that one replica of a small fleet going down
    /// (bad fraction ≥ 0.25) pushes **both** windows past the burn
    /// threshold on the very first bad observation, even against a long
    /// window full of clean history — a kill pages within one supervisor
    /// tick, and flap damping lives on the resolve edge instead.
    pub fn availability() -> SloSpec {
        SloSpec {
            name: "availability".to_string(),
            objective: SloObjective::Availability,
            goal: 0.99,
            long_window: 8,
            short_window: 3,
            max_burn_rate: 2.0,
            fire_after: 1,
            resolve_after: 2,
        }
    }

    /// The default latency objective: p99 at or under 500 ms for 99% of
    /// observations, damped to three consecutive breaches so one slow
    /// tick (a cold cache, a GC-ish hiccup) doesn't page.
    pub fn latency_p99() -> SloSpec {
        SloSpec {
            name: "latency_p99".to_string(),
            objective: SloObjective::LatencyP99 {
                target: Duration::from_millis(500),
            },
            goal: 0.99,
            long_window: 8,
            short_window: 3,
            max_burn_rate: 2.0,
            fire_after: 3,
            resolve_after: 2,
        }
    }

    /// The default objective pair every fleet starts with.
    pub fn default_set() -> Vec<SloSpec> {
        vec![SloSpec::availability(), SloSpec::latency_p99()]
    }

    fn bad_fraction(&self, availability: f64, p99: Duration) -> f64 {
        match self.objective {
            SloObjective::Availability => (1.0 - availability).clamp(0.0, 1.0),
            SloObjective::LatencyP99 { target } => {
                if p99 > target {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Whether an alert is currently burning or has recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// The objective is burning budget past its threshold.
    Firing,
    /// A previously firing objective has recovered.
    Resolved,
}

impl AlertState {
    /// The lowercase label used in metrics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One alert transition, as served by `GET /v1/alerts`.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// The [`SloSpec::name`] this alert belongs to.
    pub slo: String,
    /// Firing or resolved.
    pub state: AlertState,
    /// Journal sequence of the transition event — the `since`/`until`
    /// anchor for correlating with `/v1/events`.
    pub seq: u64,
    /// Wall-clock milliseconds of the transition.
    pub wall_ms: u64,
    /// The short-window burn rate at the transition.
    pub burn_rate: f64,
}

struct SpecState {
    spec: SloSpec,
    /// Bad fractions, newest last, capped at `long_window`.
    samples: VecDeque<f64>,
    firing: Option<Alert>,
    breach_streak: u32,
    ok_streak: u32,
    fired_total: u64,
    resolved_total: u64,
}

impl SpecState {
    fn new(spec: SloSpec) -> SpecState {
        SpecState {
            spec,
            samples: VecDeque::new(),
            firing: None,
            breach_streak: 0,
            ok_streak: 0,
            fired_total: 0,
            resolved_total: 0,
        }
    }

    fn window_burn(&self, window: usize) -> f64 {
        let n = window.clamp(1, self.samples.len().max(1));
        let taken = self.samples.iter().rev().take(n);
        let count = taken.clone().count().max(1);
        let mean: f64 = taken.sum::<f64>() / count as f64;
        let budget = (1.0 - self.spec.goal).max(1e-9);
        mean / budget
    }
}

/// The multi-window burn-rate alert engine. One per fleet, observed once
/// per supervisor tick; transitions are journaled and the current +
/// recently-resolved alerts are served by `GET /v1/alerts`.
pub struct SloEngine {
    journal: Arc<EventJournal>,
    inner: Mutex<Vec<SpecState>>,
    /// Recently resolved alerts, newest last, bounded.
    resolved: Mutex<VecDeque<Alert>>,
}

/// Resolved-alert history kept for `GET /v1/alerts`.
const RESOLVED_KEEP: usize = 32;

impl SloEngine {
    /// An engine evaluating `specs`, journaling transitions into
    /// `journal`.
    pub fn new(journal: Arc<EventJournal>, specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            journal,
            inner: Mutex::new(specs.into_iter().map(SpecState::new).collect()),
            resolved: Mutex::new(VecDeque::new()),
        }
    }

    /// Replaces the evaluated specs, resetting all windows and streaks
    /// (currently firing alerts are dropped, not resolved).
    pub fn configure(&self, specs: Vec<SloSpec>) {
        *self.inner.lock().unwrap() = specs.into_iter().map(SpecState::new).collect();
    }

    /// The specs currently evaluated.
    pub fn specs(&self) -> Vec<SloSpec> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.spec.clone())
            .collect()
    }

    /// Feeds one observation (one supervisor tick): the fleet-wide
    /// healthy-replica fraction and the measured p99 query latency.
    /// Evaluates every spec's windows and journals any transitions.
    pub fn observe(&self, availability: f64, p99: Duration) {
        let mut inner = self.inner.lock().unwrap();
        for st in inner.iter_mut() {
            let bad = st.spec.bad_fraction(availability, p99);
            st.samples.push_back(bad);
            while st.samples.len() > st.spec.long_window.max(1) {
                st.samples.pop_front();
            }
            let burn_long = st.window_burn(st.spec.long_window);
            let burn_short = st.window_burn(st.spec.short_window);
            let burning = burn_long > st.spec.max_burn_rate && burn_short > st.spec.max_burn_rate;
            if burning {
                st.ok_streak = 0;
                st.breach_streak += 1;
                if st.firing.is_none() && st.breach_streak >= st.spec.fire_after.max(1) {
                    let seq = self.journal.emit(
                        Source::Supervisor,
                        EventKind::AlertFiring,
                        None,
                        vec![
                            ("slo".to_string(), TagValue::Str(st.spec.name.clone())),
                            (
                                "burn_short".to_string(),
                                TagValue::U64(burn_short.round() as u64),
                            ),
                            (
                                "burn_long".to_string(),
                                TagValue::U64(burn_long.round() as u64),
                            ),
                        ],
                    );
                    st.fired_total += 1;
                    st.firing = Some(Alert {
                        slo: st.spec.name.clone(),
                        state: AlertState::Firing,
                        seq,
                        wall_ms: wall_ms_now(),
                        burn_rate: burn_short,
                    });
                }
            } else {
                st.breach_streak = 0;
                st.ok_streak += 1;
                if st.firing.is_some() && st.ok_streak >= st.spec.resolve_after.max(1) {
                    let fired = st.firing.take().unwrap();
                    let seq = self.journal.emit(
                        Source::Supervisor,
                        EventKind::AlertResolved,
                        None,
                        vec![
                            ("slo".to_string(), TagValue::Str(st.spec.name.clone())),
                            ("fired_seq".to_string(), TagValue::U64(fired.seq)),
                        ],
                    );
                    st.resolved_total += 1;
                    let mut resolved = self.resolved.lock().unwrap();
                    resolved.push_back(Alert {
                        slo: st.spec.name.clone(),
                        state: AlertState::Resolved,
                        seq,
                        wall_ms: wall_ms_now(),
                        burn_rate: burn_short,
                    });
                    while resolved.len() > RESOLVED_KEEP {
                        resolved.pop_front();
                    }
                }
            }
        }
    }

    /// Currently firing alerts (one per burning spec, oldest transition
    /// first).
    pub fn firing(&self) -> Vec<Alert> {
        let mut out: Vec<Alert> = self
            .inner
            .lock()
            .unwrap()
            .iter()
            .filter_map(|s| s.firing.clone())
            .collect();
        out.sort_by_key(|a| a.seq);
        out
    }

    /// Recently resolved alerts, oldest first (bounded history).
    pub fn recently_resolved(&self) -> Vec<Alert> {
        self.resolved.lock().unwrap().iter().cloned().collect()
    }
}

impl MetricsSource for SloEngine {
    fn export(&self, registry: &mut MetricsRegistry) {
        let inner = self.inner.lock().unwrap();
        for st in inner.iter() {
            registry.gauge(
                "kosr_alert_active",
                "1 while the SLO's alert is firing, else 0",
                &[("slo", &st.spec.name)],
                if st.firing.is_some() { 1.0 } else { 0.0 },
            );
            for (state, v) in [("firing", st.fired_total), ("resolved", st.resolved_total)] {
                registry.counter(
                    "kosr_alert_transitions_total",
                    "Alert transitions, per SLO and state",
                    &[("slo", &st.spec.name), ("state", state)],
                    v as f64,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::validate_prometheus_text;

    #[test]
    fn seqs_are_monotone_gap_free_and_counters_survive_eviction() {
        let j = EventJournal::new(4);
        for i in 0..20u64 {
            let seq = j.emit(
                Source::Shard(0),
                EventKind::UpdatePublished,
                None,
                vec![("i".into(), TagValue::U64(i))],
            );
            assert_eq!(seq, i);
        }
        assert_eq!(j.next_seq(), 20);
        // The Info ring kept only the newest 4, but the totals remember
        // all 20.
        let retained = j.recent();
        assert_eq!(retained.len(), 4);
        assert_eq!(
            retained.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![16, 17, 18, 19]
        );
        assert_eq!(j.kind_total(EventKind::UpdatePublished), 20);
    }

    #[test]
    fn info_floods_never_evict_critical_events() {
        let j = EventJournal::new(8);
        let down = j.emit(Source::Shard(1), EventKind::ReplicaDown, None, Vec::new());
        for _ in 0..100 {
            j.emit(Source::Shard(1), EventKind::EpochSwap, None, Vec::new());
        }
        let critical = j.events_since(0, Some(Severity::Critical), None);
        assert_eq!(critical.len(), 1);
        assert_eq!(critical[0].seq, down);
        assert_eq!(critical[0].kind, EventKind::ReplicaDown);
        // And severity/source filters compose with since_seq.
        assert!(j
            .events_since(down + 1, Some(Severity::Critical), None)
            .is_empty());
        assert!(j.events_since(0, None, Some("gateway")).is_empty());
        assert_eq!(j.events_since(0, None, Some("shard")).len(), 9);
    }

    #[test]
    fn forwarded_events_are_resequenced_and_tagged_with_origin() {
        let local = EventJournal::new(16);
        local.emit(Source::Service, EventKind::EpochSwap, None, Vec::new());
        let fleet = EventJournal::new(16);
        fleet.emit(
            Source::Supervisor,
            EventKind::LogCompacted,
            None,
            Vec::new(),
        );
        let remote = &local.recent()[0];
        let seq = fleet.append_forwarded(remote, 2, 1);
        assert_eq!(seq, 1);
        let got = &fleet.events_since(seq, None, None)[0];
        assert_eq!(got.kind, EventKind::EpochSwap);
        assert_eq!(
            got.source,
            Source::Replica {
                shard: 2,
                replica: 1
            }
        );
        assert_eq!(got.wall_ms, remote.wall_ms);
        assert!(got
            .tags
            .iter()
            .any(|(k, v)| k == "origin_seq" && *v == TagValue::U64(0)));
    }

    fn fast_spec(objective: SloObjective, resolve_after: u32) -> SloSpec {
        SloSpec {
            name: "t".into(),
            objective,
            goal: 0.99,
            long_window: 10,
            short_window: 2,
            max_burn_rate: 5.0,
            fire_after: 1,
            resolve_after,
        }
    }

    #[test]
    fn availability_alert_fires_and_resolves_with_journaled_transitions() {
        let j = Arc::new(EventJournal::new(32));
        let engine = SloEngine::new(
            Arc::clone(&j),
            vec![fast_spec(SloObjective::Availability, 2)],
        );
        engine.observe(1.0, Duration::ZERO);
        assert!(engine.firing().is_empty());
        // One of four replicas down: 25% bad, 25x burn at a 1% budget.
        engine.observe(0.75, Duration::ZERO);
        let firing = engine.firing();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].state, AlertState::Firing);
        assert!(firing[0].burn_rate > 5.0);
        assert_eq!(j.kind_total(EventKind::AlertFiring), 1);
        // Healed, but flap damping holds the alert for resolve_after=2
        // clean observations (the short window must also drain).
        engine.observe(1.0, Duration::ZERO);
        engine.observe(1.0, Duration::ZERO);
        engine.observe(1.0, Duration::ZERO);
        engine.observe(1.0, Duration::ZERO);
        assert!(engine.firing().is_empty(), "alert resolves after healing");
        let resolved = engine.recently_resolved();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        assert_eq!(j.kind_total(EventKind::AlertResolved), 1);
        // The resolved event points back at the firing seq.
        let events = j.events_since(0, None, None);
        let fired_seq = events
            .iter()
            .find(|e| e.kind == EventKind::AlertFiring)
            .unwrap()
            .seq;
        let resolve_event = events
            .iter()
            .find(|e| e.kind == EventKind::AlertResolved)
            .unwrap();
        assert!(resolve_event
            .tags
            .iter()
            .any(|(k, v)| k == "fired_seq" && *v == TagValue::U64(fired_seq)));
    }

    #[test]
    fn latency_objective_needs_sustained_breach_when_damped() {
        let j = Arc::new(EventJournal::new(32));
        let mut spec = fast_spec(
            SloObjective::LatencyP99 {
                target: Duration::from_millis(100),
            },
            1,
        );
        spec.fire_after = 3;
        let engine = SloEngine::new(Arc::clone(&j), vec![spec]);
        // A single breached observation does not fire (fire_after = 3).
        engine.observe(1.0, Duration::from_millis(500));
        engine.observe(1.0, Duration::from_millis(1));
        assert!(engine.firing().is_empty(), "one-tick flap is damped");
        // A sustained breach does.
        for _ in 0..3 {
            engine.observe(1.0, Duration::from_millis(500));
        }
        assert_eq!(engine.firing().len(), 1);
    }

    #[test]
    fn metrics_export_is_valid_and_carries_both_families() {
        let j = Arc::new(EventJournal::new(8));
        j.emit(Source::Shard(0), EventKind::ReplicaDown, None, Vec::new());
        j.emit(
            Source::Supervisor,
            EventKind::ReplayRecovered,
            None,
            Vec::new(),
        );
        let engine = SloEngine::new(Arc::clone(&j), SloSpec::default_set());
        engine.observe(0.5, Duration::ZERO); // fires availability
        let mut reg = MetricsRegistry::new();
        reg.collect(j.as_ref());
        reg.collect(&engine);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_events_total{severity=\"critical\",kind=\"replica_down\"} 1"));
        assert!(text.contains("kosr_events_total{severity=\"info\",kind=\"replay_recovered\"} 1"));
        assert!(text.contains("kosr_alert_active{slo=\"availability\"} 1"));
        assert!(text.contains("kosr_alert_active{slo=\"latency_p99\"} 0"));
        assert!(
            text.contains("kosr_alert_transitions_total{slo=\"availability\",state=\"firing\"} 1")
        );
    }

    #[test]
    fn concurrent_emission_stays_gap_free() {
        let j = Arc::new(EventJournal::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let j = Arc::clone(&j);
                s.spawn(move || {
                    for _ in 0..50 {
                        j.emit(
                            Source::Shard(t),
                            EventKind::UpdatePublished,
                            None,
                            Vec::new(),
                        );
                    }
                });
            }
        });
        assert_eq!(j.next_seq(), 200);
        // Retained events are unique and sorted.
        let recent = j.recent();
        assert_eq!(recent.len(), 64);
        for pair in recent.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
