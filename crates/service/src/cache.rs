//! The canonical-query LRU result cache.
//!
//! KOSR traffic is heavily skewed in practice — popular (source,
//! destination, category-sequence) combinations repeat — so the serving
//! layer memoises complete [`KosrOutcome`]s keyed on a canonicalised query.
//! The cache is an O(1) LRU (hash map + intrusive doubly-linked list over a
//! slab), with hit/miss/eviction counters and the invalidation hooks later
//! dynamic-update PRs will drive.

use kosr_core::{KosrOutcome, Query};
use kosr_graph::{CategoryId, VertexId};
use std::collections::HashMap;

/// The canonical form of a query used as the cache key.
///
/// Canonicalisation today: the `(s, t, C, k)` tuple exactly as validated
/// (two queries hit the same entry iff they request the same routes). The
/// method chosen by the planner is deliberately *not* part of the key —
/// every method returns the same top-k answer (the cross-validation suite
/// enforces this), so an answer computed by one method serves them all.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    source: VertexId,
    target: VertexId,
    categories: Box<[CategoryId]>,
    k: usize,
}

impl CacheKey {
    /// Canonicalises `query`.
    pub fn canonical(query: &Query) -> CacheKey {
        CacheKey {
            source: query.source,
            target: query.target,
            categories: query.categories.clone().into_boxed_slice(),
            k: query.k,
        }
    }

    /// `true` if the key's category sequence mentions `c` (used by
    /// category-level invalidation).
    pub fn touches_category(&self, c: CategoryId) -> bool {
        self.categories.contains(&c)
    }

    /// The distinct categories of the key, each yielded once even when the
    /// sequence repeats it — the posting-list keys for category-level
    /// invalidation.
    fn distinct_categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.categories
            .iter()
            .enumerate()
            .filter(|(i, c)| !self.categories[..*i].contains(c))
            .map(|(_, &c)| c)
    }

    /// The `k`-independent part of the key, under which all `k` variants
    /// of the same `(s, t, C)` template are grouped for prefix reuse.
    fn prefix(&self) -> PrefixKey {
        PrefixKey {
            source: self.source,
            target: self.target,
            categories: self.categories.clone(),
        }
    }
}

/// A [`CacheKey`] minus `k`: the grouping key for prefix-truncation reuse.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PrefixKey {
    source: VertexId,
    target: VertexId,
    categories: Box<[CategoryId]>,
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries dropped by invalidation hooks.
    pub invalidations: u64,
    /// Hits served by truncating a cached larger-`k` result (a subset of
    /// `hits`).
    pub prefix_hits: u64,
    /// Entries *examined* by invalidation hooks. The per-category posting
    /// lists make [`ResultCache::invalidate_category`] visit only entries
    /// that actually mention the category, so on mixed traffic this stays
    /// far below `invalidations × entries` — the counter the postings
    /// test pins down.
    pub invalidation_visits: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups, in `0.0 ..= 1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    value: KosrOutcome,
    prev: usize,
    next: usize,
}

/// An LRU cache of complete query outcomes.
///
/// Not internally synchronised: the service wraps it in a mutex. All
/// operations are O(1) except [`ResultCache::invalidate_if`], which scans;
/// [`ResultCache::invalidate_category`] reads a per-category posting list
/// instead and only visits entries that mention the category.
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    /// `(s, t, C)` → slab indexes of all cached `k` variants, for prefix
    /// (`k' < k`) truncation reuse.
    by_prefix: HashMap<PrefixKey, Vec<usize>>,
    /// Category → slab indexes of every entry whose sequence mentions it
    /// (posted once per distinct category): the index that turns
    /// per-update category invalidation from an O(entries) scan into a
    /// visit of exactly the touching entries.
    by_category: HashMap<CategoryId, Vec<usize>>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
    invalidations: u64,
    prefix_hits: u64,
    invalidation_visits: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` outcomes. `capacity == 0`
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            by_prefix: HashMap::new(),
            by_category: HashMap::new(),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
            invalidations: 0,
            prefix_hits: 0,
            invalidation_visits: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            invalidations: self.invalidations,
            prefix_hits: self.prefix_hits,
            invalidation_visits: self.invalidation_visits,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }

    // Fully detaches node `i`: recency list, key map, prefix index and
    // category postings; the slot goes on the free list.
    fn detach(&mut self, i: usize) {
        self.unlink(i);
        let key = self.slab[i].key.clone();
        self.map.remove(&key);
        let pk = key.prefix();
        if let Some(list) = self.by_prefix.get_mut(&pk) {
            list.retain(|&j| j != i);
            if list.is_empty() {
                self.by_prefix.remove(&pk);
            }
        }
        for c in key.distinct_categories() {
            if let Some(list) = self.by_category.get_mut(&c) {
                list.retain(|&j| j != i);
                if list.is_empty() {
                    self.by_category.remove(&c);
                }
            }
        }
        self.free.push(i);
    }

    // Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    // Links node `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. The outcome is
    /// cloned out so the caller never holds references into the cache.
    pub fn get(&mut self, key: &CacheKey) -> Option<KosrOutcome> {
        match self.lookup(key) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`Self::get`] for opportunistic pre-checks: counts a hit but **not**
    /// a miss, so a query probed here and looked up again later (e.g. the
    /// service's submit fast path followed by the worker's re-check) is
    /// charged exactly one miss in [`CacheStats`].
    pub fn probe(&mut self, key: &CacheKey) -> Option<KosrOutcome> {
        let v = self.lookup(key)?;
        self.hits += 1;
        Some(v)
    }

    fn lookup(&mut self, key: &CacheKey) -> Option<KosrOutcome> {
        let i = self.map.get(key).copied()?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slab[i].value.clone())
    }

    /// [`Self::get`] extended with **prefix-truncation reuse**: on an exact
    /// miss, a cached result for the same `(s, t, C)` with a larger `k` —
    /// or one that already exhausted every feasible route — is truncated to
    /// the requested `k` and served. Sound because the service caches only
    /// *canonical* outcomes (`IndexedGraph::run_canonical`), whose top-k′
    /// is a prefix of their top-k for every `k′ ≤ k`.
    ///
    /// Returns the outcome and `true` when it came from truncation.
    pub fn get_prefix(&mut self, key: &CacheKey) -> Option<(KosrOutcome, bool)> {
        match self.lookup_prefix(key) {
            Some(hit) => {
                self.hits += 1;
                self.prefix_hits += hit.1 as u64;
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`Self::get_prefix`] with [`Self::probe`]'s counting rule: a hit is
    /// counted, a miss is not (opportunistic pre-checks).
    pub fn probe_prefix(&mut self, key: &CacheKey) -> Option<(KosrOutcome, bool)> {
        let hit = self.lookup_prefix(key)?;
        self.hits += 1;
        self.prefix_hits += hit.1 as u64;
        Some(hit)
    }

    fn lookup_prefix(&mut self, key: &CacheKey) -> Option<(KosrOutcome, bool)> {
        if let Some(v) = self.lookup(key) {
            return Some((v, false));
        }
        // A donor entry serves k′ = key.k if it holds at least k′ canonical
        // witnesses (k ≥ k′) or it ran out of feasible routes before its
        // own k (then it holds *every* feasible route).
        let donor = {
            let candidates = self.by_prefix.get(&key.prefix())?;
            candidates
                .iter()
                .copied()
                .filter(|&i| {
                    let node = &self.slab[i];
                    node.key.k >= key.k || node.value.witnesses.len() < node.key.k
                })
                .min_by_key(|&i| self.slab[i].key.k)?
        };
        self.unlink(donor);
        self.push_front(donor);
        let mut out = self.slab[donor].value.clone();
        out.witnesses.truncate(key.k);
        Some((out, true))
    }

    /// Inserts (or refreshes) `key → outcome`, evicting the
    /// least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: CacheKey, outcome: KosrOutcome) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = outcome;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.evictions += 1;
        }
        let node = Node {
            key: key.clone(),
            value: outcome,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key.clone(), i);
        self.by_prefix.entry(key.prefix()).or_default().push(i);
        for c in key.distinct_categories().collect::<Vec<_>>() {
            self.by_category.entry(c).or_default().push(i);
        }
        self.push_front(i);
        self.insertions += 1;
    }

    /// Drops every entry whose predicate matches. Returns how many were
    /// dropped. O(entries) — category-shaped predicates should use
    /// [`ResultCache::invalidate_category`], which reads the posting list
    /// instead of scanning.
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(&CacheKey) -> bool) -> usize {
        self.invalidation_visits += self.map.len() as u64;
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed.iter().copied() {
            self.detach(i);
        }
        self.invalidations += doomed.len() as u64;
        doomed.len()
    }

    /// Invalidation hook for dynamic category updates: drops every cached
    /// answer whose category sequence mentions `c` (their member sets — and
    /// hence their answers — may have changed). O(touching entries), not
    /// O(entries): the per-category posting list names exactly the entries
    /// to drop, so an update to a cold category costs nothing even with a
    /// full cache.
    pub fn invalidate_category(&mut self, c: CategoryId) -> usize {
        let Some(doomed) = self.by_category.get(&c).cloned() else {
            return 0;
        };
        self.invalidation_visits += doomed.len() as u64;
        for i in doomed.iter().copied() {
            self.detach(i);
        }
        self.invalidations += doomed.len() as u64;
        doomed.len()
    }

    /// Invalidation hook for graph-structure updates (edge insertions,
    /// weight changes): every cached distance may be stale, so everything
    /// goes.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.by_prefix.clear();
        self.by_category.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.invalidations += n as u64;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::Witness;

    fn key(s: u32, t: u32, cats: &[u32], k: usize) -> CacheKey {
        CacheKey::canonical(&Query::new(
            VertexId(s),
            VertexId(t),
            cats.iter().map(|&c| CategoryId(c)).collect(),
            k,
        ))
    }

    fn outcome(cost: u64) -> KosrOutcome {
        KosrOutcome {
            witnesses: vec![Witness {
                vertices: vec![VertexId(0), VertexId(1)],
                cost,
            }],
            stats: Default::default(),
        }
    }

    #[test]
    fn hit_returns_identical_outcome() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(0, 1, &[2], 3)).is_none());
        c.insert(key(0, 1, &[2], 3), outcome(42));
        let got = c.get(&key(0, 1, &[2], 3)).expect("hit");
        assert_eq!(got.witnesses[0].cost, 42);
        assert_eq!(got.witnesses[0].vertices, outcome(42).witnesses[0].vertices);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn key_distinguishes_all_fields() {
        let mut c = ResultCache::new(16);
        c.insert(key(0, 1, &[2], 3), outcome(1));
        assert!(c.get(&key(9, 1, &[2], 3)).is_none(), "source differs");
        assert!(c.get(&key(0, 9, &[2], 3)).is_none(), "target differs");
        assert!(c.get(&key(0, 1, &[9], 3)).is_none(), "categories differ");
        assert!(c.get(&key(0, 1, &[2, 2], 3)).is_none(), "length differs");
        assert!(c.get(&key(0, 1, &[2], 9)).is_none(), "k differs");
        assert!(c.get(&key(0, 1, &[2], 3)).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_at_capacity() {
        let mut c = ResultCache::new(3);
        for i in 0..3 {
            c.insert(key(i, 0, &[0], 1), outcome(i as u64));
        }
        // Touch 0 so 1 becomes the LRU, then overflow.
        assert!(c.get(&key(0, 0, &[0], 1)).is_some());
        c.insert(key(3, 0, &[0], 1), outcome(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(1, 0, &[0], 1)).is_none(), "LRU entry 1 evicted");
        assert!(c.get(&key(0, 0, &[0], 1)).is_some());
        assert!(c.get(&key(2, 0, &[0], 1)).is_some());
        assert!(c.get(&key(3, 0, &[0], 1)).is_some());
    }

    #[test]
    fn eviction_churn_reuses_slots() {
        let mut c = ResultCache::new(2);
        for i in 0..100u32 {
            c.insert(key(i, 0, &[0], 1), outcome(i as u64));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 98);
        assert!(c.slab.len() <= 3, "slab bounded by capacity, not churn");
        assert_eq!(c.get(&key(99, 0, &[0], 1)).unwrap().witnesses[0].cost, 99);
        assert_eq!(c.get(&key(98, 0, &[0], 1)).unwrap().witnesses[0].cost, 98);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0, &[0], 1), outcome(1));
        c.insert(key(1, 0, &[0], 1), outcome(2));
        c.insert(key(0, 0, &[0], 1), outcome(7)); // refresh, 1 becomes LRU
        c.insert(key(2, 0, &[0], 1), outcome(3)); // evicts 1
        assert_eq!(c.get(&key(0, 0, &[0], 1)).unwrap().witnesses[0].cost, 7);
        assert!(c.get(&key(1, 0, &[0], 1)).is_none());
    }

    #[test]
    fn category_invalidation_is_selective() {
        let mut c = ResultCache::new(8);
        c.insert(key(0, 1, &[1, 2], 1), outcome(1));
        c.insert(key(0, 1, &[3], 1), outcome(2));
        c.insert(key(2, 3, &[2, 4], 1), outcome(3));
        assert_eq!(c.invalidate_category(CategoryId(2)), 2);
        assert!(c.get(&key(0, 1, &[1, 2], 1)).is_none());
        assert!(c.get(&key(2, 3, &[2, 4], 1)).is_none());
        assert!(c.get(&key(0, 1, &[3], 1)).is_some());
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.clear(), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 3);
    }

    fn outcome_n(costs: &[u64]) -> KosrOutcome {
        KosrOutcome {
            witnesses: costs
                .iter()
                .enumerate()
                .map(|(i, &cost)| Witness {
                    vertices: vec![VertexId(0), VertexId(i as u32 + 1)],
                    cost,
                })
                .collect(),
            stats: Default::default(),
        }
    }

    #[test]
    fn prefix_lookup_truncates_larger_k_entries() {
        let mut c = ResultCache::new(8);
        c.insert(key(0, 1, &[2], 5), outcome_n(&[10, 11, 12, 13, 14]));
        // Exact hit is preferred and not a prefix hit.
        let (exact, prefix) = c.get_prefix(&key(0, 1, &[2], 5)).unwrap();
        assert!(!prefix);
        assert_eq!(exact.witnesses.len(), 5);
        // k' < k: served by truncation.
        let (cut, prefix) = c.get_prefix(&key(0, 1, &[2], 2)).unwrap();
        assert!(prefix);
        assert_eq!(cut.costs(), vec![10, 11]);
        assert_eq!(cut.witnesses[..], exact.witnesses[..2]);
        // k' > k on a full entry: a real miss.
        assert!(c.get_prefix(&key(0, 1, &[2], 9)).is_none());
        // Different template: a real miss.
        assert!(c.get_prefix(&key(0, 1, &[3], 2)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.prefix_hits, s.misses), (2, 1, 2));
    }

    #[test]
    fn exhausted_entries_serve_any_k() {
        let mut c = ResultCache::new(8);
        // Asked for 6, only 3 feasible routes exist: the entry is closed
        // over the whole route space and serves any k.
        c.insert(key(0, 1, &[2], 6), outcome_n(&[5, 6, 7]));
        let (out, prefix) = c.get_prefix(&key(0, 1, &[2], 40)).unwrap();
        assert!(prefix);
        assert_eq!(out.costs(), vec![5, 6, 7]);
        let (out, _) = c.get_prefix(&key(0, 1, &[2], 2)).unwrap();
        assert_eq!(out.costs(), vec![5, 6]);
    }

    #[test]
    fn prefix_picks_smallest_sufficient_donor_and_survives_eviction() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 1, &[2], 4), outcome_n(&[1, 2, 3, 4]));
        c.insert(key(0, 1, &[2], 8), outcome_n(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let (out, prefix) = c.get_prefix(&key(0, 1, &[2], 3)).unwrap();
        assert!(prefix);
        assert_eq!(out.costs(), vec![1, 2, 3]);
        // Overflow: the LRU k=8 entry (k=4 was just refreshed) is evicted
        // and must disappear from the prefix index too.
        c.insert(key(9, 9, &[9], 1), outcome_n(&[1]));
        assert!(c.get_prefix(&key(0, 1, &[2], 7)).is_none());
        let (out, _) = c.get_prefix(&key(0, 1, &[2], 4)).unwrap();
        assert_eq!(out.costs(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn probe_prefix_counts_no_miss_and_invalidation_cleans_prefix_index() {
        let mut c = ResultCache::new(8);
        c.insert(key(0, 1, &[2, 3], 4), outcome_n(&[1, 2, 3, 4]));
        assert!(c.probe_prefix(&key(0, 1, &[2, 3], 2)).is_some());
        assert!(c.probe_prefix(&key(5, 5, &[5], 1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.prefix_hits, s.misses), (1, 1, 0));
        assert_eq!(c.invalidate_category(CategoryId(3)), 1);
        assert!(c.get_prefix(&key(0, 1, &[2, 3], 2)).is_none());
        assert!(c.by_prefix.is_empty(), "prefix index cleaned");
        assert!(c.by_category.is_empty(), "category postings cleaned");
    }

    #[test]
    fn category_invalidation_visits_only_touching_entries() {
        // 100 entries on category 0, two on category 1: invalidating
        // category 1 must examine exactly its two posted entries, not the
        // whole map — the counter proof that the postings replaced the
        // O(entries) scan.
        let mut c = ResultCache::new(256);
        for i in 0..100u32 {
            c.insert(key(i, 0, &[0], 1), outcome(i as u64));
        }
        c.insert(key(200, 0, &[1], 1), outcome(1));
        c.insert(key(201, 0, &[1, 1, 0], 1), outcome(2)); // repeats post once
        assert_eq!(c.invalidate_category(CategoryId(1)), 2);
        assert_eq!(c.stats().invalidation_visits, 2);
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.len(), 100);
        // A category nothing mentions is free.
        assert_eq!(c.invalidate_category(CategoryId(9)), 0);
        assert_eq!(c.stats().invalidation_visits, 2);
        // The predicate path still works — and pays the full scan.
        assert_eq!(c.invalidate_if(|k| k.touches_category(CategoryId(0))), 100);
        assert_eq!(c.stats().invalidation_visits, 102);
        assert!(c.is_empty());
        assert!(c.by_category.is_empty());
    }

    #[test]
    fn postings_follow_eviction_and_reinsertion() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0, &[0], 1), outcome(1));
        c.insert(key(1, 0, &[1], 1), outcome(2));
        c.insert(key(2, 0, &[1], 1), outcome(3)); // evicts the [0] entry
        assert_eq!(
            c.invalidate_category(CategoryId(0)),
            0,
            "evicted entry unposted"
        );
        assert_eq!(c.invalidate_category(CategoryId(1)), 2);
        // Slot reuse must not leave stale postings behind.
        c.insert(key(3, 0, &[2], 1), outcome(4));
        c.insert(key(3, 0, &[2], 1), outcome(5)); // refresh: posted once
        assert_eq!(c.invalidate_category(CategoryId(2)), 1);
        assert_eq!(c.stats().invalidation_visits, 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(0, 1, &[2], 3), outcome(1));
        assert!(c.get(&key(0, 1, &[2], 3)).is_none());
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 1, &[2], 3), outcome(1));
        c.get(&key(0, 1, &[2], 3));
        c.get(&key(0, 1, &[2], 3));
        c.get(&key(5, 5, &[2], 3));
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
