//! Shared router/bus state: the epoch-scoped fan-out cache and the update
//! log that replica recovery replays from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use kosr_service::Update;
use kosr_transport::protocol::MemberCounts;
use kosr_transport::{ReplicaSet, TransportError};

/// Per-shard cache of the member-count reports fan-out planning consumes.
///
/// A report is valid for the index epoch it was read at; the update bus
/// drops every entry when a membership update lands (edge updates leave
/// counts untouched, so cached entries survive them). Between updates, any
/// number of queries plan against the cached counts without touching a
/// transport — the regression suite counts the reads.
pub(crate) struct FanoutCache {
    /// `Arc` so the hot path hands out a pointer clone, not a copy of the
    /// whole per-category count vector.
    entries: Vec<Mutex<Option<Arc<MemberCounts>>>>,
    reads: AtomicU64,
}

impl FanoutCache {
    pub(crate) fn new(num_shards: usize) -> FanoutCache {
        FanoutCache {
            entries: (0..num_shards).map(|_| Mutex::new(None)).collect(),
            reads: AtomicU64::new(0),
        }
    }

    /// Shard `j`'s counts, from cache or (on miss) read through the
    /// replica set with failover.
    pub(crate) fn get(
        &self,
        j: usize,
        set: &ReplicaSet,
    ) -> Result<Arc<MemberCounts>, TransportError> {
        let mut slot = self.entries[j].lock().unwrap();
        if let Some(mc) = slot.as_ref() {
            return Ok(Arc::clone(mc));
        }
        let mc = Arc::new(set.call_with_failover(|t| t.member_counts())?);
        self.reads.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&mc));
        Ok(mc)
    }

    /// Drops every cached report (membership counts changed somewhere).
    pub(crate) fn invalidate_all(&self) {
        for e in &self.entries {
            *e.lock().unwrap() = None;
        }
    }

    /// Transport reads performed so far (cache misses).
    pub(crate) fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// The bus's ordered update history plus, per replica, how much of it that
/// replica has applied. A replica whose cursor is behind is inconsistent
/// and must not serve; recovery replays the missing suffix.
///
/// One mutex guards the whole structure **across** the apply calls of a
/// publish/recover/snapshot, so cursors, log order and shipped snapshots
/// can never interleave inconsistently.
///
/// The log is **compacting**: sequence numbers are absolute (the `seq`th
/// publish keeps seq number `seq` forever), but the supervisor drops the
/// prefix below the fleet's minimum replayable cursor once the live
/// portion exceeds its watermark. A replica whose cursor predates the
/// head can no longer be replayed — recovery reports the typed
/// `CursorTooOld` and the supervisor refreshes it by snapshot instead.
/// The invariant every path preserves: **head ≤ min cursor of every
/// replica that will ever be replayed** (stranded cursors are allowed,
/// but only for replicas the refresh path can still reach through a
/// healthy sibling).
pub(crate) struct UpdateLog {
    inner: Mutex<LogInner>,
}

pub(crate) struct LogInner {
    /// Absolute sequence number of `entries[0]`: everything below it has
    /// been compacted away.
    head: usize,
    /// The live suffix of the published updates (base form), in publish
    /// order. Validated no-ops are logged too: replaying them is harmless
    /// and keeps cursors dense.
    entries: Vec<Update>,
    /// `cursors[shard][replica]`: absolute applied prefix length.
    pub cursors: Vec<Vec<usize>>,
}

impl LogInner {
    /// The absolute sequence number one past the newest entry.
    pub(crate) fn tail(&self) -> usize {
        self.head + self.entries.len()
    }

    /// The oldest absolute sequence still replayable.
    pub(crate) fn head(&self) -> usize {
        self.head
    }

    /// Entries currently held live (tail − head).
    pub(crate) fn live_len(&self) -> usize {
        self.entries.len()
    }

    /// Appends an update; returns the tail after the append (the cursor a
    /// replica holds once it has applied this entry).
    pub(crate) fn push(&mut self, update: Update) -> usize {
        self.entries.push(update);
        self.tail()
    }

    /// Drops the newest entry — the unlog path for a publish every
    /// consistent replica deterministically refused.
    pub(crate) fn pop_newest(&mut self) {
        self.entries.pop();
    }

    /// The entry at absolute sequence `seq`, if it is still live.
    pub(crate) fn get(&self, seq: usize) -> Option<Update> {
        seq.checked_sub(self.head)
            .and_then(|i| self.entries.get(i))
            .copied()
    }

    /// The live entries from absolute sequence `from` (clamped to head).
    pub(crate) fn suffix(&self, from: usize) -> &[Update] {
        &self.entries[from.saturating_sub(self.head).min(self.entries.len())..]
    }

    /// Advances the head to `target` (absolute), dropping everything
    /// below; returns how many entries were dropped. A target at or below
    /// the current head is a no-op.
    pub(crate) fn compact_to(&mut self, target: usize) -> usize {
        let drop = target.saturating_sub(self.head).min(self.entries.len());
        if drop > 0 {
            self.entries.drain(..drop);
            self.head += drop;
        }
        drop
    }
}

impl UpdateLog {
    pub(crate) fn new(replicas_per_shard: &[usize]) -> UpdateLog {
        UpdateLog {
            inner: Mutex::new(LogInner {
                head: 0,
                entries: Vec::new(),
                cursors: replicas_per_shard.iter().map(|&n| vec![0; n]).collect(),
            }),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap()
    }
}
