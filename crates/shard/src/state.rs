//! Shared router/bus state: the epoch-scoped fan-out cache and the update
//! log that replica recovery replays from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use kosr_service::Update;
use kosr_transport::protocol::MemberCounts;
use kosr_transport::{ReplicaSet, TransportError};

/// Per-shard cache of the member-count reports fan-out planning consumes.
///
/// A report is valid for the index epoch it was read at; the update bus
/// drops every entry when a membership update lands (edge updates leave
/// counts untouched, so cached entries survive them). Between updates, any
/// number of queries plan against the cached counts without touching a
/// transport — the regression suite counts the reads.
pub(crate) struct FanoutCache {
    /// `Arc` so the hot path hands out a pointer clone, not a copy of the
    /// whole per-category count vector.
    entries: Vec<Mutex<Option<Arc<MemberCounts>>>>,
    reads: AtomicU64,
}

impl FanoutCache {
    pub(crate) fn new(num_shards: usize) -> FanoutCache {
        FanoutCache {
            entries: (0..num_shards).map(|_| Mutex::new(None)).collect(),
            reads: AtomicU64::new(0),
        }
    }

    /// Shard `j`'s counts, from cache or (on miss) read through the
    /// replica set with failover.
    pub(crate) fn get(
        &self,
        j: usize,
        set: &ReplicaSet,
    ) -> Result<Arc<MemberCounts>, TransportError> {
        let mut slot = self.entries[j].lock().unwrap();
        if let Some(mc) = slot.as_ref() {
            return Ok(Arc::clone(mc));
        }
        let mc = Arc::new(set.call_with_failover(|t| t.member_counts())?);
        self.reads.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&mc));
        Ok(mc)
    }

    /// Drops every cached report (membership counts changed somewhere).
    pub(crate) fn invalidate_all(&self) {
        for e in &self.entries {
            *e.lock().unwrap() = None;
        }
    }

    /// Transport reads performed so far (cache misses).
    pub(crate) fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// The bus's ordered update history plus, per replica, how much of it that
/// replica has applied. A replica whose cursor is behind is inconsistent
/// and must not serve; recovery replays the missing suffix.
///
/// One mutex guards the whole structure **across** the apply calls of a
/// publish/recover/snapshot, so cursors, log order and shipped snapshots
/// can never interleave inconsistently.
///
/// The log is append-only for now: compacting the prefix below the
/// minimum cursor (long-downed replicas re-join via snapshot + their own
/// cursor anyway) is deliberately left to the supervisor-loop follow-up
/// in the ROADMAP — it needs cursor rebasing, which belongs with the
/// component that decides when a replica is snapshot-refreshed instead
/// of replayed.
pub(crate) struct UpdateLog {
    inner: Mutex<LogInner>,
}

pub(crate) struct LogInner {
    /// Published updates (base form), in publish order. Validated no-ops
    /// are logged too: replaying them is harmless and keeps cursors dense.
    pub entries: Vec<Update>,
    /// `cursors[shard][replica]`: applied prefix length of `entries`.
    pub cursors: Vec<Vec<usize>>,
}

impl UpdateLog {
    pub(crate) fn new(replicas_per_shard: &[usize]) -> UpdateLog {
        UpdateLog {
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                cursors: replicas_per_shard.iter().map(|&n| vec![0; n]).collect(),
            }),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap()
    }
}
