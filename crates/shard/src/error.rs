//! The sharded deployment's error surface: the service-layer rejections a
//! single replica would give, plus the transport-layer failures that only
//! exist once replicas live behind a wire.

use kosr_service::{ServiceError, UpdateError};
use kosr_transport::TransportError;

/// Why a sharded operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// A deterministic service rejection — exactly what an unsharded
    /// service would say, and displayed identically so rejection parity
    /// with the unsharded oracle holds string-for-string.
    Service(ServiceError),
    /// A deterministic update rejection.
    Update(UpdateError),
    /// Transport trouble failover could not hide (e.g. every replica of a
    /// shard is down).
    Transport(TransportError),
    /// A replica's update-log cursor predates the compacted log head:
    /// replay is impossible, the replica must be refreshed by snapshot
    /// (the supervisor's `CursorTooOld → snapshot refresh` path).
    CursorTooOld {
        /// The replica's applied cursor.
        cursor: usize,
        /// The log head: the oldest sequence still replayable.
        head: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Deliberately transparent: parity with unsharded rejections.
            ShardError::Service(e) => write!(f, "{e}"),
            ShardError::Update(e) => write!(f, "{e}"),
            ShardError::Transport(e) => write!(f, "shard transport: {e}"),
            ShardError::CursorTooOld { cursor, head } => {
                write!(
                    f,
                    "replica cursor {cursor} predates compacted log head {head}: snapshot refresh required"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Service(e) => Some(e),
            ShardError::Update(e) => Some(e),
            ShardError::Transport(e) => Some(e),
            ShardError::CursorTooOld { .. } => None,
        }
    }
}

impl From<ServiceError> for ShardError {
    fn from(e: ServiceError) -> ShardError {
        ShardError::Service(e)
    }
}

impl From<UpdateError> for ShardError {
    fn from(e: UpdateError) -> ShardError {
        ShardError::Update(e)
    }
}

impl From<TransportError> for ShardError {
    fn from(e: TransportError) -> ShardError {
        match e {
            // Unwrap deterministic rejections to their service-level shape
            // so callers see the same errors sharded and unsharded.
            TransportError::Service(e) => ShardError::Service(e),
            TransportError::Update(e) => ShardError::Update(e),
            // A remote replica refusing a stale compaction notice is the
            // same condition as a local cursor-vs-head mismatch.
            TransportError::CursorTooOld { cursor, head } => ShardError::CursorTooOld {
                cursor: cursor as usize,
                head: head as usize,
            },
            other => ShardError::Transport(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::QueryError;

    #[test]
    fn service_rejections_display_identically_to_unsharded() {
        let inner = ServiceError::InvalidQuery(QueryError::ZeroK);
        assert_eq!(
            ShardError::Service(inner.clone()).to_string(),
            inner.to_string()
        );
    }

    #[test]
    fn transport_conversion_unwraps_deterministic_rejections() {
        let e: ShardError = TransportError::Service(ServiceError::ShuttingDown).into();
        assert_eq!(e, ShardError::Service(ServiceError::ShuttingDown));
        let e: ShardError = TransportError::Connection("x".into()).into();
        assert!(matches!(e, ShardError::Transport(_)));
        assert!(e.to_string().contains("transport"));
    }
}
