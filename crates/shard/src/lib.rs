//! # kosr-shard
//!
//! Partitioned multi-replica serving for KOSR — the step past one box the
//! ROADMAP calls for. One `kosr-service` replica per **region/category
//! shard**, a router that fans queries out and merges per-shard top-k
//! streams bit-identically to an unsharded run, and a live update bus that
//! routes §IV-C dynamic updates to the replicas that own them.
//!
//! ## The sharding model
//!
//! A [`Partitioner`](kosr_graph::Partitioner) assigns every vertex to one
//! region shard. From that assignment, [`ShardSet::build`] derives one
//! [`IndexedGraph`] per shard:
//!
//! * the **routing skeleton** (CSR graph + 2-hop labels) is replicated per
//!   replica — legs of a sequenced route cross regions freely, so exact
//!   distances need full connectivity (the partitioner's boundary/cut
//!   statistics price what a transport-level extraction would replicate);
//! * the **category data is partitioned**: each base category `C` gains a
//!   per-shard *shadow category* `C@j` holding exactly the members owned
//!   by shard `j`, with its own inverted label index built over just that
//!   slice.
//!
//! ## Why the merge is exact
//!
//! Every feasible route has a unique *first stop* `v₁ ∈ C₁`, and every
//! vertex has a unique owner — so the route space decomposes into disjoint
//! per-shard subspaces. The [`ShardRouter`] rewrites a query's first
//! category to each touched shard's shadow (`C₁ → C₁@j`), which makes
//! shard `j` enumerate exactly its subspace, exactly (all later stops use
//! the replicated full categories). Per-shard answers use the canonical
//! top-k semantics of `IndexedGraph::run_canonical`, so merging the ≤ k
//! streams with a bounded heap under the same deterministic tie-break
//! (cost, then lexicographic witness) reproduces the unsharded canonical
//! top-k **bit for bit** — the cross-shard property test enforces it.
//!
//! ## Transport, replication and failover
//!
//! Replicas live behind [`ShardTransport`]s (`kosr-transport`): the
//! loopback [`InProcTransport`] or a [`TcpTransport`] client for replicas
//! behind [`TcpServer`]s — both speak the same length-prefixed wire
//! protocol. Each shard is a [`ReplicaSet`] of N replicas with health
//! state: queries go to the lowest healthy replica and transparently fail
//! over on connection faults, which preserves the bit-identical merge
//! because every consistent replica answers with the same canonical
//! stream. Fan-out planning reads per-shard member counts through the
//! transport **once per membership epoch** (cached, invalidated by the
//! bus).
//!
//! ## Live updates
//!
//! The [`LiveUpdateBus`] finishes the dynamic-update path: membership
//! updates go to every replica's copy of the base category and
//! additionally to the owning shard's shadow; edge updates broadcast.
//! Each application drives the owning replica's cache-invalidation hooks
//! through `KosrService::apply_update`, so no replica ever serves a stale
//! answer. The bus also keeps an **update log**: a replica that misses an
//! update (fault, kill, cold snapshot join via
//! [`ShardRouter::snapshot_shard`]) is marked down and re-enters service
//! only after [`LiveUpdateBus::recover`] replays the missed suffix.
//!
//! ```
//! use std::sync::Arc;
//! use kosr_core::{figure1, IndexedGraph, Query};
//! use kosr_graph::{PartitionConfig, Partitioner};
//! use kosr_service::ServiceConfig;
//! use kosr_shard::{ShardRouter, ShardSet};
//!
//! let fx = figure1::figure1();
//! let ig = IndexedGraph::build_default(fx.graph.clone());
//! let partition = Partitioner::new(PartitionConfig { num_shards: 2, ..Default::default() })
//!     .partition(&ig.graph);
//! let set = ShardSet::build(&ig, partition);
//! let router = ShardRouter::new(set, ServiceConfig::default());
//!
//! let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
//! let resp = router.submit(q).unwrap().wait().unwrap();
//! assert_eq!(resp.outcome.costs(), vec![20, 21, 22]); // Example 1, sharded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod bus;
mod error;
mod merge;
mod metrics;
mod observe;
mod router;
mod state;
mod supervisor;

/// The single definition of the shadow-category layout: shard replicas
/// store `B` base categories at ids `0..B` and the per-shard owned slices
/// at ids `B..2B`, so base `c` shadows to `B + c`. Every component
/// (builder, router, bus) derives shadow ids through here.
pub(crate) fn shadow_of(
    base_categories: usize,
    c: kosr_graph::CategoryId,
) -> kosr_graph::CategoryId {
    kosr_graph::CategoryId((base_categories + c.index()) as u32)
}

pub use build::ShardSet;
pub use bus::{BusReceipt, LiveUpdateBus};
pub use error::ShardError;
pub use merge::merge_topk;
pub use observe::{ObserverRegistry, UpdateObserver};
pub use router::{ShardRouter, ShardTicket, ShardedResponse};
pub use supervisor::{FleetSupervisor, SupervisorConfig, SupervisorHandle, SupervisorReport};

// Re-exported so shard users don't need direct sibling dependencies for
// the common types.
pub use kosr_core::{IndexedGraph, KosrOutcome, Query};
pub use kosr_graph::{Partition, PartitionConfig, PartitionStats, Partitioner};
pub use kosr_service::{
    MetricsRegistry, MetricsSource, ServiceConfig, ServiceError, Update, UpdateError,
};
pub use kosr_transport::{
    InProcTransport, KillSwitch, ReplicaHealth, ReplicaSet, ReplicaSetSnapshot, ShardTransport,
    TcpServer, TcpTransport, TransportError, TransportTicket,
};
