//! Building per-shard replicas from one indexed graph and a partition.

use kosr_core::IndexedGraph;
use kosr_graph::{CategoryId, Partition, PartitionStats, VertexId};
use kosr_index::{CategoryBounds, CategoryIndexSet, InvertedLabelIndex};

/// One [`IndexedGraph`] replica per shard, each carrying the replicated
/// routing skeleton plus its own slice of the category data as *shadow
/// categories*.
///
/// Category layout inside shard `j` (for `B` base categories):
///
/// * ids `0 .. B` — the base categories with **full** membership
///   (replicated; later stops of a sequenced route may use any member),
/// * ids `B .. 2B` — shadow categories: `B + c` holds exactly the members
///   of `c` owned by shard `j` (named `"{name}@{j}"`).
///
/// The router substitutes a query's first category with the shadow id to
/// confine shard `j` to routes whose first stop it owns.
pub struct ShardSet {
    shards: Vec<IndexedGraph>,
    partition: Partition,
    base_categories: usize,
    /// Quality statistics against the **base** graph, computed at build
    /// time — replica graphs carry extra shadow memberships and would
    /// double-count the owner's share.
    partition_stats: PartitionStats,
}

impl ShardSet {
    /// Derives one replica per shard of `partition` from the unsharded
    /// `ig`. The graph structure and 2-hop labels are cloned per shard
    /// (replication); inverted indexes for shadow categories are built
    /// over each shard's owned member slice only.
    pub fn build(ig: &IndexedGraph, partition: Partition) -> ShardSet {
        let base = ig.graph.categories().num_categories();
        let shards = (0..partition.num_shards())
            .map(|j| {
                let mut graph = ig.graph.clone();
                let mut owned_members: Vec<Vec<VertexId>> = Vec::with_capacity(base);
                for c in 0..base {
                    let cid = CategoryId(c as u32);
                    let name = format!("{}@{j}", graph.categories().name(cid));
                    let shadow = graph.categories_mut().add_category(name);
                    debug_assert_eq!(shadow.index(), base + c);
                    let members = partition.members_owned(ig.graph.categories(), cid, j);
                    for &m in &members {
                        graph.categories_mut().insert(m, shadow);
                    }
                    owned_members.push(members);
                }
                let indexes: Vec<InvertedLabelIndex> = (0..base)
                    .map(|c| ig.inverted.category(CategoryId(c as u32)).clone())
                    .chain(
                        owned_members
                            .iter()
                            .map(|m| InvertedLabelIndex::build_from_members(&ig.labels, m)),
                    )
                    .collect();
                // The chain tables cover the shadow categories too, so
                // the router can bound shadow-rewritten queries against
                // this shard's owned first stops.
                let bounds = CategoryBounds::build(&ig.labels, graph.categories());
                IndexedGraph {
                    graph,
                    labels: ig.labels.clone(),
                    inverted: CategoryIndexSet::from_indexes(indexes),
                    bounds,
                    label_stats: ig.label_stats,
                    inverted_stats: ig.inverted_stats,
                }
            })
            .collect();
        let partition_stats = partition.stats(&ig.graph);
        ShardSet {
            shards,
            partition,
            base_categories: base,
            partition_stats,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of base (pre-shadow) categories.
    pub fn base_categories(&self) -> usize {
        self.base_categories
    }

    /// The vertex-ownership assignment the set was built from.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The replica of shard `j`.
    pub fn shard(&self, j: usize) -> &IndexedGraph {
        &self.shards[j]
    }

    /// The shadow id of base category `c`.
    pub fn shadow(&self, c: CategoryId) -> CategoryId {
        crate::shadow_of(self.base_categories, c)
    }

    /// Partition quality against the base (pre-shadow) graph.
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.partition_stats
    }

    pub(crate) fn into_parts(self) -> (Vec<IndexedGraph>, Partition, usize, PartitionStats) {
        (
            self.shards,
            self.partition,
            self.base_categories,
            self.partition_stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_graph::{PartitionConfig, Partitioner};

    #[test]
    fn shadow_categories_partition_each_base_category() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 3,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        assert_eq!(set.base_categories(), 3);

        for c in [fx.ma, fx.re, fx.ci] {
            let full: Vec<_> = ig.graph.categories().vertices_of(c).to_vec();
            let mut owned_total = 0;
            for j in 0..set.num_shards() {
                let shard = set.shard(j);
                // Base categories stay fully replicated.
                assert_eq!(shard.graph.categories().vertices_of(c), &full[..]);
                // Shadows hold exactly the owned slice, in table and index.
                let shadow = set.shadow(c);
                let owned = shard.graph.categories().vertices_of(shadow);
                for &m in owned {
                    assert_eq!(set.partition().owner(m), j);
                }
                assert_eq!(shard.inverted.members_of(shadow), owned.len());
                owned_total += owned.len();
            }
            assert_eq!(owned_total, full.len(), "shadows partition {c:?}");
        }

        // Build-time partition stats count base memberships only — the
        // replica graphs' shadow memberships must not inflate them.
        let stats = set.partition_stats();
        assert_eq!(
            stats.shard_memberships.iter().sum::<usize>(),
            ig.graph.categories().num_memberships()
        );
    }

    #[test]
    fn shadow_names_mention_shard_and_base() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let shadow = set.shadow(fx.re);
        assert_eq!(set.shard(0).graph.categories().name(shadow), "RE@0");
        assert_eq!(set.shard(1).graph.categories().name(shadow), "RE@1");
    }
}
