//! Post-publish update observation: the hook continuous-query layers
//! (e.g. `kosr-subscribe`) attach to see every update the moment the bus
//! has committed it fleet-wide.
//!
//! The registry is shared by every [`crate::LiveUpdateBus`] handle a
//! router hands out — the gateway's, the supervisor's, a test's — so a
//! publish through *any* handle notifies the same observers, in publish
//! (log) order. Observers run on the publishing thread **after** the
//! update log lock is released: an observer may freely re-enter the
//! router (submit queries, read cursor state) without deadlocking, at the
//! price of adding its latency to the publish call.

use std::sync::{Arc, RwLock};

use kosr_service::Update;

use crate::bus::BusReceipt;

/// Sees every committed update, post-publish. Implementations must be
/// cheap or explicitly accept that they run on the publisher's thread.
pub trait UpdateObserver: Send + Sync {
    /// Called once per logged publish, after all reachable replicas have
    /// applied `update` (unreachable ones are deferred to replay — the
    /// receipt says how many). `receipt.epoch` is the publish epoch that
    /// contains the update.
    fn on_update(&self, update: &Update, receipt: &BusReceipt);
}

/// The shared, ordered list of registered [`UpdateObserver`]s.
#[derive(Default)]
pub struct ObserverRegistry {
    observers: RwLock<Vec<Arc<dyn UpdateObserver>>>,
}

impl ObserverRegistry {
    /// An empty registry.
    pub fn new() -> ObserverRegistry {
        ObserverRegistry::default()
    }

    /// Appends `observer`; it sees every publish from now on.
    pub fn register(&self, observer: Arc<dyn UpdateObserver>) {
        self.observers
            .write()
            .expect("observer registry poisoned")
            .push(observer);
    }

    /// Number of registered observers.
    pub fn len(&self) -> usize {
        self.observers
            .read()
            .expect("observer registry poisoned")
            .len()
    }

    /// `true` when nothing is registered (the publish fast path).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn notify(&self, update: &Update, receipt: &BusReceipt) {
        // Clone the Arcs out so observer callbacks never run under the
        // registry lock (an observer may itself register observers).
        let observers: Vec<Arc<dyn UpdateObserver>> = self
            .observers
            .read()
            .expect("observer registry poisoned")
            .clone();
        for o in &observers {
            o.on_update(update, receipt);
        }
    }
}
