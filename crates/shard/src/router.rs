//! The fan-out router: one `KosrService` replica per shard, query
//! decomposition by first-stop ownership, and the bounded-heap merge.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kosr_core::{KosrOutcome, Query};
use kosr_graph::{CategoryId, Partition, PartitionStats};
use kosr_service::{KosrService, ServiceConfig, ServiceError, ServiceStats, Ticket};

use crate::build::ShardSet;
use crate::bus::LiveUpdateBus;
use crate::merge::merge_topk;

/// Routes queries across the shard replicas and merges their answers.
///
/// Fan-out planning per query:
///
/// * empty category sequence — the route space is the single witness
///   `⟨s, t⟩`; the query goes only to the **source's owner** shard;
/// * otherwise — the query touches exactly the shards owning at least one
///   member of its **first** category (read live from each replica's
///   inverted index, so membership updates re-route automatically), with
///   `C₁` rewritten to that shard's shadow category.
///
/// Every touched shard runs the full `k`; [`ShardTicket::wait`] merges the
/// canonical streams with [`merge_topk`], so the response is bit-identical
/// to an unsharded `KosrService` run of the same query.
pub struct ShardRouter {
    services: Vec<Arc<KosrService>>,
    partition: Arc<Partition>,
    base_categories: usize,
    partition_stats: PartitionStats,
}

/// A merged cross-shard response.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// The globally merged canonical top-k outcome.
    pub outcome: KosrOutcome,
    /// The shards the query fanned out to.
    pub shards: Vec<usize>,
    /// How many of the per-shard answers came from replica caches.
    pub cached_shards: usize,
    /// Submit → merged-response wall clock (slowest shard + merge).
    pub latency: Duration,
}

/// A pending cross-shard response: redeem with [`ShardTicket::wait`].
#[must_use = "a shard ticket must be waited on to observe the merged result"]
pub struct ShardTicket {
    parts: Vec<(usize, Ticket)>,
    k: usize,
    submitted: Instant,
}

impl ShardTicket {
    /// Blocks until every touched shard answers, then merges. The first
    /// per-shard failure (deadline, budget, lost worker) fails the whole
    /// query — partial top-k sets cannot be proven correct.
    pub fn wait(self) -> Result<ShardedResponse, ServiceError> {
        let mut shards = Vec::with_capacity(self.parts.len());
        let mut streams = Vec::with_capacity(self.parts.len());
        let mut cached_shards = 0;
        for (shard, ticket) in self.parts {
            let resp = ticket.wait()?;
            shards.push(shard);
            cached_shards += resp.cached as usize;
            streams.push(resp.outcome);
        }
        let outcome = merge_topk(streams, self.k);
        Ok(ShardedResponse {
            outcome,
            shards,
            cached_shards,
            latency: self.submitted.elapsed(),
        })
    }
}

impl ShardRouter {
    /// Spawns one [`KosrService`] replica (with `config`) per shard of
    /// `set`.
    pub fn new(set: ShardSet, config: ServiceConfig) -> ShardRouter {
        let (shards, partition, base_categories, partition_stats) = set.into_parts();
        let services = shards
            .into_iter()
            .map(|ig| Arc::new(KosrService::new(Arc::new(ig), config.clone())))
            .collect();
        ShardRouter {
            services,
            partition: Arc::new(partition),
            base_categories,
            partition_stats,
        }
    }

    /// Number of shard replicas.
    pub fn num_shards(&self) -> usize {
        self.services.len()
    }

    /// The vertex-ownership assignment queries are routed by.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The replica serving shard `j` (for inspection and tests).
    pub fn shard_service(&self, j: usize) -> &KosrService {
        &self.services[j]
    }

    /// The shadow id of base category `c`.
    pub fn shadow(&self, c: CategoryId) -> CategoryId {
        crate::shadow_of(self.base_categories, c)
    }

    /// A bus that routes live updates to these replicas.
    pub fn update_bus(&self) -> LiveUpdateBus {
        LiveUpdateBus::new(
            self.services.clone(),
            Arc::clone(&self.partition),
            self.base_categories,
        )
    }

    /// The shards `query` must touch (see the type-level docs). Reads the
    /// replicas' live inverted indexes, so the plan tracks updates.
    pub fn plan_fanout(&self, query: &Query) -> Vec<usize> {
        let Some(&c1) = query.categories.first() else {
            return vec![self.partition.owner(query.source)];
        };
        let shadow = self.shadow(c1);
        (0..self.services.len())
            .filter(|&j| self.services[j].indexed_graph().inverted.members_of(shadow) > 0)
            .collect()
    }

    /// Validates `query` once against the full (replicated) category data,
    /// then submits the shadow-rewritten query to every planned shard.
    ///
    /// Admission is not atomic across shards: if a later shard refuses
    /// (e.g. queue full), the earlier shards still compute and discard
    /// their parts — the query as a whole is rejected.
    pub fn submit(&self, query: Query) -> Result<ShardTicket, ServiceError> {
        let submitted = Instant::now();
        // Replica graphs know extra internal shadow categories; clients
        // speak base ids only. Reject out-of-base ids *before* replica
        // validation (which would accept a shadow id), matching what an
        // unsharded service over the base graph would do.
        for &c in &query.categories {
            if c.index() >= self.base_categories {
                return Err(ServiceError::InvalidQuery(
                    kosr_core::QueryError::UnknownCategory(c),
                ));
            }
        }
        query
            .validate(&self.services[0].indexed_graph().graph)
            .map_err(ServiceError::InvalidQuery)?;
        let targets = self.plan_fanout(&query);
        if targets.is_empty() {
            // Validation saw C1 non-empty, but a concurrent bus update
            // emptied it before fan-out planning. Serialize the query
            // after the update: the same rejection an unsharded service
            // would give for the post-update world.
            let c1 = query.categories[0];
            return Err(ServiceError::InvalidQuery(
                kosr_core::QueryError::EmptyCategory(c1),
            ));
        }
        let k = query.k;
        let mut parts = Vec::with_capacity(targets.len());
        for &j in &targets {
            let mut q = query.clone();
            if let Some(c1) = q.categories.first_mut() {
                *c1 = self.shadow(*c1);
            }
            parts.push((j, self.services[j].submit(q)?));
        }
        Ok(ShardTicket {
            parts,
            k,
            submitted,
        })
    }

    /// Submits a whole batch and blocks until every query resolves;
    /// responses come back in input order, rejections reported in-place.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<ShardedResponse, ServiceError>> {
        let tickets: Vec<Result<ShardTicket, ServiceError>> =
            queries.iter().map(|q| self.submit(q.clone())).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(ShardTicket::wait))
            .collect()
    }

    /// Per-shard service health snapshots.
    pub fn per_shard_stats(&self) -> Vec<ServiceStats> {
        self.services.iter().map(|s| s.stats()).collect()
    }

    /// Partition quality against the base graph, captured at build time
    /// (replica graphs carry shadow memberships and would double-count).
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.partition_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::QueryError;

    fn router(shards: usize) -> (ShardRouter, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: shards,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        (
            ShardRouter::new(
                set,
                ServiceConfig {
                    workers: 2,
                    ..Default::default()
                },
            ),
            fx,
        )
    }

    #[test]
    fn figure1_answers_survive_sharding() {
        for shards in [1, 2, 3, 4] {
            let (router, fx) = router(shards);
            let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
            let resp = router.submit(q).unwrap().wait().unwrap();
            assert_eq!(resp.outcome.costs(), vec![20, 21, 22], "{shards} shards");
            assert!(!resp.shards.is_empty());
            assert!(resp.shards.len() <= shards);
        }
    }

    #[test]
    fn fanout_skips_shards_without_first_category_members() {
        let (router, fx) = router(3);
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 2);
        let fanout = router.plan_fanout(&q);
        // MA has two members; at most two shards can own one.
        assert!(!fanout.is_empty() && fanout.len() <= 2, "{fanout:?}");
        for &j in &fanout {
            let svc = router.shard_service(j);
            assert!(
                svc.indexed_graph()
                    .inverted
                    .members_of(router.shadow(fx.ma))
                    > 0
            );
        }
    }

    #[test]
    fn empty_category_queries_route_to_source_owner_only() {
        let (router, fx) = router(3);
        let q = Query::new(fx.s, fx.t, vec![], 2);
        assert_eq!(router.plan_fanout(&q), vec![router.partition().owner(fx.s)]);
        let resp = router.submit(q).unwrap().wait().unwrap();
        // The only witness is ⟨s, t⟩.
        assert_eq!(resp.outcome.witnesses.len(), 1);
        assert_eq!(resp.shards.len(), 1);
    }

    #[test]
    fn invalid_queries_rejected_before_fanout() {
        let (router, fx) = router(2);
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![fx.ma], 0)),
            Err(ServiceError::InvalidQuery(QueryError::ZeroK))
        ));
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![CategoryId(40)], 1)),
            Err(ServiceError::InvalidQuery(QueryError::UnknownCategory(_)))
        ));
        // Shadow ids are internal: a client naming one is rejected exactly
        // like any unknown category, even though replica graphs know it.
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![router.shadow(fx.ma)], 1)),
            Err(ServiceError::InvalidQuery(QueryError::UnknownCategory(_)))
        ));
        let stats = router.per_shard_stats();
        assert!(stats.iter().all(|s| s.submitted == 0));
    }

    #[test]
    fn batch_matches_singles_and_caches_warm_per_shard() {
        let (router, fx) = router(2);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let queries = vec![q.clone(), q.clone(), q];
        let out = router.run_batch(&queries);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        let last = out[2].as_ref().unwrap();
        assert_eq!(first.outcome.witnesses, last.outcome.witnesses);
        // Repeats are served from the replica caches.
        assert_eq!(last.cached_shards, last.shards.len());
    }
}
