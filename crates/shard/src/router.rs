//! The fan-out router, now transport-native: one [`ReplicaSet`] per shard
//! (N replicas behind [`ShardTransport`]s), query decomposition by
//! first-stop ownership, epoch-cached fan-out planning, and the
//! bounded-heap merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kosr_core::{KosrOutcome, Query, QueryError};
use kosr_graph::{CategoryId, Partition, PartitionStats, Weight};
use kosr_service::{
    span_id_for, EventJournal, KosrService, ServiceConfig, ServiceError, ServiceStats, SloEngine,
    SloSpec, Span, TraceContext,
};
use kosr_transport::protocol::{MemberCounts, SnapshotBlob};
use kosr_transport::{InProcTransport, ReplicaSet, ShardTransport, TransportTicket};

use crate::build::ShardSet;
use crate::bus::LiveUpdateBus;
use crate::error::ShardError;
use crate::merge::merge_topk_bounded;
use crate::observe::{ObserverRegistry, UpdateObserver};
use crate::state::{FanoutCache, UpdateLog};

/// Routes queries across the shard replica fleets and merges their answers.
///
/// Fan-out planning per query:
///
/// * empty category sequence — the route space is the single witness
///   `⟨s, t⟩`; the query goes only to the **source's owner** shard;
/// * otherwise — the query touches exactly the shards owning at least one
///   member of its **first** category, with `C₁` rewritten to that shard's
///   shadow category.
///
/// Planning reads each shard's member counts through its transport **once
/// per epoch**: reports are cached and invalidated by the update bus when
/// a membership update lands, so steady-state queries plan without any
/// control-plane round trips (the fan-out regression test counts reads).
///
/// Every touched shard runs the full `k` on one healthy replica (with
/// transparent failover to the next on connection faults —
/// [`ReplicaSet::query`]) — unless the shard's own category-chain table
/// proves its subspace empty, in which case the fan-out skips it (see
/// [`ShardRouter::submit_traced`]). [`ShardTicket::wait`] merges the
/// canonical streams with [`merge_topk_bounded`], admitting each stream
/// only once its chain bound allows it, so the response is bit-identical
/// to an unsharded `KosrService` run of the same query.
pub struct ShardRouter {
    shards: Vec<Arc<ReplicaSet>>,
    /// In-process service handles, per shard per replica — populated by
    /// the in-process constructors for introspection/tests, empty when the
    /// router was assembled from remote transports.
    services: Vec<Vec<Arc<KosrService>>>,
    partition: Arc<Partition>,
    base_categories: usize,
    partition_stats: PartitionStats,
    fanout: Arc<FanoutCache>,
    log: Arc<UpdateLog>,
    events: Arc<EventJournal>,
    observers: Arc<ObserverRegistry>,
    slo: Arc<SloEngine>,
    /// Planned shards proven empty by their category-chain bound and never
    /// queried (see [`ShardRouter::submit_traced`]).
    bound_skips: AtomicU64,
}

/// A merged cross-shard response.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// The globally merged canonical top-k outcome.
    pub outcome: KosrOutcome,
    /// The shards the query fanned out to.
    pub shards: Vec<usize>,
    /// Planned shards skipped because their chain bound proved they could
    /// not contribute a witness (in-process replicas only).
    pub skipped_shards: Vec<usize>,
    /// How many of the per-shard answers came from replica caches.
    pub cached_shards: usize,
    /// Submit → merged-response wall clock (slowest shard + merge).
    pub latency: Duration,
    /// The span forest for sampled traced submissions: one `shard` span
    /// per fanned-out shard (replica spans nested beneath) plus the
    /// `merge` span, all parented under the submitted context's span.
    /// Empty for untraced submissions.
    pub spans: Vec<Span>,
}

/// A pending cross-shard response: redeem with [`ShardTicket::wait`].
#[must_use = "a shard ticket must be waited on to observe the merged result"]
pub struct ShardTicket {
    parts: Vec<(usize, TransportTicket)>,
    /// Admissible per-stream cost lower bounds, aligned with `parts` —
    /// `0` for shards whose bound could not be computed locally.
    bounds: Vec<Weight>,
    skipped: Vec<usize>,
    k: usize,
    submitted: Instant,
    trace: Option<TraceContext>,
}

impl ShardTicket {
    /// Blocks until every touched shard answers, then merges. The first
    /// per-shard failure (rejection, or a shard with no replica left)
    /// fails the whole query — partial top-k sets cannot be proven
    /// correct.
    pub fn wait(self) -> Result<ShardedResponse, ShardError> {
        let mut shards = Vec::with_capacity(self.parts.len());
        let mut streams = Vec::with_capacity(self.parts.len());
        let mut cached_shards = 0;
        let mut spans = Vec::new();
        for (shard, ticket) in self.parts {
            let resp = ticket.wait().map_err(ShardError::from)?;
            if let Some(ctx) = &self.trace {
                // The shard span: fan-out until *this* shard's answer was
                // observed. The replica's own spans hang beneath it (the
                // child context derived in submit uses the same id).
                spans.push(Span {
                    id: shard_span_id(ctx, shard),
                    parent: Some(ctx.parent_span),
                    name: "shard".into(),
                    start_us: 0,
                    duration_us: elapsed_us(self.submitted),
                    tags: vec![
                        ("shard".into(), kosr_service::TagValue::U64(shard as u64)),
                        ("cached".into(), kosr_service::TagValue::Bool(resp.cached)),
                    ],
                });
                spans.extend(resp.spans);
            }
            shards.push(shard);
            cached_shards += resp.cached as usize;
            streams.push(resp.outcome);
        }
        let merge_started = Instant::now();
        let merge_start_us = elapsed_us(self.submitted);
        let outcome = merge_topk_bounded(streams, self.k, &self.bounds);
        if let Some(ctx) = &self.trace {
            spans.push(Span {
                id: span_id_for(ctx.trace_id, ctx.parent_span, 0),
                parent: Some(ctx.parent_span),
                name: "merge".into(),
                start_us: merge_start_us,
                duration_us: elapsed_us(merge_started),
                tags: vec![(
                    "witnesses".into(),
                    kosr_service::TagValue::U64(outcome.witnesses.len() as u64),
                )],
            });
        }
        Ok(ShardedResponse {
            outcome,
            shards,
            skipped_shards: self.skipped,
            cached_shards,
            latency: self.submitted.elapsed(),
            spans,
        })
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// The deterministic id of shard `j`'s span under `ctx` — child index
/// `j + 1` (index 0 is the merge span), recomputable by submit and wait
/// without shared state.
fn shard_span_id(ctx: &TraceContext, j: usize) -> kosr_service::SpanId {
    span_id_for(ctx.trace_id, ctx.parent_span, j as u64 + 1)
}

impl ShardRouter {
    /// Spawns one in-process [`KosrService`] replica (with `config`) per
    /// shard of `set`, each behind the loopback wire codec.
    pub fn new(set: ShardSet, config: ServiceConfig) -> ShardRouter {
        Self::with_replicas(set, config, 1, |_, _, t| Arc::new(t))
    }

    /// Like [`ShardRouter::new`] but with `replicas` loopback replicas per
    /// shard. `wrap` sees every replica's [`InProcTransport`] before it
    /// joins the fleet — the hook fault-injection harnesses use to
    /// interpose on frames (pass `|_, _, t| Arc::new(t)` for none).
    ///
    /// All replicas of a shard start from one shared `Arc` of its indexed
    /// graph; live updates copy-on-write per replica service.
    pub fn with_replicas(
        set: ShardSet,
        config: ServiceConfig,
        replicas: usize,
        mut wrap: impl FnMut(usize, usize, InProcTransport) -> Arc<dyn ShardTransport>,
    ) -> ShardRouter {
        assert!(replicas >= 1, "each shard needs at least one replica");
        let (shard_graphs, partition, base_categories, partition_stats) = set.into_parts();
        let mut shards = Vec::with_capacity(shard_graphs.len());
        let mut services = Vec::with_capacity(shard_graphs.len());
        for (j, ig) in shard_graphs.into_iter().enumerate() {
            let ig = Arc::new(ig);
            let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::with_capacity(replicas);
            let mut handles = Vec::with_capacity(replicas);
            for r in 0..replicas {
                let svc = Arc::new(KosrService::new(Arc::clone(&ig), config.clone()));
                handles.push(Arc::clone(&svc));
                transports.push(wrap(j, r, InProcTransport::new(svc)));
            }
            shards.push(Arc::new(ReplicaSet::new(transports)));
            services.push(handles);
        }
        Self::assemble(
            shards,
            services,
            partition,
            base_categories,
            partition_stats,
        )
    }

    /// Assembles a router over already-running replicas reached through
    /// arbitrary transports (e.g. [`kosr_transport::TcpTransport`] clients
    /// for replicas behind [`kosr_transport::TcpServer`]s). `transports[j]`
    /// holds shard `j`'s replicas; `partition`, `base_categories` and
    /// `partition_stats` describe the [`ShardSet`] the replicas were built
    /// from.
    pub fn from_transports(
        transports: Vec<Vec<Arc<dyn ShardTransport>>>,
        partition: Partition,
        base_categories: usize,
        partition_stats: PartitionStats,
    ) -> ShardRouter {
        let shards: Vec<Arc<ReplicaSet>> = transports
            .into_iter()
            .map(|ts| Arc::new(ReplicaSet::new(ts)))
            .collect();
        let services = vec![Vec::new(); shards.len()];
        Self::assemble(
            shards,
            services,
            partition,
            base_categories,
            partition_stats,
        )
    }

    fn assemble(
        shards: Vec<Arc<ReplicaSet>>,
        services: Vec<Vec<Arc<KosrService>>>,
        partition: Partition,
        base_categories: usize,
        partition_stats: PartitionStats,
    ) -> ShardRouter {
        let replicas_per_shard: Vec<usize> = shards.iter().map(|s| s.num_replicas()).collect();
        // The fleet journal: every replica set journals its health
        // transitions here, the heartbeat forwards replica-local events
        // into it, and the SLO engine journals alert transitions.
        let events = Arc::new(EventJournal::new(512));
        for (j, set) in shards.iter().enumerate() {
            set.attach_events(Arc::clone(&events), j as u32);
        }
        let slo = Arc::new(SloEngine::new(Arc::clone(&events), SloSpec::default_set()));
        ShardRouter {
            fanout: Arc::new(FanoutCache::new(shards.len())),
            log: Arc::new(UpdateLog::new(&replicas_per_shard)),
            shards,
            services,
            partition: Arc::new(partition),
            base_categories,
            partition_stats,
            events,
            observers: Arc::new(ObserverRegistry::new()),
            slo,
            bound_skips: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The vertex-ownership assignment queries are routed by.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Shard `j`'s replica fleet (health, heartbeats, failover counters).
    pub fn replica_set(&self, j: usize) -> &Arc<ReplicaSet> {
        &self.shards[j]
    }

    /// The fleet event journal: replica health transitions, supervisor
    /// recovery decisions, bus publishes, SLO alert transitions, plus
    /// replica-local events forwarded on heartbeats — what `/v1/events`
    /// serves and `kosr_events_total` counts.
    pub fn events(&self) -> &Arc<EventJournal> {
        &self.events
    }

    /// The SLO burn-rate alert engine, observed once per supervisor tick
    /// — what `/v1/alerts` serves and `kosr_alert_active` exports.
    pub fn slo(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// The in-process service of shard `j`'s replica 0.
    ///
    /// # Panics
    /// Panics when the router was assembled with
    /// [`ShardRouter::from_transports`] — remote replicas have no local
    /// service handle.
    pub fn shard_service(&self, j: usize) -> &KosrService {
        self.replica_service(j, 0)
    }

    /// The in-process service of shard `j`'s replica `r` (see
    /// [`ShardRouter::shard_service`]).
    pub fn replica_service(&self, j: usize, r: usize) -> &KosrService {
        self.services[j]
            .get(r)
            .expect("no local service handles: router was built from remote transports")
    }

    /// The in-process service of shard `j`'s replica 0, or `None` when the
    /// router was assembled from remote transports — the non-panicking
    /// sibling of [`ShardRouter::shard_service`].
    pub fn local_shard_service(&self, j: usize) -> Option<&KosrService> {
        self.services[j].first().map(Arc::as_ref)
    }

    /// The in-process services of all of shard `j`'s replicas (empty when
    /// the router was assembled from remote transports) — what metrics
    /// exporters walk for per-replica stats.
    pub fn local_replica_services(&self, j: usize) -> &[Arc<KosrService>] {
        &self.services[j]
    }

    /// The shadow id of base category `c`.
    pub fn shadow(&self, c: CategoryId) -> CategoryId {
        crate::shadow_of(self.base_categories, c)
    }

    /// A bus that routes live updates to these replica fleets (and keeps
    /// the update log this router's recovery paths replay from).
    pub fn update_bus(&self) -> LiveUpdateBus {
        LiveUpdateBus::new(
            self.shards.clone(),
            Arc::clone(&self.partition),
            self.base_categories,
            Arc::clone(&self.fanout),
            Arc::clone(&self.log),
            Arc::clone(&self.events),
            Arc::clone(&self.observers),
        )
    }

    /// Registers `observer` to see every update published through **any**
    /// bus handle of this router (see [`crate::UpdateObserver`]) — the
    /// hook the continuous-query layer attaches its invalidation filter
    /// to. Observers run on the publishing thread, post-commit, and may
    /// re-enter the router.
    pub fn register_update_observer(&self, observer: Arc<dyn UpdateObserver>) {
        self.observers.register(observer);
    }

    /// A supervisor over this router's replica fleets: heartbeats, drives
    /// recovery (replay or snapshot refresh) for quarantined replicas, and
    /// compacts the update log. Run it on its own clock with
    /// [`crate::FleetSupervisor::start`], or step it deterministically
    /// with [`crate::FleetSupervisor::tick`].
    pub fn supervisor(&self, config: crate::SupervisorConfig) -> crate::FleetSupervisor {
        // The p99 probe feeds the latency SLO from the local replica
        // services' histograms; a router assembled from remote transports
        // has none, and the probe degrades to zero (never breaching).
        let services: Vec<Arc<KosrService>> = self.services.iter().flatten().cloned().collect();
        let probe = move || {
            services
                .iter()
                .map(|s| s.stats().latency_p99)
                .max()
                .unwrap_or(Duration::ZERO)
        };
        crate::FleetSupervisor::new(
            self.shards.clone(),
            self.update_bus(),
            config,
            Arc::clone(&self.events),
            Arc::clone(&self.slo),
            Box::new(probe),
        )
    }

    /// Shard `j`'s current member-count report, via the per-epoch cache.
    fn counts(&self, j: usize) -> Result<Arc<MemberCounts>, ShardError> {
        self.fanout
            .get(j, &self.shards[j])
            .map_err(ShardError::from)
    }

    /// Transport reads fan-out planning has performed (cache misses). The
    /// regression suite asserts this stays at one read per shard per
    /// membership epoch, however many queries are planned.
    pub fn fanout_reads(&self) -> u64 {
        self.fanout.reads()
    }

    /// Planned shards never queried because their category-chain bound
    /// proved they could not produce a witness (see
    /// [`ShardRouter::submit_traced`]).
    pub fn bound_skips(&self) -> u64 {
        self.bound_skips.load(Ordering::Relaxed)
    }

    /// The shards `query` must touch (see the type-level docs). Served
    /// from the epoch-scoped count cache; the transports are only read on
    /// a cache miss.
    pub fn plan_fanout(&self, query: &Query) -> Result<Vec<usize>, ShardError> {
        let Some(&c1) = query.categories.first() else {
            return Ok(vec![self.partition.owner(query.source)]);
        };
        let shadow = self.shadow(c1);
        let mut targets = Vec::new();
        for j in 0..self.shards.len() {
            let mc = self.counts(j)?;
            if mc.counts.get(shadow.index()).copied().unwrap_or(0) > 0 {
                targets.push(j);
            }
        }
        Ok(targets)
    }

    /// Validates `query` against the replicated base category data (read
    /// from the count cache, in the same order an unsharded service's
    /// validation would report), then submits the shadow-rewritten query
    /// to every planned shard.
    pub fn submit(&self, query: Query) -> Result<ShardTicket, ShardError> {
        self.submit_traced(query, None)
    }

    /// [`ShardRouter::submit`] carrying a trace context: each shard's
    /// replica receives a child context parented under that shard's span,
    /// and [`ShardTicket::wait`] returns the assembled span forest on the
    /// response. An unsampled (or absent) context is the plain path.
    pub fn submit_traced(
        &self,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> Result<ShardTicket, ShardError> {
        let ctx = ctx.filter(|c| c.sampled);
        let submitted = Instant::now();
        // Replica graphs know extra internal shadow categories; clients
        // speak base ids only. Reject out-of-base ids *before* anything
        // else (replica-side validation would accept a shadow id),
        // matching what an unsharded service over the base graph does.
        for &c in &query.categories {
            if c.index() >= self.base_categories {
                return Err(ShardError::Service(ServiceError::InvalidQuery(
                    QueryError::UnknownCategory(c),
                )));
            }
        }
        // Base categories are replicated, so shard 0's report validates
        // for the whole fleet. Check order mirrors `Query::validate`.
        let base = self.counts(0)?;
        let invalid = |e: QueryError| ShardError::Service(ServiceError::InvalidQuery(e));
        let n = base.num_vertices as usize;
        if query.source.index() >= n {
            return Err(invalid(QueryError::SourceOutOfRange(query.source)));
        }
        if query.target.index() >= n {
            return Err(invalid(QueryError::TargetOutOfRange(query.target)));
        }
        if query.k == 0 {
            return Err(invalid(QueryError::ZeroK));
        }
        for &c in &query.categories {
            if base.counts.get(c.index()).copied().unwrap_or(0) == 0 {
                return Err(invalid(QueryError::EmptyCategory(c)));
            }
        }
        let targets = self.plan_fanout(&query)?;
        if targets.is_empty() {
            // Validation saw C1 non-empty, but a concurrent bus update
            // emptied it between the cache reads. Serialize the query
            // after the update: the same rejection an unsharded service
            // would give for the post-update world.
            let c1 = query.categories[0];
            return Err(invalid(QueryError::EmptyCategory(c1)));
        }
        let k = query.k;
        // Bound and infeasibility reads below come from replica 0's
        // snapshot, but the stream may be served by a sibling replica.
        // If replica 0 deferred an apply (fault mid-publish, kill) its
        // chain table lags the live world: a stale bound can exceed a
        // stream's true head cost — inadmissible, corrupting the bounded
        // merge — and a stale infeasibility claim can skip a shard that
        // now has answers. Trust replica 0's tables only for shards whose
        // cursor is caught up to the log tail.
        let caught_up: Vec<bool> = {
            let log = self.log.lock();
            let tail = log.tail();
            targets
                .iter()
                .map(|&j| log.cursors[j].first().is_some_and(|&c| c == tail))
                .collect()
        };
        let mut parts = Vec::with_capacity(targets.len());
        let mut bounds = Vec::with_capacity(targets.len());
        let mut skipped = Vec::new();
        for (&j, &fresh) in targets.iter().zip(&caught_up) {
            let mut q = query.clone();
            if let Some(c1) = q.categories.first_mut() {
                *c1 = self.shadow(*c1);
            }
            // In-process shards expose their category-chain tables, so the
            // router can bound shard j's best possible answer before
            // paying for the query: an infinite chain (no s → shadow-C₁ →
            // … → t completion exists through this shard's first stops)
            // skips the shard outright — it could only return an empty
            // stream — and a finite chain rides along as the stream's
            // merge admission bound. The bound is read from the replica's
            // current snapshot; like fan-out planning's count cache, a
            // racing live update serializes the query before it. Remote
            // shards (no local handle) and fleets running with
            // `use_bounds: false` take the unconditional path.
            let mut bound = 0;
            if let Some(svc) = self.local_shard_service(j).filter(|_| fresh) {
                if svc.planner_config().use_bounds {
                    let sb = svc.indexed_graph().seq_bounds(&q);
                    if sb.infeasible() {
                        self.bound_skips.fetch_add(1, Ordering::Relaxed);
                        skipped.push(j);
                        continue;
                    }
                    bound = sb.remaining(0);
                }
            }
            // The replica's spans parent under this shard's span, whose id
            // is derived (not stored): wait() recomputes it.
            let child = ctx.map(|c| TraceContext {
                trace_id: c.trace_id,
                parent_span: shard_span_id(&c, j),
                sampled: true,
            });
            parts.push((j, self.shards[j].query_traced(q, child)));
            bounds.push(bound);
        }
        Ok(ShardTicket {
            parts,
            bounds,
            skipped,
            k,
            submitted,
            trace: ctx,
        })
    }

    /// Submits a whole batch and blocks until every query resolves;
    /// responses come back in input order, rejections reported in-place.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<ShardedResponse, ShardError>> {
        let tickets: Vec<Result<ShardTicket, ShardError>> =
            queries.iter().map(|q| self.submit(q.clone())).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(ShardTicket::wait))
            .collect()
    }

    /// Pulls a snapshot of shard `j` from one of its healthy replicas,
    /// together with an update-log cursor it is consistent with. Install
    /// the blob with [`ShardRouter::install_replica`] and recover through
    /// the bus to bring a cold replica into the fleet.
    ///
    /// The cursor is captured *before* the pull and the log is **not**
    /// held across the (potentially slow, network-bound) transfer, so
    /// publishes proceed concurrently. That is safe because the invariant
    /// runs one way only: a healthy replica has applied at least the
    /// captured prefix, so the blob's state can only be *ahead* of the
    /// cursor — and [`LiveUpdateBus::recover`]'s replay is idempotent
    /// against already-contained updates (set-operation memberships;
    /// `WeightNotDecreased` edge inserts counted as applied), converging
    /// in log order regardless.
    pub fn snapshot_shard(&self, j: usize) -> Result<(usize, SnapshotBlob), ShardError> {
        let cursor = self.log.lock().tail();
        let blob = self.shards[j]
            .call_with_failover(|t| t.snapshot())
            .map_err(ShardError::from)?;
        Ok((cursor, blob))
    }

    /// Installs `transport` as shard `j`'s replica `r` — a freshly started
    /// replica whose state reflects the first `applied_through` log
    /// entries (from [`ShardRouter::snapshot_shard`]). The slot stays
    /// `Down` until [`LiveUpdateBus::recover`] replays the missing suffix
    /// and marks it healthy.
    pub fn install_replica(
        &self,
        j: usize,
        r: usize,
        transport: Arc<dyn ShardTransport>,
        applied_through: usize,
    ) {
        let mut inner = self.log.lock();
        self.shards[j].install(r, transport);
        inner.cursors[j][r] = applied_through;
    }

    /// Per-shard service health snapshots (replica 0 of each shard; see
    /// [`ShardRouter::shard_service`] for the in-process requirement).
    pub fn per_shard_stats(&self) -> Vec<ServiceStats> {
        (0..self.num_shards())
            .map(|j| self.shard_service(j).stats())
            .collect()
    }

    /// Partition quality against the base graph, captured at build time
    /// (replica graphs carry shadow memberships and would double-count).
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.partition_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::QueryError;

    fn router_with(shards: usize, replicas: usize) -> (ShardRouter, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: shards,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        (
            ShardRouter::with_replicas(
                set,
                ServiceConfig {
                    workers: 2,
                    ..Default::default()
                },
                replicas,
                |_, _, t| Arc::new(t),
            ),
            fx,
        )
    }

    fn router(shards: usize) -> (ShardRouter, kosr_core::figure1::Figure1) {
        router_with(shards, 1)
    }

    #[test]
    fn figure1_answers_survive_sharding() {
        for shards in [1, 2, 3, 4] {
            let (router, fx) = router(shards);
            let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
            let resp = router.submit(q).unwrap().wait().unwrap();
            assert_eq!(resp.outcome.costs(), vec![20, 21, 22], "{shards} shards");
            assert!(!resp.shards.is_empty());
            assert!(resp.shards.len() <= shards);
        }
    }

    #[test]
    fn figure1_answers_survive_replication() {
        let (router, fx) = router_with(2, 3);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = router.submit(q).unwrap().wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        for j in 0..router.num_shards() {
            assert_eq!(router.replica_set(j).num_replicas(), 3);
        }
    }

    #[test]
    fn fanout_skips_shards_without_first_category_members() {
        let (router, fx) = router(3);
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 2);
        let fanout = router.plan_fanout(&q).unwrap();
        // MA has two members; at most two shards can own one.
        assert!(!fanout.is_empty() && fanout.len() <= 2, "{fanout:?}");
        for &j in &fanout {
            let svc = router.shard_service(j);
            assert!(
                svc.indexed_graph()
                    .inverted
                    .members_of(router.shadow(fx.ma))
                    > 0
            );
        }
    }

    #[test]
    fn empty_category_queries_route_to_source_owner_only() {
        let (router, fx) = router(3);
        let q = Query::new(fx.s, fx.t, vec![], 2);
        assert_eq!(
            router.plan_fanout(&q).unwrap(),
            vec![router.partition().owner(fx.s)]
        );
        let resp = router.submit(q).unwrap().wait().unwrap();
        // The only witness is ⟨s, t⟩.
        assert_eq!(resp.outcome.witnesses.len(), 1);
        assert_eq!(resp.shards.len(), 1);
    }

    #[test]
    fn invalid_queries_rejected_before_fanout() {
        let (router, fx) = router(2);
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![fx.ma], 0)),
            Err(ShardError::Service(ServiceError::InvalidQuery(
                QueryError::ZeroK
            )))
        ));
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![CategoryId(40)], 1)),
            Err(ShardError::Service(ServiceError::InvalidQuery(
                QueryError::UnknownCategory(_)
            )))
        ));
        // Shadow ids are internal: a client naming one is rejected exactly
        // like any unknown category, even though replica graphs know it.
        assert!(matches!(
            router.submit(Query::new(fx.s, fx.t, vec![router.shadow(fx.ma)], 1)),
            Err(ShardError::Service(ServiceError::InvalidQuery(
                QueryError::UnknownCategory(_)
            )))
        ));
        let stats = router.per_shard_stats();
        assert!(stats.iter().all(|s| s.submitted == 0));
    }

    #[test]
    fn batch_matches_singles_and_caches_warm_per_shard() {
        let (router, fx) = router(2);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let queries = vec![q.clone(), q.clone(), q];
        let out = router.run_batch(&queries);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        let last = out[2].as_ref().unwrap();
        assert_eq!(first.outcome.witnesses, last.outcome.witnesses);
        // Repeats are served from the replica caches.
        assert_eq!(last.cached_shards, last.shards.len());
    }

    #[test]
    fn fanout_planning_reads_counts_once_per_membership_epoch() {
        let (router, fx) = router(3);
        assert_eq!(router.fanout_reads(), 0);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 2);
        for _ in 0..10 {
            router.submit(q.clone()).unwrap().wait().unwrap();
        }
        // One report per shard, however many queries were planned.
        let shards = router.num_shards() as u64;
        assert_eq!(router.fanout_reads(), shards, "reads must be cached");

        // A membership update invalidates: exactly one more read per shard.
        let bus = router.update_bus();
        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        bus.publish(&kosr_service::Update::RemoveMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        for _ in 0..5 {
            router.submit(q.clone()).unwrap().wait().unwrap();
        }
        assert_eq!(router.fanout_reads(), 2 * shards);

        // Edge updates leave member counts untouched: no re-read.
        let mall = fx.graph.categories().vertices_of(fx.ma)[0];
        bus.publish(&kosr_service::Update::InsertEdge {
            from: fx.s,
            to: mall,
            weight: 1,
        })
        .unwrap();
        router.submit(q).unwrap().wait().unwrap();
        assert_eq!(
            router.fanout_reads(),
            2 * shards,
            "edge updates keep the cache"
        );
    }

    #[test]
    fn traced_submissions_return_a_complete_span_forest() {
        let (router, fx) = router(3);
        let trace_id = kosr_service::TraceId(0x1234);
        let ctx = TraceContext::root(trace_id, true);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = router
            .submit_traced(q.clone(), Some(ctx))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);

        let shard_spans: Vec<&Span> = resp.spans.iter().filter(|s| s.name == "shard").collect();
        assert_eq!(shard_spans.len(), resp.shards.len());
        for s in &shard_spans {
            assert_eq!(s.parent, Some(ctx.parent_span));
        }
        assert!(resp.spans.iter().any(|s| s.name == "merge"));
        // Every replica root hangs under its shard span.
        let replica_roots: Vec<&Span> = resp.spans.iter().filter(|s| s.name == "replica").collect();
        assert_eq!(replica_roots.len(), resp.shards.len());
        for root in replica_roots {
            assert!(
                shard_spans.iter().any(|s| Some(s.id) == root.parent),
                "orphan replica root: {root:?}"
            );
        }
        // Execute spans carry the paper's pruning counters.
        assert!(resp
            .spans
            .iter()
            .filter(|s| s.name == "execute")
            .all(|s| s.tag_value("pne_expansions").is_some()));

        // Untraced (or unsampled) submissions carry no spans at all.
        let plain = router.submit(q.clone()).unwrap().wait().unwrap();
        assert!(plain.spans.is_empty());
        let unsampled = TraceContext::root(trace_id, false);
        let resp = router
            .submit_traced(q, Some(unsampled))
            .unwrap()
            .wait()
            .unwrap();
        assert!(resp.spans.is_empty());
    }

    /// Two directed components: `0 → 1 → 2` (shard 0) and `3 → 4 → 5`
    /// (shard 1). `C1 = {1, 4}`, `C2 = {2}` — shard 1's slice of C1 can
    /// never complete a sequence ending at 2.
    fn split_world_router(config: ServiceConfig) -> (ShardRouter, CategoryId, CategoryId) {
        use kosr_graph::{GraphBuilder, VertexId};
        let mut b = GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1), 5);
        b.add_edge(VertexId(1), VertexId(2), 7);
        b.add_edge(VertexId(3), VertexId(4), 1);
        b.add_edge(VertexId(4), VertexId(5), 1);
        let c1 = b.categories_mut().add_category("C1");
        let c2 = b.categories_mut().add_category("C2");
        b.categories_mut().insert(VertexId(1), c1);
        b.categories_mut().insert(VertexId(4), c1);
        b.categories_mut().insert(VertexId(2), c2);
        let ig = IndexedGraph::build_default(b.build());
        let partition = kosr_graph::Partition::from_owner(vec![0, 0, 0, 1, 1, 1], 2);
        let set = ShardSet::build(&ig, partition);
        let router = ShardRouter::with_replicas(set, config, 1, |_, _, t| Arc::new(t));
        (router, c1, c2)
    }

    #[test]
    fn chain_bound_skips_shards_that_cannot_complete_the_sequence() {
        use kosr_graph::VertexId;
        let (router, c1, c2) = split_world_router(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let q = Query::new(VertexId(0), VertexId(2), vec![c1, c2], 3);
        // Both shards own a C1 member, so planning targets both…
        assert_eq!(router.plan_fanout(&q).unwrap(), vec![0, 1]);
        let resp = router.submit(q).unwrap().wait().unwrap();
        // …but shard 1's chain bound is infinite (its first stops live in
        // the other component), so only shard 0 is actually queried.
        assert_eq!(resp.shards, vec![0]);
        assert_eq!(resp.skipped_shards, vec![1]);
        assert_eq!(router.bound_skips(), 1);
        assert_eq!(resp.outcome.costs(), vec![12]);
    }

    #[test]
    fn all_shards_skipped_yields_the_empty_outcome() {
        use kosr_graph::VertexId;
        let (router, c1, c2) = split_world_router(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        // C2 before C1: from 2 no C1 member is reachable, so every
        // planned shard's chain is infinite and nothing is queried — the
        // same empty answer an unsharded run gives, without any fan-out.
        let q = Query::new(VertexId(0), VertexId(2), vec![c2, c1], 2);
        let resp = router.submit(q.clone()).unwrap().wait().unwrap();
        assert!(resp.outcome.witnesses.is_empty());
        assert!(resp.shards.is_empty());
        assert!(!resp.skipped_shards.is_empty());
        let unsharded = router.shard_service(0).indexed_graph();
        assert!(unsharded
            .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
            .costs()
            .is_empty());
    }

    #[test]
    fn bound_skip_gate_honors_the_use_bounds_toggle() {
        use kosr_graph::VertexId;
        let (router, c1, c2) = split_world_router(ServiceConfig {
            workers: 1,
            planner: kosr_service::PlannerConfig {
                use_bounds: false,
                ..Default::default()
            },
            ..Default::default()
        });
        let q = Query::new(VertexId(0), VertexId(2), vec![c1, c2], 3);
        let resp = router.submit(q).unwrap().wait().unwrap();
        // The escape hatch disables the gate: both shards are queried and
        // the answer is unchanged.
        assert_eq!(resp.shards, vec![0, 1]);
        assert!(resp.skipped_shards.is_empty());
        assert_eq!(router.bound_skips(), 0);
        assert_eq!(resp.outcome.costs(), vec![12]);
    }

    #[test]
    fn queries_survive_replica_kills_via_failover() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            2,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            router
                .submit(q.clone())
                .unwrap()
                .wait()
                .unwrap()
                .outcome
                .costs(),
            vec![20, 21, 22]
        );
        // Kill replica 0 of every shard: failover hides it.
        for s in switches.iter().step_by(2) {
            s.kill();
        }
        let resp = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(router.replica_set(0).failovers() + router.replica_set(1).failovers() > 0);
        // Kill everything: typed transport failure.
        for s in &switches {
            s.kill();
        }
        let err = router.submit(q).unwrap().wait().unwrap_err();
        assert!(matches!(err, ShardError::Transport(_)), "{err:?}");
    }
}
