//! The live update bus, transport-native: routes §IV-C dynamic updates to
//! every replica of every shard that owns them, records the publish order
//! in an update log, and brings replicas that missed updates (faults,
//! kills, cold snapshot joins) back through **replay recovery**.
//!
//! ## Consistency model
//!
//! `publish` is **eventually consistent across replicas, immediately
//! consistent per replica**, exactly as before — but replicas now live
//! behind transports that can fail. The invariant that keeps merged
//! answers exact is:
//!
//! > a replica serves queries **iff** it has applied the full update log.
//!
//! A replica whose apply faults is marked `Down` on the spot (its log
//! cursor stays behind) and the fleet fails over around it. It returns to
//! service only through [`LiveUpdateBus::recover`], which replays the
//! missed log suffix through its transport and then marks it healthy. A
//! cold replica joins the same way: snapshot (+ the log cursor the blob is
//! consistent with, from `ShardRouter::snapshot_shard`) → install → replay
//! → healthy. Replay is idempotent: membership updates are set operations,
//! and an edge insert that a snapshot already contains answers
//! `WeightNotDecreased`, which replay treats as already-applied.

use std::sync::Arc;

use kosr_graph::{CategoryId, Partition, VertexId};
use kosr_service::{EventJournal, EventKind, Source, TagValue, Update, UpdateError, UpdateReceipt};
use kosr_transport::{ReplicaSet, ShardTransport, TransportError};

use crate::error::ShardError;
use crate::observe::ObserverRegistry;
use crate::state::{FanoutCache, UpdateLog};

/// Fans dynamic updates out to the shard replica fleets.
///
/// Routing rules (derived from what each replica materialises):
///
/// * **membership updates** — the *base* category is replicated on every
///   replica of every shard, so the base mutation goes fleet-wide; the
///   *shadow* category is owned by exactly the vertex's owner shard, whose
///   replicas additionally apply the shadow-scoped mutation.
/// * **edge updates** — the routing skeleton is replicated, so structural
///   updates go fleet-wide and flush every replica's cache.
///
/// Updates are validated before anything mutates; a rejected update
/// touches no replica and is not logged.
pub struct LiveUpdateBus {
    shards: Vec<Arc<ReplicaSet>>,
    partition: Arc<Partition>,
    base_categories: usize,
    fanout: Arc<FanoutCache>,
    log: Arc<UpdateLog>,
    events: Arc<EventJournal>,
    observers: Arc<ObserverRegistry>,
}

/// What publishing one update did across the fleet.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BusReceipt {
    /// The fleet **publish epoch** that contains this update: the update
    /// log tail after the publish. Every replica whose log cursor reaches
    /// `epoch` serves answers that include the update. Distinct from
    /// per-replica *index* epochs (owner-shard replicas bump those twice
    /// per membership update, for the shadow companion).
    pub epoch: u64,
    /// `false` when the update was a validated no-op everywhere.
    pub applied: bool,
    /// The owner shard whose replicas additionally applied the
    /// shadow-scoped mutation (membership updates only).
    pub owner_shard: Option<usize>,
    /// Replica applications that changed state.
    pub replicas_touched: usize,
    /// Cached answers dropped across all replicas.
    pub invalidated: usize,
    /// 2-hop label entries added across all replicas (edge updates).
    pub label_entries_added: usize,
    /// Replicas that missed the update (down, or faulted mid-publish):
    /// marked `Down` with their log cursor behind, pending
    /// [`LiveUpdateBus::recover`].
    pub deferred_replicas: usize,
}

impl LiveUpdateBus {
    pub(crate) fn new(
        shards: Vec<Arc<ReplicaSet>>,
        partition: Arc<Partition>,
        base_categories: usize,
        fanout: Arc<FanoutCache>,
        log: Arc<UpdateLog>,
        events: Arc<EventJournal>,
        observers: Arc<ObserverRegistry>,
    ) -> LiveUpdateBus {
        LiveUpdateBus {
            shards,
            partition,
            base_categories,
            fanout,
            log,
            events,
            observers,
        }
    }

    fn shadow(&self, c: CategoryId) -> CategoryId {
        crate::shadow_of(self.base_categories, c)
    }

    /// The owner-shard shadow companion of a membership update, if any.
    fn shadow_update(&self, update: &Update) -> Option<(usize, Update)> {
        match *update {
            Update::InsertMembership { vertex, category } => Some((
                self.partition.owner(vertex),
                Update::InsertMembership {
                    vertex,
                    category: self.shadow(category),
                },
            )),
            Update::RemoveMembership { vertex, category } => Some((
                self.partition.owner(vertex),
                Update::RemoveMembership {
                    vertex,
                    category: self.shadow(category),
                },
            )),
            Update::InsertEdge { .. } => None,
        }
    }

    /// Applies `update` (and, on the owner shard, its shadow companion) to
    /// replica `r` of shard `j`. `Ok(receipts)` only when every required
    /// application went through.
    fn apply_to_replica(
        &self,
        j: usize,
        transport: &dyn ShardTransport,
        update: &Update,
        shadow: &Option<(usize, Update)>,
    ) -> Result<Vec<UpdateReceipt>, TransportError> {
        let mut receipts = vec![transport.apply_update(update)?];
        if let Some((owner, shadow_update)) = shadow {
            if *owner == j {
                receipts.push(transport.apply_update(shadow_update)?);
            }
        }
        Ok(receipts)
    }

    /// Validates `update` against the shared base state, logs it, then
    /// applies it to every healthy replica of every shard. Replicas that
    /// fault mid-publish are marked down with their cursor behind — the
    /// receipt reports them as deferred — and recover by replay.
    pub fn publish(&self, update: &Update) -> Result<BusReceipt, ShardError> {
        // Validate once, against base-category bounds: replicas know more
        // categories (the shadows), but bus clients speak base ids.
        let probe = self.fanout.get(0, &self.shards[0])?;
        let n = probe.num_vertices as usize;
        let check_vertex = |v: VertexId| {
            (v.index() < n)
                .then_some(())
                .ok_or(ShardError::Update(UpdateError::VertexOutOfRange(v)))
        };
        match *update {
            Update::InsertMembership { vertex, category }
            | Update::RemoveMembership { vertex, category } => {
                check_vertex(vertex)?;
                if category.index() >= self.base_categories {
                    return Err(ShardError::Update(UpdateError::UnknownCategory(category)));
                }
            }
            Update::InsertEdge { from, to, .. } => {
                check_vertex(from)?;
                check_vertex(to)?;
            }
        }

        let shadow = self.shadow_update(update);
        let mut receipt = BusReceipt::default();
        let mut log = self.log.lock();
        let seq = log.push(*update);
        receipt.epoch = seq as u64;
        let mut applied_any = false;
        for (j, set) in self.shards.iter().enumerate() {
            let healthy = set.healthy_indices();
            for r in 0..set.num_replicas() {
                if !healthy.contains(&r) {
                    receipt.deferred_replicas += 1;
                    continue; // cursor stays behind; recovery will replay
                }
                match self.apply_to_replica(j, set.transport(r).as_ref(), update, &shadow) {
                    Ok(receipts) => {
                        for rec in receipts {
                            receipt.merge(&rec);
                        }
                        // The shadow-scoped mutation is receipts[1], present
                        // exactly on owner-shard replicas: only a delivered
                        // shadow application may claim the owner slot.
                        if shadow.as_ref().is_some_and(|&(owner, _)| owner == j) {
                            receipt.owner_shard = Some(j);
                        }
                        applied_any = true;
                        log.cursors[j][r] = seq;
                    }
                    Err(e) if e.is_fault() => {
                        set.note_down(r, EventKind::ReplicaDown, None);
                        receipt.deferred_replicas += 1;
                    }
                    Err(TransportError::Update(e)) => {
                        if !applied_any {
                            // Deterministic rejection on the first replica:
                            // every consistent replica would repeat it, so
                            // nothing mutated anywhere — unlog and refuse.
                            log.pop_newest();
                            return Err(ShardError::Update(e));
                        }
                        // A rejection after some replica accepted means
                        // this replica diverged: quarantine it for replay.
                        set.note_down(r, EventKind::ReplicaQuarantined, None);
                        receipt.deferred_replicas += 1;
                    }
                    Err(e) => return Err(ShardError::from(e)),
                }
            }
        }
        // Membership counts may have changed: fan-out planning must
        // re-read. Deferred replicas count too — the update is logged and
        // *will* apply at replay, so a cache kept warm on the strength of
        // "nothing applied yet" would go stale the moment recovery runs.
        // (Edge updates leave counts intact — the cache survives them.)
        if update.touched_category().is_some() && (receipt.applied || receipt.deferred_replicas > 0)
        {
            self.fanout.invalidate_all();
        }
        // owner_shard reports the *routing* decision even for no-ops only
        // when something applied — mirror the pre-transport semantics.
        if !receipt.applied {
            receipt.owner_shard = None;
        }
        // Release the log before the journal and the observers: an
        // observer may re-enter the bus/router (recompute a standing
        // query, read cursor state) and would deadlock on `self.log`.
        drop(log);
        self.events.emit(
            Source::Service,
            EventKind::UpdatePublished,
            None,
            vec![
                ("seq".to_string(), TagValue::U64(seq as u64)),
                ("applied".to_string(), TagValue::Bool(receipt.applied)),
                (
                    "deferred".to_string(),
                    TagValue::U64(receipt.deferred_replicas as u64),
                ),
            ],
        );
        self.observers.notify(update, &receipt);
        Ok(receipt)
    }

    /// Replays the log suffix replica `r` of shard `j` missed, then marks
    /// it healthy. Returns the number of log entries replayed.
    ///
    /// A cursor that predates the compacted log head cannot be replayed:
    /// the typed [`ShardError::CursorTooOld`] tells the caller (the
    /// supervisor) to take the [`LiveUpdateBus::refresh`] path instead.
    ///
    /// Safe against double application: membership updates are set
    /// operations, and an [`Update::InsertEdge`] the replica's state
    /// already contains answers `WeightNotDecreased`, which replay counts
    /// as already applied (snapshots can be ahead of the installed
    /// cursor).
    pub fn recover(&self, j: usize, r: usize) -> Result<usize, ShardError> {
        let set = &self.shards[j];
        let mut log = self.log.lock();
        let start = log.cursors[j][r];
        if start < log.head() {
            return Err(ShardError::CursorTooOld {
                cursor: start,
                head: log.head(),
            });
        }
        let mut replayed = 0;
        for seq in start..log.tail() {
            let update = log.get(seq).expect("cursor ≥ head ⇒ suffix is live");
            let shadow = self.shadow_update(&update);
            match self.apply_to_replica(j, set.transport(r).as_ref(), &update, &shadow) {
                Ok(_) => {}
                Err(TransportError::Update(UpdateError::Graph(
                    kosr_core::GraphUpdateError::WeightNotDecreased { .. },
                ))) => {} // already in the snapshot the replica joined from
                Err(e) if e.is_fault() => {
                    set.note_down(r, EventKind::ReplicaDown, None);
                    log.cursors[j][r] = start + replayed;
                    return Err(ShardError::from(e));
                }
                Err(e) => return Err(ShardError::from(e)),
            }
            replayed += 1;
        }
        log.cursors[j][r] = log.tail();
        set.mark_healthy(r);
        // Replayed membership updates change member counts after the
        // publish-time invalidation already happened: drop the fan-out
        // cache again so planning re-reads the converged fleet.
        if log
            .suffix(start)
            .iter()
            .any(|u| u.touched_category().is_some())
        {
            self.fanout.invalidate_all();
        }
        Ok(replayed)
    }

    /// Refreshes replica `r` of shard `j` **by snapshot**: pulls a blob
    /// from a healthy sibling, pushes it into the replica over its
    /// transport (`InstallSnapshot`), rebases the replica's cursor to the
    /// log tail captured *before* the pull, then replays whatever was
    /// published during the transfer. This is how a replica whose missed
    /// suffix was compacted away (or is longer than the supervisor's
    /// replay limit) returns to service without an unbounded replay.
    ///
    /// The cursor-before-pull capture is safe for the same one-way reason
    /// as `ShardRouter::snapshot_shard`: the blob can only be *ahead* of
    /// the captured cursor, and replay is idempotent against
    /// already-contained updates.
    pub fn refresh(&self, j: usize, r: usize) -> Result<usize, ShardError> {
        let set = &self.shards[j];
        let cursor = self.log.lock().tail();
        let blob = match set.call_with_failover(|t| t.snapshot()) {
            Ok(blob) => blob,
            Err(e) => {
                // No healthy sibling to pull a snapshot from. That is
                // exactly the case where compaction pinned the log at this
                // shard's own minimum cursor — so if the replica's suffix
                // is still live, fall back to plain replay (however long)
                // rather than wedging on an impossible refresh.
                let (cursor, head) = {
                    let log = self.log.lock();
                    (log.cursors[j][r], log.head())
                };
                if cursor >= head {
                    return self.recover(j, r);
                }
                return Err(ShardError::from(e));
            }
        };
        set.transport(r)
            .install_snapshot(&blob)
            .map_err(ShardError::from)?;
        self.log.lock().cursors[j][r] = cursor;
        self.recover(j, r)
    }

    /// Recovers every `Down` replica of every shard (see
    /// [`LiveUpdateBus::recover`]); returns `(shard, replica)` pairs that
    /// still could not be reached. Replicas whose cursor was compacted
    /// away are refreshed by snapshot.
    pub fn recover_all(&self) -> Vec<(usize, usize)> {
        let mut unreachable = Vec::new();
        for (j, set) in self.shards.iter().enumerate() {
            for r in 0..set.num_replicas() {
                if set.healthy_indices().contains(&r) {
                    continue;
                }
                let result = match self.recover(j, r) {
                    Err(ShardError::CursorTooOld { .. }) => self.refresh(j, r),
                    other => other,
                };
                if result.is_err() {
                    unreachable.push((j, r));
                }
            }
        }
        unreachable
    }

    /// Compacts the log so its live portion shrinks back toward
    /// `watermark`, without ever dropping an entry some replica may still
    /// need *and can still be given*:
    ///
    /// * per shard, the floor is the minimum cursor of its **healthy**
    ///   replicas — a down replica with a healthy sibling can always be
    ///   snapshot-refreshed from that sibling, so its stale cursor may be
    ///   stranded;
    /// * a shard with **no** healthy replica pins the log at its own
    ///   minimum cursor: compacting past it would leave nothing to replay
    ///   *and* no sibling to pull a snapshot from.
    ///
    /// When the live log already fits the fleet-wide minimum cursor, that
    /// tighter bound is used so short-downed replicas keep their cheap
    /// replay path. Returns the number of entries dropped.
    pub fn compact(&self, watermark: usize) -> usize {
        let mut log = self.log.lock();
        if log.live_len() <= watermark {
            return 0;
        }
        let mut min_all = log.tail();
        let mut target = log.tail();
        for (j, set) in self.shards.iter().enumerate() {
            let healthy = set.healthy_indices();
            let shard_floor = (0..set.num_replicas())
                .filter(|r| healthy.contains(r) || healthy.is_empty())
                .map(|r| log.cursors[j][r])
                .min()
                .unwrap_or_else(|| log.tail());
            target = target.min(shard_floor);
            if let Some(m) = log.cursors[j].iter().min() {
                min_all = min_all.min(*m);
            }
        }
        // Prefer the gentle bound when it already satisfies the watermark.
        if log.tail() - min_all <= watermark {
            target = min_all;
        }
        log.compact_to(target)
    }

    /// `(cursor, head, tail)` of replica `r` of shard `j` — what the
    /// supervisor reads to choose between replay and snapshot refresh.
    pub fn cursor_state(&self, j: usize, r: usize) -> (usize, usize, usize) {
        let log = self.log.lock();
        (log.cursors[j][r], log.head(), log.tail())
    }

    /// Published updates so far (the absolute log tail; monotone across
    /// compactions).
    pub fn log_len(&self) -> usize {
        self.log.lock().tail()
    }

    /// The oldest absolute sequence still replayable.
    pub fn log_head(&self) -> usize {
        self.log.lock().head()
    }

    /// Entries currently held live (bounded by the supervisor's
    /// compaction watermark plus the in-flight window).
    pub fn log_live_len(&self) -> usize {
        self.log.lock().live_len()
    }
}

impl BusReceipt {
    fn merge(&mut self, r: &UpdateReceipt) {
        if r.applied {
            self.applied = true;
            self.replicas_touched += 1;
        }
        self.invalidated += r.invalidated;
        self.label_entries_added += r.label_entries_added;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardRouter, ShardSet};
    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Query};
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::ServiceConfig;
    use kosr_transport::ReplicaHealth;

    fn setup() -> (ShardRouter, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 3,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        (
            ShardRouter::new(
                set,
                ServiceConfig {
                    workers: 1,
                    ..Default::default()
                },
            ),
            fx,
        )
    }

    #[test]
    fn membership_update_reaches_owner_shadow_and_all_base_replicas() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        // Warm every replica cache.
        let before = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(before.outcome.costs(), vec![20, 21, 22]);

        // Close the best route's restaurant (witness slot 2).
        let gone = before.outcome.witnesses[0].vertices[2];
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        let owner = receipt.owner_shard.expect("membership update has an owner");
        assert_eq!(owner, router.partition().owner(gone));
        // Base applied on every replica + shadow on the owner.
        assert_eq!(receipt.replicas_touched, router.num_shards() + 1);
        assert!(receipt.invalidated > 0, "warm caches must be swept");
        assert_eq!(receipt.deferred_replicas, 0);
        assert_eq!(bus.log_len(), 1);
        assert_eq!(receipt.epoch, 1, "publish epoch = log tail after publish");

        // Every replica's base category and the owner's shadow shrank.
        for j in 0..router.num_shards() {
            let ig = router.shard_service(j).indexed_graph();
            assert!(!ig.graph.categories().has_category(gone, fx.re));
            let shadow_members = ig.inverted.members_of(router.shadow(fx.re));
            let expected = router
                .partition()
                .members_owned(ig.graph.categories(), fx.re, j)
                .len();
            assert_eq!(shadow_members, expected, "shard {j} shadow in sync");
        }

        // Post-update answers match a fresh unsharded build of the world.
        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        let after = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );
        assert_ne!(after.outcome.witnesses, before.outcome.witnesses);

        // Duplicate removal: a validated no-op fleet-wide.
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(!receipt.applied);
        assert_eq!(receipt.replicas_touched, 0);
        assert_eq!(receipt.owner_shard, None);
        assert_eq!(receipt.epoch, 2, "no-ops still advance the publish epoch");
    }

    #[test]
    fn edge_update_broadcasts_and_reroutes() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let _ = router.submit(q.clone()).unwrap().wait().unwrap();

        let mall = fx.graph.categories().vertices_of(fx.ma)[0];
        let receipt = bus
            .publish(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 1,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(receipt.owner_shard, None);
        assert_eq!(receipt.replicas_touched, router.num_shards());
        assert!(receipt.label_entries_added > 0);

        let mut b2 = fx.graph.to_builder();
        b2.add_edge(fx.s, mall, 1);
        let fresh = IndexedGraph::build_default(b2.build());
        let after = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );

        // Weight increases reject before mutating any replica (and leave
        // no log entry behind).
        let log_before = bus.log_len();
        assert!(bus
            .publish(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 99,
            })
            .is_err());
        assert_eq!(bus.log_len(), log_before);
    }

    #[test]
    fn bus_validates_before_touching_replicas() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        assert_eq!(
            bus.publish(&Update::InsertMembership {
                vertex: VertexId(123),
                category: fx.re,
            }),
            Err(ShardError::Update(UpdateError::VertexOutOfRange(VertexId(
                123
            ))))
        );
        // A *base-range* check: shadow ids are internal and rejected.
        assert_eq!(
            bus.publish(&Update::InsertMembership {
                vertex: fx.s,
                category: router.shadow(fx.re),
            }),
            Err(ShardError::Update(UpdateError::UnknownCategory(
                router.shadow(fx.re)
            )))
        );
        assert_eq!(bus.log_len(), 0);
        for j in 0..router.num_shards() {
            assert_eq!(router.shard_service(j).index_epoch(), 0, "untouched");
        }
    }

    #[test]
    fn fanout_cache_reflects_updates_that_only_applied_at_replay() {
        // The publish applies on *zero* replicas (whole fleet down), so
        // only replay recovery ever lands it — the fan-out cache must not
        // keep serving the pre-update member counts afterwards.
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 3,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            1,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        let bus = router.update_bus();
        // Warm the fan-out cache.
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        router.submit(q.clone()).unwrap().wait().unwrap();

        // A (vertex, category) pair whose owner shard currently owns no
        // member of that category: the insert must *add* a shard to the
        // category's fan-out.
        let (v, c) = fx
            .graph
            .vertices()
            .find_map(|v| {
                let owner = router.partition().owner(v);
                [fx.ma, fx.re, fx.ci].into_iter().find_map(|c| {
                    let cats = fx.graph.categories();
                    (!cats.has_category(v, c)
                        && router.partition().members_owned(cats, c, owner).is_empty())
                    .then_some((v, c))
                })
            })
            .expect("figure1 over 3 shards has a shard owning no member of some category");
        let owner = router.partition().owner(v);

        // Cut the whole fleet, so the publish defers everywhere.
        for s in &switches {
            s.kill();
        }
        for j in 0..router.num_shards() {
            router.replica_set(j).mark_down(0);
        }
        let receipt = bus
            .publish(&Update::InsertMembership {
                vertex: v,
                category: c,
            })
            .unwrap();
        assert!(!receipt.applied, "nothing reachable applied it");
        assert_eq!(receipt.deferred_replicas, router.num_shards());

        for s in &switches {
            s.revive();
        }
        assert!(bus.recover_all().is_empty());

        // Planning must now see the replayed membership: the owner shard
        // joined the category's fan-out…
        let plan = router
            .plan_fanout(&Query::new(fx.s, fx.t, vec![c], 1))
            .unwrap();
        assert!(
            plan.contains(&owner),
            "stale fan-out cache dropped shard {owner}: {plan:?}"
        );
        // …and answers match a fresh unsharded build of the world.
        let mut g2 = fx.graph.clone();
        g2.categories_mut().insert(v, c);
        let fresh = IndexedGraph::build_default(g2);
        let q2 = Query::new(fx.s, fx.t, vec![c], 2);
        let resp = router.submit(q2.clone()).unwrap().wait().unwrap();
        assert_eq!(
            resp.outcome.witnesses,
            fresh
                .run_canonical(&q2, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );
    }

    #[test]
    fn downed_replicas_miss_updates_and_recover_by_replay() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            2,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        let bus = router.update_bus();

        // Cut shard 0's replica 1, then publish: the update defers there.
        switches[1].kill();
        router.replica_set(0).mark_down(1);
        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(receipt.deferred_replicas, 1);
        // The cut replica's service never saw the update.
        assert_eq!(router.replica_service(0, 1).index_epoch(), 0);

        // Restore the channel and replay: the replica converges and
        // returns to service.
        switches[1].revive();
        let replayed = bus.recover(0, 1).unwrap();
        assert_eq!(replayed, 1);
        assert!(router.replica_service(0, 1).index_epoch() > 0);
        assert!(!router
            .replica_service(0, 1)
            .indexed_graph()
            .graph
            .categories()
            .has_category(gone, fx.re));
        assert_eq!(
            router.replica_set(0).health(),
            vec![ReplicaHealth::Healthy, ReplicaHealth::Healthy]
        );
        assert!(bus.recover_all().is_empty());
    }
}
