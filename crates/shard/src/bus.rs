//! The live update bus: routes §IV-C dynamic updates to the shard
//! replicas that own them, driving each replica's index mutation and
//! cache-invalidation hooks through `KosrService::apply_update`.

use std::sync::Arc;

use kosr_graph::{CategoryId, Partition};
use kosr_service::{KosrService, Update, UpdateError, UpdateReceipt};

/// Fans dynamic updates out to the shard replicas.
///
/// Routing rules (derived from what each replica materialises):
///
/// * **membership updates** — the *base* category is replicated on every
///   shard (later stops of a route may use any member), so the base
///   mutation broadcasts; the *shadow* category is owned by exactly the
///   vertex's owner shard, which additionally applies the shadow-scoped
///   mutation. Both applications invalidate the corresponding cached
///   answers on their replica.
/// * **edge updates** — the routing skeleton is replicated, so structural
///   updates broadcast and flush every replica's cache.
///
/// Updates are validated once up front (against shard 0, all replicas
/// share base state), so a rejected update mutates no replica.
///
/// ## Consistency model
///
/// `publish` is **eventually consistent across replicas, immediately
/// consistent per replica**: each replica's `apply_update` is atomic
/// (index swap + epoch bump + invalidation), but the fleet is walked
/// replica by replica — and a membership update touches the owner twice
/// (base, then shadow). A query fanned out *during* the publish window
/// can therefore merge answers from replicas on either side of the
/// update. Once `publish` returns, every replica has converged and the
/// bit-identical-to-unsharded guarantee holds again (the cross-shard
/// property test exercises exactly this quiescent equivalence). Making
/// the window atomic fleet-wide is a two-phase commit over the shard
/// transport — the ROADMAP's cross-box follow-up.
pub struct LiveUpdateBus {
    services: Vec<Arc<KosrService>>,
    partition: Arc<Partition>,
    base_categories: usize,
}

/// What publishing one update did across the fleet.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BusReceipt {
    /// `false` when the update was a validated no-op everywhere.
    pub applied: bool,
    /// The owner shard that additionally applied the shadow-scoped
    /// mutation (membership updates only).
    pub owner_shard: Option<usize>,
    /// Replicas the update was applied to.
    pub replicas_touched: usize,
    /// Cached answers dropped across all replicas.
    pub invalidated: usize,
    /// 2-hop label entries added across all replicas (edge updates).
    pub label_entries_added: usize,
}

impl LiveUpdateBus {
    pub(crate) fn new(
        services: Vec<Arc<KosrService>>,
        partition: Arc<Partition>,
        base_categories: usize,
    ) -> LiveUpdateBus {
        LiveUpdateBus {
            services,
            partition,
            base_categories,
        }
    }

    fn shadow(&self, c: CategoryId) -> CategoryId {
        crate::shadow_of(self.base_categories, c)
    }

    /// Validates `update` against the shared base state, then applies it
    /// to every replica that materialises the touched data. Returns the
    /// aggregate receipt.
    pub fn publish(&self, update: &Update) -> Result<BusReceipt, UpdateError> {
        // Validate once, against base-category bounds: replicas know more
        // categories (the shadows), but bus clients speak base ids.
        let probe = self.services[0].indexed_graph();
        let n = probe.graph.num_vertices();
        let check_vertex = |v: kosr_graph::VertexId| {
            (v.index() < n)
                .then_some(())
                .ok_or(UpdateError::VertexOutOfRange(v))
        };
        let mut receipt = BusReceipt::default();
        match *update {
            Update::InsertMembership { vertex, category }
            | Update::RemoveMembership { vertex, category } => {
                check_vertex(vertex)?;
                if category.index() >= self.base_categories {
                    return Err(UpdateError::UnknownCategory(category));
                }
                let owner = self.partition.owner(vertex);
                let shadow_update = match update {
                    Update::InsertMembership { .. } => Update::InsertMembership {
                        vertex,
                        category: self.shadow(category),
                    },
                    _ => Update::RemoveMembership {
                        vertex,
                        category: self.shadow(category),
                    },
                };
                for (j, svc) in self.services.iter().enumerate() {
                    let base = svc.apply_update(update)?;
                    receipt.merge(&base);
                    if j == owner {
                        let shadowed = svc.apply_update(&shadow_update)?;
                        receipt.merge(&shadowed);
                        receipt.owner_shard = Some(owner);
                    }
                }
            }
            Update::InsertEdge { from, to, .. } => {
                check_vertex(from)?;
                check_vertex(to)?;
                for svc in &self.services {
                    // All replicas share structural state: the first
                    // rejection (weight increase, self-loop) happens on
                    // replica 0, before anything mutated.
                    let r = svc.apply_update(update)?;
                    receipt.merge(&r);
                }
            }
        }
        Ok(receipt)
    }
}

impl BusReceipt {
    fn merge(&mut self, r: &UpdateReceipt) {
        if r.applied {
            self.applied = true;
            self.replicas_touched += 1;
        }
        self.invalidated += r.invalidated;
        self.label_entries_added += r.label_entries_added;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardRouter, ShardSet};
    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Query};
    use kosr_graph::{PartitionConfig, Partitioner, VertexId};
    use kosr_service::ServiceConfig;

    fn setup() -> (ShardRouter, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 3,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        (
            ShardRouter::new(
                set,
                ServiceConfig {
                    workers: 1,
                    ..Default::default()
                },
            ),
            fx,
        )
    }

    #[test]
    fn membership_update_reaches_owner_shadow_and_all_base_replicas() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        // Warm every replica cache.
        let before = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(before.outcome.costs(), vec![20, 21, 22]);

        // Close the best route's restaurant (witness slot 2).
        let gone = before.outcome.witnesses[0].vertices[2];
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        let owner = receipt.owner_shard.expect("membership update has an owner");
        assert_eq!(owner, router.partition().owner(gone));
        // Base applied on every replica + shadow on the owner.
        assert_eq!(receipt.replicas_touched, router.num_shards() + 1);
        assert!(receipt.invalidated > 0, "warm caches must be swept");

        // Every replica's base category and the owner's shadow shrank.
        for j in 0..router.num_shards() {
            let ig = router.shard_service(j).indexed_graph();
            assert!(!ig.graph.categories().has_category(gone, fx.re));
            let shadow_members = ig.inverted.members_of(router.shadow(fx.re));
            let expected = router
                .partition()
                .members_owned(ig.graph.categories(), fx.re, j)
                .len();
            assert_eq!(shadow_members, expected, "shard {j} shadow in sync");
        }

        // Post-update answers match a fresh unsharded build of the world.
        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        let after = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );
        assert_ne!(after.outcome.witnesses, before.outcome.witnesses);

        // Duplicate removal: a validated no-op fleet-wide.
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(!receipt.applied);
        assert_eq!(receipt.replicas_touched, 0);
    }

    #[test]
    fn edge_update_broadcasts_and_reroutes() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let _ = router.submit(q.clone()).unwrap().wait().unwrap();

        let mall = fx.graph.categories().vertices_of(fx.ma)[0];
        let receipt = bus
            .publish(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 1,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(receipt.owner_shard, None);
        assert_eq!(receipt.replicas_touched, router.num_shards());
        assert!(receipt.label_entries_added > 0);

        let mut b2 = fx.graph.to_builder();
        b2.add_edge(fx.s, mall, 1);
        let fresh = IndexedGraph::build_default(b2.build());
        let after = router.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(
            after.outcome.witnesses,
            fresh
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );

        // Weight increases reject before mutating any replica.
        assert!(bus
            .publish(&Update::InsertEdge {
                from: fx.s,
                to: mall,
                weight: 99,
            })
            .is_err());
    }

    #[test]
    fn bus_validates_before_touching_replicas() {
        let (router, fx) = setup();
        let bus = router.update_bus();
        assert_eq!(
            bus.publish(&Update::InsertMembership {
                vertex: VertexId(123),
                category: fx.re,
            }),
            Err(UpdateError::VertexOutOfRange(VertexId(123)))
        );
        // A *base-range* check: shadow ids are internal and rejected.
        assert_eq!(
            bus.publish(&Update::InsertMembership {
                vertex: fx.s,
                category: router.shadow(fx.re),
            }),
            Err(UpdateError::UnknownCategory(router.shadow(fx.re)))
        );
        for j in 0..router.num_shards() {
            assert_eq!(router.shard_service(j).index_epoch(), 0, "untouched");
        }
    }
}
