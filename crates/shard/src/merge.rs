//! Cross-shard top-k merging under the canonical tie-break.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_core::KosrOutcome;
use kosr_graph::{VertexId, Weight};

/// Merges per-shard canonical top-k streams into the global canonical
/// top-k with a **bounded heap**: the heap never holds more than one
/// cursor per stream, so merging `S` shards costs `O((S + k) log S)`
/// regardless of stream lengths.
///
/// Correctness rests on two invariants the shard layer maintains:
///
/// * each stream is canonically ordered (nondecreasing cost, lexicographic
///   tie-break — `Witness::canonical_cmp`), and
/// * streams enumerate **disjoint** route subspaces (first-stop ownership),
///   so no witness appears twice.
///
/// Under those, the first `k` pops are exactly the canonical top-k of the
/// union — bit-identical to an unsharded canonical run.
///
/// Per-query instrumentation is aggregated: additive counters sum across
/// shards, `heap_peak` takes the max, per-level counts add element-wise,
/// and `time.total` takes the max (shards run in parallel; the merged
/// total reports the critical path).
pub fn merge_topk(streams: Vec<KosrOutcome>, k: usize) -> KosrOutcome {
    let bounds = vec![0; streams.len()];
    merge_topk_bounded(streams, k, &bounds)
}

/// [`merge_topk`] with an **admissible per-stream cost lower bound**:
/// `bounds[i]` must not exceed the cost of any witness in `streams[i]`
/// (the router derives it from the shard's category-chain table; `0` is
/// always sound). Streams are admitted to the cursor heap lazily — stream
/// `i` only materializes a cursor once `bounds[i]` is ≤ the cost at the
/// front of the heap (`≤`, not `<`: an equal-cost witness can still win
/// the canonical lexicographic tie-break). A stream whose bound stays
/// above the k-th answer never has its head cloned at all, and once `k`
/// witnesses are out the merge stops without touching the rest.
///
/// With admissible bounds the output is **bit-identical** to
/// [`merge_topk`]: a stream held back by its bound cannot, by
/// admissibility, contain the next canonical pop.
pub fn merge_topk_bounded(streams: Vec<KosrOutcome>, k: usize, bounds: &[Weight]) -> KosrOutcome {
    assert_eq!(
        streams.len(),
        bounds.len(),
        "one lower bound per stream required"
    );
    // Cursor heap keyed by the canonical order; the stream index breaks
    // (impossible, but cheap) exact key collisions deterministically.
    type Key = (Weight, Vec<VertexId>, usize, usize);
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(streams.len());
    // Admission order: tightest bound first.
    let mut order: Vec<usize> = (0..streams.len()).collect();
    order.sort_by_key(|&i| bounds[i]);
    let mut next = 0;

    let mut witnesses = Vec::with_capacity(k.min(64));
    while witnesses.len() < k {
        while next < order.len()
            && heap
                .peek()
                .is_none_or(|Reverse((front, ..))| bounds[order[next]] <= *front)
        {
            let si = order[next];
            next += 1;
            if let Some(w) = streams[si].witnesses.first() {
                heap.push(Reverse((w.cost, w.vertices.clone(), si, 0)));
            }
        }
        let Some(Reverse((_, _, si, pos))) = heap.pop() else {
            break;
        };
        witnesses.push(streams[si].witnesses[pos].clone());
        if let Some(w) = streams[si].witnesses.get(pos + 1) {
            heap.push(Reverse((w.cost, w.vertices.clone(), si, pos + 1)));
        }
    }

    let mut stats = kosr_core::QueryStats::default();
    for s in &streams {
        stats.examined_routes += s.stats.examined_routes;
        stats.nn_queries += s.stats.nn_queries;
        stats.dominated_routes += s.stats.dominated_routes;
        stats.reconsidered_routes += s.stats.reconsidered_routes;
        stats.bound_pruned += s.stats.bound_pruned;
        stats.heap_peak = stats.heap_peak.max(s.stats.heap_peak);
        stats.truncated |= s.stats.truncated;
        if stats.examined_per_level.len() < s.stats.examined_per_level.len() {
            stats
                .examined_per_level
                .resize(s.stats.examined_per_level.len(), 0);
        }
        for (acc, &x) in stats
            .examined_per_level
            .iter_mut()
            .zip(&s.stats.examined_per_level)
        {
            *acc += x;
        }
        stats.time.total = stats.time.total.max(s.stats.time.total);
        stats.time.nn += s.stats.time.nn;
        stats.time.queue += s.stats.time.queue;
        stats.time.estimation += s.stats.time.estimation;
    }
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::Witness;

    fn w(cost: Weight, tail: u32) -> Witness {
        Witness {
            vertices: vec![VertexId(0), VertexId(tail), VertexId(9)],
            cost,
        }
    }

    fn stream(ws: Vec<Witness>) -> KosrOutcome {
        KosrOutcome {
            witnesses: ws,
            stats: Default::default(),
        }
    }

    #[test]
    fn merges_by_cost_then_lexicographic() {
        let a = stream(vec![w(5, 3), w(7, 1)]);
        let b = stream(vec![w(5, 2), w(6, 8)]);
        let out = merge_topk(vec![a, b], 3);
        assert_eq!(out.costs(), vec![5, 5, 6]);
        // Cost-5 tie: vertex tuple [0,2,9] sorts before [0,3,9].
        assert_eq!(out.witnesses[0].vertices[1], VertexId(2));
        assert_eq!(out.witnesses[1].vertices[1], VertexId(3));
    }

    #[test]
    fn equals_sorted_union_on_many_streams() {
        let streams: Vec<KosrOutcome> = (0..5)
            .map(|s| {
                stream(
                    (0..4)
                        .map(|i| w((i * 7 + s * 3) % 13, (s * 10 + i) as u32))
                        .collect(),
                )
            })
            .collect();
        // Canonicalise each stream first (the shard invariant).
        let streams: Vec<KosrOutcome> = streams
            .into_iter()
            .map(|mut s| {
                s.witnesses.sort_by(|x, y| x.canonical_cmp(y));
                s
            })
            .collect();
        let mut union: Vec<Witness> = streams
            .iter()
            .flat_map(|s| s.witnesses.iter().cloned())
            .collect();
        union.sort_by(|x, y| x.canonical_cmp(y));
        for k in [1, 3, 8, 20, 50] {
            let merged = merge_topk(streams.clone(), k);
            assert_eq!(merged.witnesses[..], union[..k.min(union.len())]);
        }
    }

    #[test]
    fn bounded_merge_matches_unbounded_under_admissible_bounds() {
        let streams: Vec<KosrOutcome> = (0..5)
            .map(|s| {
                let mut ws: Vec<Witness> = (0..4)
                    .map(|i| w((i * 7 + s * 3) % 13 + s, (s * 10 + i) as u32))
                    .collect();
                ws.sort_by(|x, y| x.canonical_cmp(y));
                stream(ws)
            })
            .collect();
        // The tightest admissible bound: each stream's own head cost.
        let bounds: Vec<Weight> = streams
            .iter()
            .map(|s| s.witnesses.first().map_or(0, |w| w.cost))
            .collect();
        for k in [1, 2, 5, 20] {
            let base = merge_topk(streams.clone(), k);
            let opt = merge_topk_bounded(streams.clone(), k, &bounds);
            assert_eq!(base.witnesses, opt.witnesses, "k={k}");
        }
    }

    #[test]
    fn streams_held_above_the_kth_cost_are_never_admitted() {
        let a = stream(vec![w(1, 1), w(2, 2)]);
        let b = stream(vec![w(3, 3)]);
        // A deliberately mis-ordered stream: admitting it would corrupt
        // the merge (its head costs more than its tail), so a correct
        // output proves its bound kept it out entirely.
        let mut poisoned = stream(vec![w(90, 9), w(50, 8)]);
        poisoned.stats.examined_routes = 11;
        let out = merge_topk_bounded(vec![a, b, poisoned], 3, &[0, 0, 40]);
        assert_eq!(out.costs(), vec![1, 2, 3]);
        // Never-admitted streams still aggregate into the merged stats.
        assert_eq!(out.stats.examined_routes, 11);
    }

    #[test]
    fn bounds_admit_on_ties_so_lexicographic_order_survives() {
        let a = stream(vec![w(5, 7)]);
        let b = stream(vec![w(5, 2)]);
        // b's bound equals a's head cost: it must still be admitted before
        // the pop, or the canonical tie-break would be violated.
        let out = merge_topk_bounded(vec![a, b], 2, &[0, 5]);
        assert_eq!(out.witnesses[0].vertices[1], VertexId(2));
        assert_eq!(out.witnesses[1].vertices[1], VertexId(7));
    }

    #[test]
    fn aggregates_stats_and_handles_empty_streams() {
        let mut a = stream(vec![w(1, 1)]);
        a.stats.examined_routes = 10;
        a.stats.heap_peak = 7;
        a.stats.bound_pruned = 3;
        let mut b = stream(vec![]);
        b.stats.examined_routes = 4;
        b.stats.heap_peak = 9;
        b.stats.truncated = true;
        b.stats.bound_pruned = 2;
        let out = merge_topk(vec![a, b], 5);
        assert_eq!(out.costs(), vec![1]);
        assert_eq!(out.stats.examined_routes, 14);
        assert_eq!(out.stats.bound_pruned, 5);
        assert_eq!(out.stats.heap_peak, 9);
        assert!(out.stats.truncated);
        assert!(merge_topk(vec![], 3).witnesses.is_empty());
    }
}
