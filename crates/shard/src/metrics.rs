//! [`MetricsSource`] implementations for the shard layer: the router's
//! per-shard replica health/failover gauges (from the transport layer's
//! [`ReplicaSetSnapshot`]s) and the supervisor's recovery/compaction
//! counters — so one registry walk renders the whole fleet, no ad-hoc
//! snapshot structs at the edge.

use kosr_service::{MetricsRegistry, MetricsSource};
use kosr_transport::ReplicaSetSnapshot;

use crate::router::ShardRouter;
use crate::supervisor::{FleetSupervisor, SupervisorHandle, SupervisorReport};

fn export_shard(registry: &mut MetricsRegistry, shard: &str, snap: &ReplicaSetSnapshot) {
    let labels = [("shard", shard)];
    registry.gauge(
        "kosr_shard_replicas",
        "Replicas configured per shard",
        &labels,
        snap.total() as f64,
    );
    registry.gauge(
        "kosr_shard_replicas_healthy",
        "Replicas currently eligible to serve, per shard",
        &labels,
        snap.healthy as f64,
    );
    registry.counter(
        "kosr_shard_failovers_total",
        "Query-time failovers absorbed, per shard",
        &labels,
        snap.failovers as f64,
    );
}

impl MetricsSource for ShardRouter {
    fn export(&self, registry: &mut MetricsRegistry) {
        for j in 0..self.num_shards() {
            let shard = j.to_string();
            export_shard(registry, &shard, &self.replica_set(j).health_snapshot());
            // In-process deployments also surface every replica's service
            // stats; routers over remote transports have no local handles
            // and skip this (the replicas export their own).
            for (r, svc) in self.local_replica_services(j).iter().enumerate() {
                let replica = r.to_string();
                svc.stats().export_labeled(
                    registry,
                    &[("shard", shard.as_str()), ("replica", replica.as_str())],
                );
            }
        }
        registry.counter(
            "kosr_router_fanout_reads_total",
            "Member-count reads performed by fan-out planning (cache misses)",
            &[],
            self.fanout_reads() as f64,
        );
        registry.counter(
            "kosr_router_bound_skips_total",
            "Planned shards skipped because their category-chain bound proved them empty",
            &[],
            self.bound_skips() as f64,
        );
    }
}

fn export_supervisor(registry: &mut MetricsRegistry, report: &SupervisorReport, healthy: bool) {
    export_report(registry, report);
    registry.gauge(
        "kosr_fleet_healthy",
        "1 when every replica of every shard is serving, else 0",
        &[],
        healthy as u8 as f64,
    );
}

fn export_report(registry: &mut MetricsRegistry, report: &SupervisorReport) {
    for (name, help, value) in [
        (
            "kosr_supervisor_ticks_total",
            "Supervision passes executed",
            report.ticks,
        ),
        (
            "kosr_supervisor_replays_total",
            "Replicas restored by replaying a short log suffix",
            report.replays,
        ),
        (
            "kosr_supervisor_snapshot_refreshes_total",
            "Replicas restored by snapshot refresh",
            report.snapshot_refreshes,
        ),
        (
            "kosr_supervisor_cursor_too_old_total",
            "Recoveries forced onto the refresh path by a compacted cursor",
            report.cursor_too_old,
        ),
        (
            "kosr_supervisor_compactions_total",
            "Ticks that compacted the update log",
            report.compactions,
        ),
        (
            "kosr_supervisor_entries_compacted_total",
            "Update-log entries dropped by compaction",
            report.entries_compacted,
        ),
        (
            "kosr_supervisor_recovery_failures_total",
            "Recovery attempts that failed and will retry next tick",
            report.recovery_failures,
        ),
    ] {
        registry.counter(name, help, &[], value as f64);
    }
}

impl MetricsSource for FleetSupervisor {
    fn export(&self, registry: &mut MetricsRegistry) {
        export_supervisor(registry, &self.report(), self.all_healthy());
    }
}

impl MetricsSource for SupervisorHandle {
    fn export(&self, registry: &mut MetricsRegistry) {
        export_supervisor(registry, &self.report(), self.all_healthy());
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Query};
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::{validate_prometheus_text, MetricsRegistry, ServiceConfig};

    use crate::{ShardRouter, ShardSet, SupervisorConfig};

    #[test]
    fn router_and_supervisor_export_one_valid_exposition() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            2,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        let sup = router.supervisor(SupervisorConfig::default());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        router.submit(q.clone()).unwrap().wait().unwrap();

        let mut reg = MetricsRegistry::new();
        reg.collect(&router);
        reg.collect(&sup);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_shard_replicas_healthy{shard=\"0\"} 2"));
        assert!(text.contains("kosr_shard_replicas_healthy{shard=\"1\"} 2"));
        assert!(text.contains("kosr_service_completed_total{shard=\"0\",replica=\"0\"}"));
        assert!(
            text.contains("kosr_service_completed_total{shard=\"0\",replica=\"1\"}"),
            "every local replica exports its stats"
        );
        assert!(text.contains("kosr_supervisor_ticks_total 0"));
        assert!(text.contains("kosr_router_bound_skips_total"));
        assert!(text.contains("kosr_fleet_healthy 1"));

        // Kill a replica: the next export shows the degraded fleet and the
        // absorbed failover.
        switches[0].kill();
        router.submit(q).unwrap().wait().unwrap();
        sup.tick();
        let mut reg = MetricsRegistry::new();
        reg.collect(&router);
        reg.collect(&sup);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_shard_replicas_healthy{shard=\"0\"} 1"));
        assert!(text.contains("kosr_shard_failovers_total{shard=\"0\"} 1"));
        assert!(text.contains("kosr_fleet_healthy 0"));
        assert!(text.contains("kosr_supervisor_ticks_total 1"));
    }
}
