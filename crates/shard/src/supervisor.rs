//! The fleet supervisor: the background loop that turns the recovery
//! machinery from a test-harness chore into a property of the running
//! system. Each **tick** it
//!
//! 1. **heartbeats** every replica fleet (a faulting healthy replica is
//!    quarantined on the spot);
//! 2. **recovers** every `Down` replica that is reachable again —
//!    replaying the missed update-log suffix when the gap is short, or
//!    refreshing by snapshot (`snapshot → InstallSnapshot → replay the
//!    transfer window`) when the gap exceeds the replay limit or the
//!    suffix was compacted away (typed [`ShardError::CursorTooOld`]);
//! 3. **compacts** the update log below the minimum replayable cursor
//!    once its live portion exceeds the watermark, then broadcasts the
//!    new head to healthy replicas (`Compact` frames), so the log stays
//!    bounded however long the system runs.
//!
//! The tick is a plain synchronous function: the property suites step it
//! deterministically (no timers in the loop body), and
//! [`FleetSupervisor::start`] runs the same tick on a wall-clock interval
//! for production deployments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use kosr_service::{EventJournal, EventKind, SloEngine, Source, TagValue};
use kosr_transport::ReplicaSet;

use crate::bus::LiveUpdateBus;
use crate::error::ShardError;

/// Measures the fleet's current p99 query latency for the SLO engine's
/// latency objective (zero when the router has no local replica services
/// to read histograms from).
type LatencyProbe = Box<dyn Fn() -> Duration + Send + Sync>;

/// Supervisor tunables.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Wall-clock pause between ticks in [`FleetSupervisor::start`] mode.
    pub tick_every: Duration,
    /// Live-log length above which a tick compacts. The bound the soak
    /// suite proves: live length never exceeds `compact_watermark` plus
    /// the updates published since the last tick (the in-flight window).
    pub compact_watermark: usize,
    /// Largest missed suffix recovered by replay; longer gaps (and
    /// compacted-away cursors) take the snapshot-refresh path instead, so
    /// a long-downed replica never triggers an unbounded replay.
    pub replay_limit: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            tick_every: Duration::from_millis(100),
            compact_watermark: 1024,
            replay_limit: 256,
        }
    }
}

/// Monotone counters describing what the supervisor has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Ticks executed.
    pub ticks: u64,
    /// Replicas restored by replaying a short log suffix.
    pub replays: u64,
    /// Replicas restored by snapshot refresh.
    pub snapshot_refreshes: u64,
    /// Recoveries that took the refresh path because the replica's cursor
    /// predated the compacted head (the typed `CursorTooOld` signal).
    pub cursor_too_old: u64,
    /// Ticks that compacted the log.
    pub compactions: u64,
    /// Log entries dropped by compaction in total.
    pub entries_compacted: u64,
    /// Recovery attempts that failed (replica still unreachable or no
    /// healthy snapshot source); retried next tick.
    pub recovery_failures: u64,
}

#[derive(Default)]
struct Counters {
    ticks: AtomicU64,
    replays: AtomicU64,
    snapshot_refreshes: AtomicU64,
    cursor_too_old: AtomicU64,
    compactions: AtomicU64,
    entries_compacted: AtomicU64,
    recovery_failures: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> SupervisorReport {
        SupervisorReport {
            ticks: self.ticks.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            snapshot_refreshes: self.snapshot_refreshes.load(Ordering::Relaxed),
            cursor_too_old: self.cursor_too_old.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            entries_compacted: self.entries_compacted.load(Ordering::Relaxed),
            recovery_failures: self.recovery_failures.load(Ordering::Relaxed),
        }
    }
}

fn fleet_healthy(shards: &[Arc<ReplicaSet>]) -> bool {
    shards
        .iter()
        .all(|set| set.healthy_indices().len() == set.num_replicas())
}

/// The self-healing loop over a router's replica fleets.
pub struct FleetSupervisor {
    shards: Vec<Arc<ReplicaSet>>,
    bus: LiveUpdateBus,
    config: SupervisorConfig,
    counters: Arc<Counters>,
    events: Arc<EventJournal>,
    slo: Arc<SloEngine>,
    latency_probe: LatencyProbe,
}

impl FleetSupervisor {
    pub(crate) fn new(
        shards: Vec<Arc<ReplicaSet>>,
        bus: LiveUpdateBus,
        config: SupervisorConfig,
        events: Arc<EventJournal>,
        slo: Arc<SloEngine>,
        latency_probe: LatencyProbe,
    ) -> FleetSupervisor {
        FleetSupervisor {
            shards,
            bus,
            config,
            counters: Arc::new(Counters::default()),
            events,
            slo,
            latency_probe,
        }
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// A snapshot of the supervisor's counters.
    pub fn report(&self) -> SupervisorReport {
        self.counters.snapshot()
    }

    /// `true` when every replica of every shard is serving.
    pub fn all_healthy(&self) -> bool {
        fleet_healthy(&self.shards)
    }

    /// One supervision pass: heartbeat → recover → compact → broadcast.
    /// Synchronous and idempotent — the deterministic suites step it like
    /// a clock; [`FleetSupervisor::start`] calls it on a timer.
    ///
    /// The heartbeat/recovery pass runs **per shard in parallel**, and
    /// recovery reuses the heartbeat's ping instead of pinging again — so
    /// one wedged replica costs a tick at most one request deadline, and
    /// only for its own shard's lane.
    pub fn tick(&self) {
        self.counters.ticks.fetch_add(1, Ordering::Relaxed);
        std::thread::scope(|scope| {
            for (j, set) in self.shards.iter().enumerate() {
                let counters = &self.counters;
                let bus = &self.bus;
                let config = &self.config;
                let events = &self.events;
                scope.spawn(move || {
                    // Journals one recovery decision, citing the event
                    // that quarantined the replica as its trigger. Every
                    // emission sits next to exactly one counter increment,
                    // so the report and the journal reconcile 1:1.
                    let journal_recovery = |r: usize, kind: EventKind| {
                        let mut tags = vec![
                            ("shard".to_string(), TagValue::U64(j as u64)),
                            ("replica".to_string(), TagValue::U64(r as u64)),
                        ];
                        if let Some(trigger) = set.last_down_seq(r) {
                            tags.push(("trigger".to_string(), TagValue::U64(trigger)));
                        }
                        events.emit(Source::Supervisor, kind, None, tags);
                    };
                    // 1. Heartbeats quarantine faulting replicas (and
                    // surface a dead one before a query has to pay the
                    // failover latency). The per-replica results double
                    // as this tick's reachability probe.
                    let beats = set.heartbeat();
                    // 2. Recovery: every quarantined-but-reachable
                    // replica is driven back to a serving state.
                    for (r, beat) in beats.iter().enumerate() {
                        if set.healthy_indices().contains(&r) {
                            continue;
                        }
                        // Unreachable this tick; the next one retries.
                        if beat.is_err() {
                            continue;
                        }
                        let (cursor, head, tail) = bus.cursor_state(j, r);
                        let gap = tail.saturating_sub(cursor);
                        if cursor < head {
                            counters.cursor_too_old.fetch_add(1, Ordering::Relaxed);
                            journal_recovery(r, EventKind::CursorTooOld);
                        }
                        let want_refresh = cursor < head || gap > config.replay_limit;
                        let result = if want_refresh {
                            bus.refresh(j, r)
                        } else {
                            match bus.recover(j, r) {
                                // The head can race past the cursor
                                // between the read above and the replay:
                                // fall through to the refresh path, same
                                // as if we had seen it.
                                Err(ShardError::CursorTooOld { .. }) => {
                                    counters.cursor_too_old.fetch_add(1, Ordering::Relaxed);
                                    journal_recovery(r, EventKind::CursorTooOld);
                                    bus.refresh(j, r)
                                }
                                other => other,
                            }
                        };
                        match result {
                            Ok(_) if want_refresh => {
                                counters.snapshot_refreshes.fetch_add(1, Ordering::Relaxed);
                                journal_recovery(r, EventKind::SnapshotRefreshed);
                            }
                            Ok(_) => {
                                counters.replays.fetch_add(1, Ordering::Relaxed);
                                journal_recovery(r, EventKind::ReplayRecovered);
                            }
                            Err(_) => {
                                counters.recovery_failures.fetch_add(1, Ordering::Relaxed);
                                journal_recovery(r, EventKind::RecoveryFailed);
                            }
                        }
                    }
                });
            }
        });
        // 3. Compaction keeps the log bounded; the new head is broadcast
        // so replicas can refuse replays from controllers staler than the
        // log itself.
        let dropped = self.bus.compact(self.config.compact_watermark);
        if dropped > 0 {
            self.counters.compactions.fetch_add(1, Ordering::Relaxed);
            self.counters
                .entries_compacted
                .fetch_add(dropped as u64, Ordering::Relaxed);
            let head = self.bus.log_head() as u64;
            self.events.emit(
                Source::Supervisor,
                EventKind::LogCompacted,
                None,
                vec![
                    ("dropped".to_string(), TagValue::U64(dropped as u64)),
                    ("head".to_string(), TagValue::U64(head)),
                ],
            );
            for set in &self.shards {
                for r in set.healthy_indices() {
                    // A faulting notice is harmless — the next heartbeat
                    // quarantines the replica and recovery re-syncs it.
                    let _ = set.transport(r).compact(head);
                }
            }
        }
        // 4. One SLO observation per tick: the post-recovery healthy
        // fraction (a replica the tick just restored counts as serving)
        // and the probed fleet p99.
        let (healthy, total) = self.shards.iter().fold((0usize, 0usize), |(h, t), set| {
            (h + set.healthy_indices().len(), t + set.num_replicas())
        });
        let availability = if total == 0 {
            1.0
        } else {
            healthy as f64 / total as f64
        };
        self.slo.observe(availability, (self.latency_probe)());
    }

    /// Moves the supervisor onto its own thread, ticking every
    /// [`SupervisorConfig::tick_every`] until the handle is dropped (or
    /// [`SupervisorHandle::stop`] is called). The handle keeps counter and
    /// health visibility while the loop runs.
    pub fn start(self) -> SupervisorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::clone(&self.counters);
        let flag = Arc::clone(&stop);
        let every = self.config.tick_every;
        let shards = self.shards.clone();
        let handle = thread::Builder::new()
            .name("kosr-supervisor".into())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    self.tick();
                    // Sleep in short slices so stop() is prompt even with
                    // a long tick interval.
                    let mut remaining = every;
                    while !remaining.is_zero() && !flag.load(Ordering::Acquire) {
                        let nap = remaining.min(Duration::from_millis(10));
                        thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn supervisor loop");
        SupervisorHandle {
            stop,
            counters,
            shards,
            handle: Some(handle),
        }
    }
}

/// A running supervisor loop (see [`FleetSupervisor::start`]). Dropping
/// the handle stops the loop.
pub struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    shards: Vec<Arc<ReplicaSet>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Counter snapshot of the running loop.
    pub fn report(&self) -> SupervisorReport {
        self.counters.snapshot()
    }

    /// `true` when every replica of every shard is serving.
    pub fn all_healthy(&self) -> bool {
        fleet_healthy(&self.shards)
    }

    /// Blocks (polling) until the fleet is fully healthy or `timeout`
    /// passes; returns whether health was reached. What examples and
    /// integration tests use instead of hand-driving recovery.
    pub fn await_healthy(&self, timeout: Duration) -> bool {
        let started = std::time::Instant::now();
        while started.elapsed() < timeout {
            if self.all_healthy() {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        self.all_healthy()
    }

    /// Stops the loop and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardRouter, ShardSet};
    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Query};
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::{ServiceConfig, Update};
    use kosr_transport::KillSwitch;

    fn fleet(
        shards: usize,
        replicas: usize,
    ) -> (ShardRouter, Vec<KillSwitch>, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: shards,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            replicas,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        (router, switches, fx)
    }

    fn removals(fx: &kosr_core::figure1::Figure1, n: usize) -> Vec<Update> {
        // Alternate remove/insert of the same membership: n distinct
        // publishes that always validate (never a no-op rejection race).
        let v = fx.graph.categories().vertices_of(fx.re)[0];
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Update::RemoveMembership {
                        vertex: v,
                        category: fx.re,
                    }
                } else {
                    Update::InsertMembership {
                        vertex: v,
                        category: fx.re,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn tick_restores_a_killed_replica_by_replay() {
        let (router, switches, fx) = fleet(2, 2);
        let bus = router.update_bus();
        let sup = router.supervisor(SupervisorConfig::default());

        // Kill shard 0 replica 1's channel; the next tick quarantines it
        // via heartbeat, no manual mark_down needed.
        switches[1].kill();
        sup.tick();
        assert!(!sup.all_healthy());
        for u in removals(&fx, 3) {
            bus.publish(&u).unwrap();
        }
        assert_eq!(router.replica_service(0, 1).index_epoch(), 0);

        // Channel restored: one tick replays the short gap and reinstates.
        switches[1].revive();
        sup.tick();
        assert!(sup.all_healthy());
        let report = sup.report();
        assert!(report.replays >= 1, "{report:?}");
        assert_eq!(report.snapshot_refreshes, 0);
        assert!(router.replica_service(0, 1).index_epoch() > 0);
        let (cursor, _, tail) = bus.cursor_state(0, 1);
        assert_eq!(cursor, tail);
    }

    #[test]
    fn tick_refreshes_long_gaps_by_snapshot_not_replay() {
        let (router, switches, fx) = fleet(2, 2);
        let bus = router.update_bus();
        let sup = router.supervisor(SupervisorConfig {
            replay_limit: 2,
            ..Default::default()
        });
        switches[1].kill();
        sup.tick();
        for u in removals(&fx, 6) {
            bus.publish(&u).unwrap();
        }
        switches[1].revive();
        sup.tick();
        assert!(sup.all_healthy());
        let report = sup.report();
        assert!(report.snapshot_refreshes >= 1, "{report:?}");
        // The refreshed replica answers like everyone else.
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = router.submit(q).unwrap().wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
    }

    #[test]
    fn compaction_bounds_the_log_and_strands_long_downed_cursors() {
        let (router, switches, fx) = fleet(2, 2);
        let bus = router.update_bus();
        let sup = router.supervisor(SupervisorConfig {
            compact_watermark: 4,
            replay_limit: 100, // isolate the CursorTooOld path
            ..Default::default()
        });
        switches[1].kill();
        sup.tick();
        for u in removals(&fx, 12) {
            bus.publish(&u).unwrap();
        }
        assert_eq!(bus.log_live_len(), 12);
        sup.tick();
        // Healthy cursors sit at the tail, so compaction trims to it —
        // stranding the downed replica's cursor below the head.
        assert!(bus.log_live_len() <= 4, "live {}", bus.log_live_len());
        let report = sup.report();
        assert!(report.compactions >= 1, "{report:?}");
        let (cursor, head, _) = bus.cursor_state(0, 1);
        assert!(cursor < head, "cursor {cursor} vs head {head}");
        // Healthy replicas heard the broadcast head.
        assert_eq!(router.replica_service(0, 0).log_head(), head as u64);

        // Revival goes through the typed CursorTooOld → snapshot refresh.
        switches[1].revive();
        sup.tick();
        assert!(sup.all_healthy());
        let report = sup.report();
        assert!(report.cursor_too_old >= 1, "{report:?}");
        assert!(report.snapshot_refreshes >= 1, "{report:?}");
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            router.submit(q).unwrap().wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn a_fully_down_shard_pins_the_log() {
        let (router, switches, fx) = fleet(2, 1);
        let bus = router.update_bus();
        let sup = router.supervisor(SupervisorConfig {
            compact_watermark: 2,
            ..Default::default()
        });
        // Shard 1's only replica is down: no healthy sibling to refresh
        // from, so its cursor must pin the log however big it grows.
        // (Shard 0 stays healthy — the bus validates publishes against
        // shard 0's replicated base counts.)
        let down_shard = 1;
        let victim = &switches[down_shard];
        victim.kill();
        sup.tick();
        for u in removals(&fx, 8) {
            bus.publish(&u).unwrap();
        }
        sup.tick();
        let (cursor, head, _) = bus.cursor_state(down_shard, 0);
        assert_eq!(head, cursor, "head never passes the pinned cursor");
        assert!(bus.log_live_len() >= 8, "nothing replayable was dropped");

        // Once the shard is reachable again, replay catches it up and the
        // next tick is free to compact.
        victim.revive();
        sup.tick();
        assert!(sup.all_healthy());
        sup.tick();
        assert!(bus.log_live_len() <= 2);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            router.submit(q).unwrap().wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn sole_replica_with_long_gap_recovers_by_replay_fallback() {
        // A fully-down shard has no healthy sibling to snapshot from, so
        // even a gap past replay_limit must fall back to replay — the
        // pinned log guarantees the suffix is live. Without the fallback
        // this wedges forever (refresh → AllReplicasDown → retry).
        let (router, switches, fx) = fleet(2, 1);
        let bus = router.update_bus();
        let sup = router.supervisor(SupervisorConfig {
            replay_limit: 2,
            compact_watermark: 2,
            ..Default::default()
        });
        switches[1].kill();
        sup.tick();
        for u in removals(&fx, 8) {
            bus.publish(&u).unwrap();
        }
        let (cursor, head, tail) = bus.cursor_state(1, 0);
        assert_eq!(head, cursor, "the fully-down shard pinned the log");
        assert!(tail - cursor > 2, "gap exceeds the replay limit");

        switches[1].revive();
        sup.tick();
        assert!(sup.all_healthy(), "{:?}", sup.report());
        let (cursor, _, tail) = bus.cursor_state(1, 0);
        assert_eq!(cursor, tail);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            router.submit(q).unwrap().wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn background_loop_heals_without_any_manual_calls() {
        let (router, switches, fx) = fleet(2, 2);
        let bus = router.update_bus();
        let sup = router
            .supervisor(SupervisorConfig {
                tick_every: Duration::from_millis(5),
                ..Default::default()
            })
            .start();
        switches[1].kill();
        // Even count: the remove/insert pairs cancel, so the post-recovery
        // answer is the original one.
        for u in removals(&fx, 4) {
            bus.publish(&u).unwrap();
        }
        switches[1].revive();
        assert!(
            sup.await_healthy(Duration::from_secs(10)),
            "supervisor loop reinstated the replica: {:?}",
            sup.report()
        );
        assert!(router.replica_service(0, 1).index_epoch() > 0);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            router.submit(q).unwrap().wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
    }
}
