//! The sharding subsystem's load-bearing guarantee, as a randomized
//! property test: on random worlds with random category skew and 2–8
//! shards, the [`ShardRouter`]'s merged top-k output is **bit-identical**
//! (witness tuples, costs and order) to an unsharded [`KosrService`] run
//! of the same traffic — before and after a stream of live updates
//! published through the [`LiveUpdateBus`]. With the transport rework the
//! router speaks the wire codec even in-process, so every round here also
//! exercises frame encode/decode end to end.

use std::sync::Arc;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{Graph, PartitionConfig, Partitioner};
use kosr_service::{KosrService, ServiceConfig, Update};
use kosr_shard::{LiveUpdateBus, ShardError, ShardRouter, ShardSet};
use kosr_workloads::{
    assign_uniform, assign_zipf, gen_membership_flips, gen_mixed_traffic, road_grid_directed,
    social_graph, MembershipFlip, TrafficMix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn queries_for(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    gen_mixed_traffic(
        g,
        count,
        &TrafficMix {
            hot_fraction: 0.3,
            ..Default::default()
        },
        seed,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .collect()
}

/// A random world: road grid or social graph, uniform or zipf-skewed
/// categories, deterministic per seed.
fn random_world(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD);
    let mut g = if rng.gen_bool(0.5) {
        let side = rng.gen_range(8..13);
        road_grid_directed(side, side, seed)
    } else {
        social_graph(rng.gen_range(90..160), 4, seed)
    };
    let cats = rng.gen_range(4..9);
    if rng.gen_bool(0.5) {
        let size = rng.gen_range(8..25.min(g.num_vertices()) as u32) as usize;
        assign_uniform(&mut g, cats, size, seed ^ 1);
    } else {
        let total = g.num_vertices() / 2;
        let f = 1.0 + rng.gen_range(0..10) as f64 / 10.0;
        assign_zipf(&mut g, cats, total, f, seed ^ 2);
    }
    g
}

fn assert_bit_identical(
    sharded: &[Result<kosr_shard::ShardedResponse, ShardError>],
    unsharded: &[Result<kosr_service::QueryResponse, kosr_service::ServiceError>],
    label: &str,
) {
    assert_eq!(sharded.len(), unsharded.len());
    for (i, (s, u)) in sharded.iter().zip(unsharded).enumerate() {
        let s = s
            .as_ref()
            .unwrap_or_else(|e| panic!("{label} sharded query {i}: {e}"));
        let u = u
            .as_ref()
            .unwrap_or_else(|e| panic!("{label} unsharded query {i}: {e}"));
        assert_eq!(
            s.outcome.costs(),
            u.outcome.costs(),
            "{label}: costs diverged on query {i}"
        );
        assert_eq!(
            s.outcome.witnesses, u.outcome.witnesses,
            "{label}: witnesses diverged on query {i}"
        );
    }
}

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

/// Publishes the same flip stream to the shard fleet (through the bus) and
/// the unsharded service, asserting both agree on what applied.
fn mirror_updates(
    bus: &LiveUpdateBus,
    unsharded: &KosrService,
    flips: &[MembershipFlip],
    label: &str,
) {
    for f in flips {
        let update = flip_to_update(f);
        let bus_receipt = bus.publish(&update).expect("valid update");
        let svc_receipt = unsharded.apply_update(&update).expect("valid update");
        assert_eq!(
            bus_receipt.applied, svc_receipt.applied,
            "{label}: deployments disagree on applying {update:?}"
        );
        assert_eq!(bus_receipt.deferred_replicas, 0, "{label}: healthy fleet");
    }
}

/// One full round: build both deployments over the same world, replay the
/// same traffic through both, compare bit-for-bit; then publish a few
/// membership updates through the bus (mirrored onto the unsharded
/// service) and compare again.
fn round(seed: u64) {
    let g = random_world(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD157);
    let num_shards = rng.gen_range(2..9);

    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards,
        ..Default::default()
    })
    .partition(&ig.graph);

    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 4096,
        cache_capacity: 256,
        ..Default::default()
    };
    let unsharded = KosrService::new(Arc::new(ig.clone()), config.clone());
    let router = ShardRouter::new(ShardSet::build(&ig, partition), config);

    let queries = queries_for(&g, 60, seed ^ 0x7EA);
    assert_bit_identical(
        &router.run_batch(&queries),
        &unsharded.run_batch(&queries),
        &format!("seed {seed}, {num_shards} shards, pre-update"),
    );

    // Live updates: random membership flips, published to the shard fleet
    // through the bus and mirrored 1:1 onto the unsharded service.
    let bus = router.update_bus();
    mirror_updates(
        &bus,
        &unsharded,
        &gen_membership_flips(&g, 6, seed),
        &format!("seed {seed}"),
    );

    // Queries whose categories went empty are rejected identically by both
    // (validation shares the base member counts), so the comparison still
    // holds.
    let queries = queries_for(&g, 40, seed ^ 0xAF7E);
    let sharded = router.run_batch(&queries);
    let plain = unsharded.run_batch(&queries);
    for (i, (s, u)) in sharded.iter().zip(&plain).enumerate() {
        match (s, u) {
            (Ok(s), Ok(u)) => {
                assert_eq!(
                    s.outcome.witnesses, u.outcome.witnesses,
                    "seed {seed} post-update query {i}"
                );
            }
            (Err(se), Err(ue)) => assert_eq!(
                format!("{se}"),
                format!("{ue}"),
                "seed {seed} post-update query {i} rejections differ"
            ),
            (s, u) => panic!("seed {seed} post-update query {i}: sharded {s:?} vs unsharded {u:?}"),
        }
    }
}

#[test]
fn sharded_topk_is_bit_identical_to_unsharded_across_random_worlds() {
    // CI trims via PROPTEST_CASES; default covers 8 random worlds.
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(2, 16))
        .unwrap_or(8);
    for seed in 0..cases {
        round(seed);
    }
}

/// Sharding a world into one shard must be exactly the unsharded service
/// with extra routing — the degenerate base case of the decomposition.
#[test]
fn single_shard_router_degenerates_to_plain_service() {
    let g = random_world(99);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 1,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 2,
        ..Default::default()
    };
    let unsharded = KosrService::new(Arc::new(ig.clone()), config.clone());
    let router = ShardRouter::new(ShardSet::build(&ig, partition), config);
    let queries = queries_for(&g, 40, 7);
    assert_bit_identical(
        &router.run_batch(&queries),
        &unsharded.run_batch(&queries),
        "single shard",
    );
    for q in &queries {
        assert_eq!(router.plan_fanout(q).unwrap().len(), 1);
    }
}

/// Replication must be invisible: a router with 3 replicas per shard gives
/// the same bits as one replica per shard and as the unsharded service.
#[test]
fn replicated_router_is_bit_identical_to_unsharded() {
    let g = random_world(7);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 3,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let unsharded = KosrService::new(Arc::new(ig.clone()), config.clone());
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 3, |_, _, t| {
            Arc::new(t)
        });
    let queries = queries_for(&g, 40, 21);
    assert_bit_identical(
        &router.run_batch(&queries),
        &unsharded.run_batch(&queries),
        "3 replicas",
    );
    // Updates through the bus reach all 3 replicas of every shard.
    let bus = router.update_bus();
    mirror_updates(
        &bus,
        &unsharded,
        &gen_membership_flips(&g, 5, 77),
        "3 replicas",
    );
    let queries = queries_for(&g, 25, 23);
    let sharded = router.run_batch(&queries);
    let plain = unsharded.run_batch(&queries);
    for (s, u) in sharded.iter().zip(&plain) {
        match (s, u) {
            (Ok(s), Ok(u)) => assert_eq!(s.outcome.witnesses, u.outcome.witnesses),
            (Err(se), Err(ue)) => assert_eq!(format!("{se}"), format!("{ue}")),
            (s, u) => panic!("divergence: sharded {s:?} vs unsharded {u:?}"),
        }
    }
}
