//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-seeding subset this workspace uses:
//! [`rngs::StdRng`] via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 — statistically sound for workload
//! synthesis, deterministic per seed, but **not** bit-compatible with the
//! real `rand::rngs::StdRng` stream (nothing in the workspace depends on
//! the exact stream, only on per-seed determinism).

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered over [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 high bits give a uniform double in [0,1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types from which [`Rng::gen_range`] can draw a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Deterministic construction from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, equidistributed over the full period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
