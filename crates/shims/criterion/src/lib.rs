//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group / `bench_function` / `bench_with_input` / `iter`
//! surface the workspace's benches use, with a simple median-of-samples
//! timing loop instead of criterion's full statistical machinery. Honors
//! `KOSR_BENCH_SAMPLES` (default 10) so CI can dial effort down, and
//! supports the `--bench <filter>` / bare-filter CLI arguments cargo
//! passes through.
//!
//! When `KOSR_BENCH_JSON` names a file, every finished benchmark also
//! upserts its median into that file as a single JSON document (see
//! [`record_json_at`]), so consecutive `cargo bench` invocations — one
//! process per bench target — accumulate into one machine-readable
//! baseline (the repo's `BENCH_*.json` trajectory).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("SK", 10)` renders as `SK/10`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall times of the routine under measurement.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample and records each duration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup pass to populate caches/allocator state.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }

    /// Times the routine but drops its output *outside* the measured
    /// window — upstream Criterion's API for benchmarks whose return
    /// value is expensive to tear down (e.g. a freshly decoded index)
    /// and whose drop is not part of the cost under study.
    pub fn iter_with_large_drop<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = black_box(routine());
            self.times.push(t0.elapsed());
            drop(out);
        }
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    b.times.sort_unstable();
    let median = b
        .times
        .get(b.times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let total: Duration = b.times.iter().sum();
    println!(
        "bench: {name:<48} median {median:>12.3?}  ({} samples, {total:.3?} total)",
        b.times.len()
    );
    if let Ok(path) = std::env::var("KOSR_BENCH_JSON") {
        if !path.is_empty() {
            record_json_at(&path, name, median, b.times.len());
        }
    }
}

/// Upserts one `(bench, median, samples)` measurement into the JSON
/// baseline at `path`, rewriting the whole document each time. The format
/// is flat and regular — one `"name": {"median_ns": …, "samples": …}`
/// entry per line under `"benches"` — so the reader below can reparse our
/// own output without a JSON dependency. Existing entries for other
/// benches (including ones written by other bench binaries) survive.
pub fn record_json_at(path: &str, name: &str, median: Duration, samples: usize) {
    let mut entries = read_json_entries(path);
    let median_ns = median.as_nanos() as u64;
    match entries.iter_mut().find(|(n, ..)| n == name) {
        Some(e) => {
            e.1 = median_ns;
            e.2 = samples;
        }
        None => entries.push((name.to_string(), median_ns, samples)),
    }
    let mut out = String::from("{\n  \"schema\": \"kosr-bench-medians/v1\",\n  \"benches\": {\n");
    for (i, (n, m, s)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{n}\": {{\"median_ns\": {m}, \"samples\": {s}}}{comma}\n"
        ));
    }
    out.push_str("  }\n}\n");
    let _ = std::fs::write(path, out);
}

/// Parses the entries back out of a baseline written by
/// [`record_json_at`]. Lines that don't match the flat entry shape are
/// ignored, so a hand-edited or foreign file degrades to "start fresh"
/// rather than an error.
pub fn read_json_entries(path: &str) -> Vec<(String, u64, usize)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("\": {\"median_ns\": ") else {
            continue;
        };
        let Some((median, rest)) = rest.split_once(", \"samples\": ") else {
            continue;
        };
        let samples = rest.trim_end_matches([',', '}', ' ']);
        if let (Ok(m), Ok(s)) = (median.parse(), samples.parse()) {
            entries.push((name.to_string(), m, s));
        }
    }
    entries
}

fn default_samples() -> usize {
    std::env::var("KOSR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
        .max(1)
}

/// The benchmark registry/driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            sample_size: default_samples(),
        }
    }
}

impl Criterion {
    /// Parses the arguments cargo-bench forwards (`--bench`, a name filter);
    /// unknown flags are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--profile-time" => {
                    // flag (possibly consuming a value we don't use)
                    if a == "--profile-time" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        if self.enabled(name) {
            run_one(name, self.sample_size, f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn samples(&self) -> usize {
        // The env knob wins so CI can cap long-running groups.
        match std::env::var("KOSR_BENCH_SAMPLES") {
            Ok(s) => s.parse().unwrap_or(10),
            Err(_) => self.sample_size.unwrap_or_else(default_samples),
        }
        .max(1)
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.enabled(&full) {
            run_one(&full, self.samples(), f);
        }
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.enabled(&full) {
            run_one(&full, self.samples(), |b| f(b, input));
        }
        self
    }

    /// Closes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_smoke() {
        let mut c = Criterion {
            filter: None,
            sample_size: 2,
        };
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("one", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match".into()),
            sample_size: 1,
        };
        let mut ran = false;
        c.bench_function("no", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
    }

    #[test]
    fn json_baseline_accumulates_and_upserts() {
        let path =
            std::env::temp_dir().join(format!("kosr_bench_json_test_{}.json", std::process::id()));
        let path = path.to_str().expect("utf8 temp path");
        let _ = std::fs::remove_file(path);

        record_json_at(path, "grp/one", Duration::from_micros(1500), 4);
        record_json_at(path, "grp/two", Duration::from_nanos(42), 2);
        // Re-recording the same bench overwrites, not duplicates.
        record_json_at(path, "grp/one", Duration::from_micros(1200), 6);

        let entries = read_json_entries(path);
        assert_eq!(
            entries,
            vec![
                ("grp/one".to_string(), 1_200_000, 6),
                ("grp/two".to_string(), 42, 2),
            ]
        );
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"schema\": \"kosr-bench-medians/v1\""));
        assert!(text.contains("\"grp/two\": {\"median_ns\": 42, \"samples\": 2}\n"));
        std::fs::remove_file(path).unwrap();
    }
}
