//! Offline stand-in for the `proptest` crate.
//!
//! Re-implements the strategy combinators and macros the workspace's
//! property tests use: range and tuple strategies, `Just`, `any`,
//! `prop_map`/`prop_flat_map`, `collection::vec`, `bits::u8::ANY`, the
//! `proptest!` test macro and the `prop_assert*` macros.
//!
//! Differences from real proptest, chosen for an offline, dependency-free
//! build: cases are generated from a fixed seed (fully deterministic runs)
//! and failing cases are **not shrunk** — the failing values are reported
//! as generated. `PROPTEST_CASES` overrides the per-test case count.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic per-case RNG (used by the `proptest!` macro so
/// expansions don't need a `rand` dependency in the calling crate).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Per-test configuration (case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Applies the `PROPTEST_CASES` environment override, if set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates from an inner strategy chosen per-value by `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy (`bool`, integers).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Bit-oriented strategies (`proptest::bits`).
pub mod bits {
    /// Strategies over `u8` values.
    #[allow(non_snake_case)]
    pub mod u8 {
        use crate::{Strategy, TestRng};

        /// Strategy generating any `u8`.
        #[derive(Clone, Copy, Debug)]
        pub struct U8Any;

        impl Strategy for U8Any {
            type Value = u8;

            fn generate(&self, rng: &mut TestRng) -> u8 {
                rand::RngCore::next_u64(rng) as u8
            }
        }

        /// Any `u8`, uniformly.
        pub const ANY: U8Any = U8Any;
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (no shrinking: panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Seed differs per test (by name) but is stable across runs.
                let seed = {
                    let name = stringify!($name);
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                for case in 0..config.effective_cases() {
                    let mut rng = $crate::new_rng(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(1);
        let s = (2usize..30).prop_flat_map(|n| {
            (
                Just(n),
                crate::collection::vec((0u32..10, 0u64..100), 0..20),
            )
        });
        for _ in 0..200 {
            let (n, pairs) = s.generate(&mut rng);
            assert!((2..30).contains(&n));
            assert!(pairs.len() < 20);
            for (a, b) in pairs {
                assert!(a < 10);
                assert!(b < 100);
            }
        }
    }

    #[test]
    fn fixed_size_vec_and_bits_any() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(2);
        let s = crate::collection::vec(crate::bits::u8::ANY, 28);
        assert_eq!(s.generate(&mut rng).len(), 28);
        let b = any::<bool>();
        let vals: Vec<bool> = (0..64).map(|_| b.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&x| x) && vals.iter().any(|&x| !x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, prop_assert forms.
        #[test]
        fn macro_smoke((a, b) in (0u32..50, 0u32..50), k in 1usize..5) {
            prop_assert!(a < 50 && b < 50);
            prop_assert!(k >= 1, "k={} must be positive", k);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(k, 0);
        }
    }

    proptest! {
        /// Default-config form of the macro.
        #[test]
        fn macro_default_config(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
