//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! `parking_lot`'s locks do not poison; this shim preserves that contract
//! by unwrapping poison errors into the inner guard (a panic while holding
//! the lock in another thread does not cascade here).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
