//! Offline stand-in for the `crossbeam` crate: [`scope`] implemented on top
//! of `std::thread::scope` (stabilised since Rust 1.63, so crossbeam's main
//! historical raison d'être is in std now).

#![forbid(unsafe_code)]

use std::any::Any;

/// Handle passed to [`scope`]'s closure; spawns threads that may borrow
/// from the enclosing stack frame.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle again,
    /// mirroring crossbeam's nested-spawn signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned thread has joined.
///
/// Unlike crossbeam, a panicking child propagates the panic at scope exit
/// instead of surfacing through the `Err` variant — the `Result` wrapper is
/// kept purely for signature compatibility.
#[allow(clippy::type_complexity)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("workers joined");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
