//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! few external APIs the codebase relies on are re-implemented locally with
//! identical signatures. Only the subset actually used by `kosr-hoplabel`'s
//! codec and `kosr-index`'s disk layout is provided: little-endian integer
//! reads/writes over `&[u8]` and `Vec<u8>`.

#![forbid(unsafe_code)]

/// Read access to a buffer of bytes, advancing an internal cursor.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Moves the cursor forward `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// The bytes between the cursor and the end.
    fn chunk(&self) -> &[u8];

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u32` and advances past it.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances past it.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Bounds-checked [`Buf::get_u8`]: `None` instead of a panic on short
    /// input. The wire/snapshot decoders build their totality guarantee
    /// (arbitrary bytes → typed error, never a panic) on these.
    fn try_get_u8(&mut self) -> Option<u8> {
        (self.remaining() >= 1).then(|| self.get_u8())
    }

    /// Bounds-checked [`Buf::get_u32_le`].
    fn try_get_u32_le(&mut self) -> Option<u32> {
        (self.remaining() >= 4).then(|| self.get_u32_le())
    }

    /// Bounds-checked [`Buf::get_u64_le`].
    fn try_get_u64_le(&mut self) -> Option<u64> {
        (self.remaining() >= 8).then(|| self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src` verbatim.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xy");
        out.put_u8(7);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 4 + 8 + 2 + 1);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&buf.chunk()[..2], b"xy");
        buf.advance(2);
        assert!(buf.has_remaining());
        assert_eq!(buf.get_u8(), 7);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn try_reads_check_bounds_instead_of_panicking() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(5);
        out.put_u8(9);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.try_get_u64_le(), None, "5 bytes can't hold a u64");
        assert_eq!(buf.try_get_u32_le(), Some(5));
        assert_eq!(buf.try_get_u32_le(), None);
        assert_eq!(buf.try_get_u8(), Some(9));
        assert_eq!(buf.try_get_u8(), None);
    }
}
