//! Inter-category lower-bound tables — offline "transfer" precomputation.
//!
//! For every ordered category pair `(cᵢ, cⱼ)` the table stores
//!
//! ```text
//! LB[cᵢ][cⱼ] = min { dis(a, b) : a ∈ cᵢ, b ∈ cⱼ }
//! ```
//!
//! computed from the exact 2-hop labels via per-category **virtual label
//! sets**: `lin_min[c]` keeps, per hub, the minimum `Lin` distance over all
//! members of `c`, and `lout_min[c]` the minimum `Lout` distance. A
//! merge-join of `lout_min[cᵢ]` with `lin_min[cⱼ]` is then exactly the
//! min-over-member-pairs distance (labels are exact, so every member pair's
//! shortest path is witnessed by some shared hub). The same virtual sets
//! joined against a concrete query vertex's labels give the source-side
//! (`dis(s → c)`) and target-side (`dis(c → t)`) rows for free.
//!
//! Query time assembles the table rows into a [`SeqBounds`] suffix array:
//! `rem[l]` is an admissible *and consistent* lower bound on the remaining
//! cost of any partial route that has covered the first `l` categories.
//! Admissible because each leg is bounded below by the corresponding table
//! entry; consistent because extending a route by one leg of true cost `d`
//! satisfies `d + rem[l+1] ≥ LB + rem[l+1] ≥ rem[l]`, so `cost + rem[level]`
//! is monotone along generation and best-first order on it still completes
//! routes in true cost order — pruned runs stay bit-identical to unpruned.
//!
//! **Maintenance invariant** (§IV-C live updates): every stored entry must
//! stay `≤` the true current inter-category distance. Membership inserts
//! *relax* (min-merge the new member's labels in, then recompute the
//! affected row/column — values only decrease). Membership removals and
//! edge insertions can tighten true distances in ways a stored minimum
//! cannot track entry-wise, so the affected rows (or the whole table, for
//! edge updates that repair labels) are **rebuilt** instead. Either way the
//! table is always exact, which is the strongest form of admissible.

use kosr_graph::{inf_add, is_finite, CategoryId, CategoryTable, VertexId, Weight};
use kosr_hoplabel::batch::{min_join, min_merge_into, min_union};
use kosr_hoplabel::{HopLabels, LabelSet};

/// Below this many total memberships the build runs single-threaded — the
/// per-category unions are too small to amortise thread spawn.
const PARALLEL_BUILD_MEMBERSHIPS: usize = 1 << 13;

fn map_parallel<T: Send>(n: usize, parallel: bool, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1))
    } else {
        1
    };
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("bounds build worker panicked"));
        }
    });
    out
}

/// The offline category-pair lower-bound table plus the per-category
/// virtual label sets it is derived from (kept so source/target-side
/// bounds and incremental maintenance don't re-touch member labels).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CategoryBounds {
    lin_min: Vec<LabelSet>,
    lout_min: Vec<LabelSet>,
    /// Row-major `ncats × ncats`: `table[i * ncats + j] = LB[cᵢ][cⱼ]`.
    table: Vec<Weight>,
}

impl CategoryBounds {
    /// Computes the full table from exact labels and the category roster.
    /// Parallelises the per-category unions and the row fills when the
    /// membership volume is worth it.
    pub fn build(labels: &HopLabels, categories: &CategoryTable) -> Self {
        let n = categories.num_categories();
        let parallel = categories.num_memberships() >= PARALLEL_BUILD_MEMBERSHIPS;
        let virtuals = map_parallel(n, parallel, |c| {
            let members = categories.vertices_of(CategoryId(c as u32));
            (
                min_union(members.iter().map(|&v| labels.lin(v))),
                min_union(members.iter().map(|&v| labels.lout(v))),
            )
        });
        let mut lin_min = Vec::with_capacity(n);
        let mut lout_min = Vec::with_capacity(n);
        for (lin, lout) in virtuals {
            lin_min.push(lin);
            lout_min.push(lout);
        }
        let table = map_parallel(n, parallel, |i| {
            lin_min
                .iter()
                .map(|lin| min_join(&lout_min[i], lin))
                .collect::<Vec<Weight>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Self {
            lin_min,
            lout_min,
            table,
        }
    }

    /// Number of categories the table covers.
    pub fn num_categories(&self) -> usize {
        self.lin_min.len()
    }

    /// `LB[cᵢ][cⱼ]` — exact min distance from any member of `ci` to any
    /// member of `cj`.
    pub fn pair(&self, ci: CategoryId, cj: CategoryId) -> Weight {
        self.table[ci.0 as usize * self.num_categories() + cj.0 as usize]
    }

    /// Exact `min { dis(v, m) : m ∈ c }` — the source-side row.
    pub fn to_category(&self, labels: &HopLabels, v: VertexId, c: CategoryId) -> Weight {
        min_join(labels.lout(v), &self.lin_min[c.0 as usize])
    }

    /// Exact `min { dis(m, v) : m ∈ c }` — the target-side row.
    pub fn from_category(&self, labels: &HopLabels, c: CategoryId, v: VertexId) -> Weight {
        min_join(&self.lout_min[c.0 as usize], labels.lin(v))
    }

    /// Assembles the remaining-sequence suffix array for one query. See
    /// [`SeqBounds`] for the `rem[]` semantics.
    pub fn seq_bounds(
        &self,
        labels: &HopLabels,
        source: VertexId,
        target: VertexId,
        cats: &[CategoryId],
    ) -> SeqBounds {
        if cats.is_empty() {
            return SeqBounds {
                rem: vec![labels.distance(source, target), 0],
            };
        }
        let to_first = self.to_category(labels, source, cats[0]);
        SeqBounds::from_parts(to_first, self.suffix_chain(labels, target, cats))
    }

    /// The target-dependent suffix `rem[1..]` for a category sequence —
    /// independent of the source, so reusable across queries sharing
    /// `(categories, target)` (the witness cache's tail key).
    pub fn suffix_chain(
        &self,
        labels: &HopLabels,
        target: VertexId,
        cats: &[CategoryId],
    ) -> Vec<Weight> {
        let m = cats.len();
        let mut rem = vec![0; m + 1];
        if m == 0 {
            return rem;
        }
        rem[m - 1] = self.from_category(labels, cats[m - 1], target);
        for l in (0..m - 1).rev() {
            rem[l] = inf_add(self.pair(cats[l], cats[l + 1]), rem[l + 1]);
        }
        rem
    }

    /// Relaxes the table after `v` joined category `c`: min-merges the new
    /// member's labels into the virtual sets, then recomputes row and
    /// column `c` (entries can only decrease, so this stays exact).
    pub fn insert_member(&mut self, labels: &HopLabels, v: VertexId, c: CategoryId) {
        let ci = c.0 as usize;
        let lin_changed = min_merge_into(&mut self.lin_min[ci], labels.lin(v));
        let lout_changed = min_merge_into(&mut self.lout_min[ci], labels.lout(v));
        if lin_changed || lout_changed {
            self.recompute_row_col(ci);
        }
    }

    /// Rebuilds category `c`'s virtual sets from its *current* roster
    /// (call after the [`CategoryTable`] removal) and recomputes row and
    /// column `c`. Removal can raise true minima, so entry-wise relaxation
    /// is impossible — the row rebuild keeps the table exact.
    pub fn remove_member(&mut self, labels: &HopLabels, categories: &CategoryTable, c: CategoryId) {
        let ci = c.0 as usize;
        let members = categories.vertices_of(c);
        self.lin_min[ci] = min_union(members.iter().map(|&v| labels.lin(v)));
        self.lout_min[ci] = min_union(members.iter().map(|&v| labels.lout(v)));
        self.recompute_row_col(ci);
    }

    fn recompute_row_col(&mut self, ci: usize) {
        let n = self.num_categories();
        for j in 0..n {
            self.table[ci * n + j] = min_join(&self.lout_min[ci], &self.lin_min[j]);
            self.table[j * n + ci] = min_join(&self.lout_min[j], &self.lin_min[ci]);
        }
    }

    /// Per-category virtual `Lin` sets (snapshot encoding).
    pub fn lin_min_sets(&self) -> &[LabelSet] {
        &self.lin_min
    }

    /// Per-category virtual `Lout` sets (snapshot encoding).
    pub fn lout_min_sets(&self) -> &[LabelSet] {
        &self.lout_min
    }

    /// The raw row-major table (snapshot encoding).
    pub fn table_slice(&self) -> &[Weight] {
        &self.table
    }

    /// Reassembles a table from decoded parts. `None` when the shapes
    /// disagree (`lin`/`lout` lengths differ, or the table is not `n²`).
    pub fn from_parts(
        lin_min: Vec<LabelSet>,
        lout_min: Vec<LabelSet>,
        table: Vec<Weight>,
    ) -> Option<Self> {
        if lin_min.len() != lout_min.len() || table.len() != lin_min.len() * lin_min.len() {
            return None;
        }
        Some(Self {
            lin_min,
            lout_min,
            table,
        })
    }

    /// Approximate heap footprint.
    pub fn size_bytes(&self) -> usize {
        self.lin_min
            .iter()
            .chain(self.lout_min.iter())
            .map(LabelSet::size_bytes)
            .sum::<usize>()
            + self.table.len() * std::mem::size_of::<Weight>()
    }
}

/// Remaining-sequence lower bounds for one query: `rem[l]` bounds the cost
/// still to pay by any partial route whose tail sits at *level* `l` (source
/// is level 0; a route that has covered all `m` categories is at level `m`;
/// `rem[m + 1] = 0` for completed routes). Admissible and consistent — see
/// the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqBounds {
    rem: Vec<Weight>,
}

impl SeqBounds {
    /// Builds `rem` from the source-side head (`dis(s → C₁)`) and the
    /// source-independent suffix chain `rem[1..]` (length `m + 1`).
    pub fn from_parts(to_first: Weight, suffix: Vec<Weight>) -> Self {
        let mut rem = Vec::with_capacity(suffix.len() + 1);
        rem.push(inf_add(to_first, suffix[0]));
        rem.extend(suffix);
        Self { rem }
    }

    /// Lower bound on the remaining cost from a level-`level` node.
    pub fn remaining(&self, level: u16) -> Weight {
        self.rem[level as usize]
    }

    /// Whole-query lower bound (`rem[0]`): infinite means no feasible route
    /// exists at all and the search can return empty without expanding.
    pub fn root(&self) -> Weight {
        self.rem[0]
    }

    /// True when even the best imaginable completion is unreachable.
    pub fn infeasible(&self) -> bool {
        !is_finite(self.rem[0])
    }

    /// The source-independent tail `rem[1..]` (witness-cache payload).
    pub fn suffix(&self) -> &[Weight] {
        &self.rem[1..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::{GraphBuilder, INFINITY};
    use kosr_hoplabel::HubOrder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn c(i: u32) -> CategoryId {
        CategoryId(i)
    }

    /// Small directed line + shortcut world with two categories.
    fn world() -> (kosr_graph::Graph, HopLabels) {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(v(i), v(i + 1), 2);
        }
        b.add_edge(v(0), v(4), 5);
        let mut g = b.build();
        g.categories_mut().ensure_categories(2);
        g.categories_mut().insert(v(1), c(0));
        g.categories_mut().insert(v(4), c(0));
        g.categories_mut().insert(v(2), c(1));
        g.categories_mut().insert(v(5), c(1));
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        (g, labels)
    }

    fn brute_pair(
        labels: &HopLabels,
        g: &kosr_graph::Graph,
        ci: CategoryId,
        cj: CategoryId,
    ) -> Weight {
        let mut best = INFINITY;
        for a in g.categories().vertices_of(ci) {
            for b in g.categories().vertices_of(cj) {
                best = best.min(labels.distance(*a, *b));
            }
        }
        best
    }

    #[test]
    fn table_matches_min_over_member_pairs() {
        let (g, labels) = world();
        let bounds = CategoryBounds::build(&labels, g.categories());
        assert_eq!(bounds.num_categories(), 2);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(bounds.pair(c(i), c(j)), brute_pair(&labels, &g, c(i), c(j)));
            }
        }
        // Source/target-side rows.
        assert_eq!(bounds.to_category(&labels, v(0), c(0)), 2); // 0→1
        assert_eq!(bounds.from_category(&labels, c(1), v(5)), 0); // 5 ∈ c1
        assert_eq!(bounds.from_category(&labels, c(0), v(0)), INFINITY); // no edge back
    }

    #[test]
    fn seq_bounds_are_admissible_and_terminate_at_zero() {
        let (g, labels) = world();
        let bounds = CategoryBounds::build(&labels, g.categories());
        let sb = bounds.seq_bounds(&labels, v(0), v(5), &[c(0), c(1)]);
        // Best actual route 0→1→2→…→5 costs 10; rem[0] must not exceed it.
        assert!(sb.root() <= 10);
        assert!(!sb.infeasible());
        assert_eq!(sb.remaining(3), 0);
        // rem is monotone non-increasing along levels.
        for l in 0..3u16 {
            assert!(sb.remaining(l) >= sb.remaining(l + 1));
        }
        // Empty category list degenerates to the point-to-point distance.
        let empty = bounds.seq_bounds(&labels, v(0), v(5), &[]);
        assert_eq!(empty.root(), labels.distance(v(0), v(5)));
        assert_eq!(empty.remaining(1), 0);
        // Infeasible direction is flagged at the root.
        assert!(bounds.seq_bounds(&labels, v(5), v(0), &[c(0)]).infeasible());
    }

    #[test]
    fn suffix_chain_is_source_independent_and_recombines() {
        let (g, labels) = world();
        let bounds = CategoryBounds::build(&labels, g.categories());
        let cats = [c(0), c(1)];
        let chain = bounds.suffix_chain(&labels, v(5), &cats);
        let direct = bounds.seq_bounds(&labels, v(0), v(5), &cats);
        assert_eq!(direct.suffix(), &chain[..]);
        let recombined = SeqBounds::from_parts(bounds.to_category(&labels, v(0), cats[0]), chain);
        assert_eq!(recombined, direct);
    }

    #[test]
    fn maintenance_keeps_table_exact() {
        let (mut g, labels) = world();
        let mut bounds = CategoryBounds::build(&labels, g.categories());
        // Insert: category 1 gains vertex 0 — its row/column tighten.
        g.categories_mut().insert(v(0), c(1));
        bounds.insert_member(&labels, v(0), c(1));
        assert_eq!(
            bounds,
            CategoryBounds::build(&labels, g.categories()),
            "insert relaxation must match a fresh build"
        );
        // Remove: drop vertex 1 from c0 — rebuild path.
        g.categories_mut().remove(v(1), c(0));
        bounds.remove_member(&labels, g.categories(), c(0));
        assert_eq!(
            bounds,
            CategoryBounds::build(&labels, g.categories()),
            "remove rebuild must match a fresh build"
        );
    }

    #[test]
    fn from_parts_rejects_shape_mismatches() {
        let (g, labels) = world();
        let b = CategoryBounds::build(&labels, g.categories());
        let ok = CategoryBounds::from_parts(
            b.lin_min_sets().to_vec(),
            b.lout_min_sets().to_vec(),
            b.table_slice().to_vec(),
        );
        assert_eq!(ok.as_ref(), Some(&b));
        assert!(CategoryBounds::from_parts(
            b.lin_min_sets().to_vec(),
            b.lout_min_sets()[..1].to_vec(),
            b.table_slice().to_vec()
        )
        .is_none());
        assert!(CategoryBounds::from_parts(
            b.lin_min_sets().to_vec(),
            b.lout_min_sets().to_vec(),
            vec![0; 3]
        )
        .is_none());
    }
}
