//! The **inverted label index** `IL(Ci)` of §IV-A.
//!
//! For a category `Ci`, the inverted index groups the `Lin` entries of all
//! member vertices *by hub*: `IL(u′)` lists `(u, d_{u′,u})` for every member
//! `u ∈ V_Ci` with `(u′, d_{u′,u}) ∈ Lin(u)`, sorted ascending by cost. A
//! `FindNN` stream then k-way-merges the `IL(u′)` lists matching `Lout(v)`
//! (Table V / Example 4 of the paper).
//!
//! Dynamic category updates (§IV-C) insert or remove one member's entries in
//! `O(|Lin(v)| log |Ci|)` by binary-searching each affected hub list.

use kosr_graph::{CategoryId, CategoryTable, FxHashMap, VertexId, Weight};
use kosr_hoplabel::HopLabels;

/// Inverted label index of a single category.
#[derive(Clone, Debug, Default)]
pub struct InvertedLabelIndex {
    /// Hub `u′` → entries `(member, d(u′, member))` sorted by (cost, member).
    lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
    /// Number of member vertices indexed.
    num_members: usize,
}

impl InvertedLabelIndex {
    /// Builds `IL(c)` from the members' `Lin` labels.
    pub fn build(labels: &HopLabels, categories: &CategoryTable, c: CategoryId) -> Self {
        Self::build_from_members(labels, categories.vertices_of(c))
    }

    /// Builds an inverted index over an **explicit member set** rather
    /// than a category table entry. This is the shard-build primitive: a
    /// region shard indexes only the members it owns (its slice of
    /// `V_{Ci}`), yet the resulting `IL` answers `FindNN` streams exactly
    /// over that subset.
    pub fn build_from_members(labels: &HopLabels, members: &[VertexId]) -> Self {
        let mut lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
        for &u in members {
            for (hub, d) in labels.lin(u).iter() {
                lists.entry(hub).or_default().push((u, d));
            }
        }
        for list in lists.values_mut() {
            list.sort_unstable_by_key(|&(m, d)| (d, m));
        }
        InvertedLabelIndex {
            lists,
            num_members: members.len(),
        }
    }

    /// The inverted list of hub `u′` (`IL(u′)`), if any member references it.
    #[inline]
    pub fn list(&self, hub: VertexId) -> Option<&[(VertexId, Weight)]> {
        self.lists.get(&hub).map(Vec::as_slice)
    }

    /// Number of hubs with a non-empty list.
    pub fn num_hubs(&self) -> usize {
        self.lists.len()
    }

    /// Number of member vertices covered.
    pub fn num_members(&self) -> usize {
        self.num_members
    }

    /// Total entries across all lists (the paper's `|IL(Ci)|`).
    pub fn num_entries(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Average entries per hub list (the paper's `Avg |IL(v)|`).
    pub fn avg_list_len(&self) -> f64 {
        if self.lists.is_empty() {
            0.0
        } else {
            self.num_entries() as f64 / self.lists.len() as f64
        }
    }

    /// Bytes consumed by the entry arrays.
    pub fn size_bytes(&self) -> usize {
        self.num_entries() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<Weight>())
    }

    /// Registers a **new member** `v` (category insert of §IV-C): every
    /// `(u′, d) ∈ Lin(v)` gains an inverted entry, placed by binary search.
    pub fn insert_member(&mut self, labels: &HopLabels, v: VertexId) {
        for (hub, d) in labels.lin(v).iter() {
            let list = self.lists.entry(hub).or_default();
            let pos = list.partition_point(|&(m, dm)| (dm, m) < (d, v));
            list.insert(pos, (v, d));
        }
        self.num_members += 1;
    }

    /// Removes a member `v` (category remove of §IV-C).
    pub fn remove_member(&mut self, labels: &HopLabels, v: VertexId) {
        for (hub, d) in labels.lin(v).iter() {
            if let Some(list) = self.lists.get_mut(&hub) {
                let pos = list.partition_point(|&(m, dm)| (dm, m) < (d, v));
                if pos < list.len() && list[pos] == (v, d) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.lists.remove(&hub);
                }
            }
        }
        self.num_members = self.num_members.saturating_sub(1);
    }

    /// Iterates `(hub, list)` pairs (serialization support).
    pub fn iter_lists(&self) -> impl Iterator<Item = (VertexId, &[(VertexId, Weight)])> {
        self.lists.iter().map(|(&h, l)| (h, l.as_slice()))
    }

    /// Like [`InvertedLabelIndex::from_lists`] but trusts that every list
    /// already satisfies the `(cost, member)` ordering — the zero-copy
    /// snapshot install path, whose byte-level validation has enforced the
    /// invariant before any list was materialised. No sorting pass runs.
    pub fn from_sorted_lists(
        lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
        num_members: usize,
    ) -> Self {
        debug_assert!(lists
            .values()
            .all(|l| l.windows(2).all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0))));
        InvertedLabelIndex { lists, num_members }
    }

    /// Builds directly from raw hub lists (deserialization support). Lists
    /// are re-sorted to enforce the invariant.
    pub fn from_lists(
        lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
        num_members: usize,
    ) -> Self {
        let mut idx = InvertedLabelIndex { lists, num_members };
        for list in idx.lists.values_mut() {
            list.sort_unstable_by_key(|&(m, d)| (d, m));
        }
        idx
    }
}

/// Build statistics for a whole graph's inverted indexes (Table IX, bottom).
#[derive(Clone, Copy, Debug, Default)]
pub struct InvertedStats {
    /// Wall-clock construction time.
    pub build_time: std::time::Duration,
    /// Average `|IL(Ci)|` (entries per category).
    pub avg_entries_per_category: f64,
    /// Average `|IL(v)|` (entries per hub list).
    pub avg_list_len: f64,
    /// Total bytes across all categories.
    pub size_bytes: usize,
}

/// The inverted label indexes of **every** category of a graph.
#[derive(Clone, Debug, Default)]
pub struct CategoryIndexSet {
    indexes: Vec<InvertedLabelIndex>,
}

impl CategoryIndexSet {
    /// Builds `IL(Ci)` for all categories.
    pub fn build(labels: &HopLabels, categories: &CategoryTable) -> Self {
        Self::build_with_stats(labels, categories).0
    }

    /// Builds all indexes and reports Table IX statistics.
    pub fn build_with_stats(
        labels: &HopLabels,
        categories: &CategoryTable,
    ) -> (Self, InvertedStats) {
        let start = std::time::Instant::now();
        let indexes: Vec<InvertedLabelIndex> = (0..categories.num_categories())
            .map(|c| InvertedLabelIndex::build(labels, categories, CategoryId(c as u32)))
            .collect();
        let nc = indexes.len().max(1);
        let total_entries: usize = indexes.iter().map(InvertedLabelIndex::num_entries).sum();
        let total_lists: usize = indexes.iter().map(InvertedLabelIndex::num_hubs).sum();
        let stats = InvertedStats {
            build_time: start.elapsed(),
            avg_entries_per_category: total_entries as f64 / nc as f64,
            avg_list_len: if total_lists == 0 {
                0.0
            } else {
                total_entries as f64 / total_lists as f64
            },
            size_bytes: indexes.iter().map(InvertedLabelIndex::size_bytes).sum(),
        };
        (CategoryIndexSet { indexes }, stats)
    }

    /// Assembles a set from prebuilt per-category indexes (index `i` serves
    /// `CategoryId(i)`). Used by the disk-backed SK-DB runner, which loads
    /// only the categories a query needs and leaves the rest empty.
    pub fn from_indexes(indexes: Vec<InvertedLabelIndex>) -> Self {
        CategoryIndexSet { indexes }
    }

    /// The inverted index of category `c`.
    #[inline]
    pub fn category(&self, c: CategoryId) -> &InvertedLabelIndex {
        &self.indexes[c.index()]
    }

    /// Mutable access for dynamic updates.
    pub fn category_mut(&mut self, c: CategoryId) -> &mut InvertedLabelIndex {
        &mut self.indexes[c.index()]
    }

    /// Number of categories covered.
    pub fn num_categories(&self) -> usize {
        self.indexes.len()
    }

    /// Member count `|V_Ci|` of category `c` as recorded by the inverted
    /// index (0 for ids beyond the covered range, so callers can probe
    /// without bounds anxiety).
    pub fn members_of(&self, c: CategoryId) -> usize {
        self.indexes.get(c.index()).map_or(0, |il| il.num_members())
    }

    /// Selectivity `|V_Ci| / n` of category `c` against a vertex universe
    /// of size `n` — the density signal query planners key off: sparse
    /// categories make NN streams short and favor estimation-guided search.
    pub fn selectivity(&self, c: CategoryId, num_vertices: usize) -> f64 {
        if num_vertices == 0 {
            0.0
        } else {
            self.members_of(c) as f64 / num_vertices as f64
        }
    }

    /// Applies the paper's category-insert update across tables
    /// (`CategoryTable` + inverted index stay in sync).
    pub fn insert_membership(
        &mut self,
        labels: &HopLabels,
        categories: &mut CategoryTable,
        v: VertexId,
        c: CategoryId,
    ) -> bool {
        if categories.insert(v, c) {
            self.indexes[c.index()].insert_member(labels, v);
            true
        } else {
            false
        }
    }

    /// Applies the paper's category-remove update across tables.
    pub fn remove_membership(
        &mut self,
        labels: &HopLabels,
        categories: &mut CategoryTable,
        v: VertexId,
        c: CategoryId,
    ) -> bool {
        if categories.remove(v, c) {
            self.indexes[c.index()].remove_member(labels, v);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;
    use kosr_hoplabel::HubOrder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Path graph 0→1→2→3→4 with weights 1,2,3,4; categories on odd/even.
    fn setup() -> (kosr_graph::Graph, HopLabels) {
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(v(i), v(i + 1), (i + 1) as u64);
        }
        let ca = b.categories_mut().add_category("A");
        let cb = b.categories_mut().add_category("B");
        b.categories_mut().insert(v(1), ca);
        b.categories_mut().insert(v(3), ca);
        b.categories_mut().insert(v(2), cb);
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        (g, labels)
    }

    #[test]
    fn lists_are_sorted_by_cost() {
        let (g, labels) = setup();
        let il = InvertedLabelIndex::build(&labels, g.categories(), CategoryId(0));
        assert_eq!(il.num_members(), 2);
        assert!(il.num_entries() > 0);
        for (_, list) in il.iter_lists() {
            for w in list.windows(2) {
                assert!(w[0].1 <= w[1].1, "list not sorted: {list:?}");
            }
        }
    }

    #[test]
    fn entries_match_lin_labels() {
        let (g, labels) = setup();
        let ca = CategoryId(0);
        let il = InvertedLabelIndex::build(&labels, g.categories(), ca);
        // Every Lin entry of every member must appear exactly once.
        let mut expect = 0usize;
        for &m in g.categories().vertices_of(ca) {
            for (hub, d) in labels.lin(m).iter() {
                expect += 1;
                let list = il.list(hub).expect("hub list exists");
                assert!(list.contains(&(m, d)));
            }
        }
        assert_eq!(il.num_entries(), expect);
    }

    #[test]
    fn insert_remove_member_roundtrip() {
        let (g, labels) = setup();
        let ca = CategoryId(0);
        let before = InvertedLabelIndex::build(&labels, g.categories(), ca);
        let mut il = before.clone();
        // Insert v4 then remove it: back to the original.
        il.insert_member(&labels, v(4));
        assert_eq!(il.num_members(), 3);
        assert!(il.num_entries() > before.num_entries());
        for (_, list) in il.iter_lists() {
            for w in list.windows(2) {
                assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
            }
        }
        il.remove_member(&labels, v(4));
        assert_eq!(il.num_members(), 2);
        assert_eq!(il.num_entries(), before.num_entries());
    }

    #[test]
    fn category_index_set_updates_stay_in_sync() {
        let (mut g, labels) = setup();
        let mut set = CategoryIndexSet::build(&labels, g.categories());
        let cb = CategoryId(1);
        let mut cats = g.categories().clone();
        assert!(set.insert_membership(&labels, &mut cats, v(4), cb));
        assert!(!set.insert_membership(&labels, &mut cats, v(4), cb));
        assert!(cats.has_category(v(4), cb));
        // Rebuilding from scratch gives the same entry count.
        g.set_categories(cats.clone());
        let rebuilt = InvertedLabelIndex::build(&labels, &cats, cb);
        assert_eq!(set.category(cb).num_entries(), rebuilt.num_entries());
        assert!(set.remove_membership(&labels, &mut cats, v(4), cb));
        assert!(!set.remove_membership(&labels, &mut cats, v(4), cb));
    }

    #[test]
    fn stats_populated() {
        let (g, labels) = setup();
        let (_, stats) = CategoryIndexSet::build_with_stats(&labels, g.categories());
        assert!(stats.avg_entries_per_category > 0.0);
        assert!(stats.avg_list_len > 0.0);
        assert!(stats.size_bytes > 0);
    }

    #[test]
    fn build_from_members_matches_table_build_on_subsets() {
        let (g, labels) = setup();
        let ca = CategoryId(0);
        let full = InvertedLabelIndex::build(&labels, g.categories(), ca);
        let members = g.categories().vertices_of(ca);
        let rebuilt = InvertedLabelIndex::build_from_members(&labels, members);
        assert_eq!(rebuilt.num_members(), full.num_members());
        assert_eq!(rebuilt.num_entries(), full.num_entries());
        // A strict subset indexes exactly that subset's entries.
        let sub = InvertedLabelIndex::build_from_members(&labels, &members[..1]);
        assert_eq!(sub.num_members(), 1);
        assert_eq!(sub.num_entries(), labels.lin(members[0]).len());
    }

    #[test]
    fn empty_category_is_fine() {
        let (g, labels) = setup();
        let mut cats = g.categories().clone();
        let empty = cats.add_category("EMPTY");
        let il = InvertedLabelIndex::build(&labels, &cats, empty);
        assert_eq!(il.num_members(), 0);
        assert_eq!(il.num_entries(), 0);
        assert_eq!(il.avg_list_len(), 0.0);
    }
}
