//! `FindNN` (Algorithm 3): the x-th nearest neighbor of a vertex within a
//! category, as an incrementally extended, memoised stream.
//!
//! Two interchangeable providers implement [`NearestNeighbors`]:
//!
//! * [`LabelNn`] — the paper's Algorithm 3 over the inverted label index:
//!   per `(v, C)` it keeps the found-neighbor list `NL`, a candidate
//!   priority queue `NQ` of one cursor per matching inverted list, and the
//!   per-hub scan positions `KV`. Each next neighbor costs one heap pop
//!   plus one cursor advance — no search restarts.
//! * [`DijkstraNn`] — the `*-Dij` baseline: one resumable Dijkstra per
//!   source vertex (shared across categories), filtered by membership.
//!
//! Both count **NN queries** the way the paper's evaluation does: serving a
//! request from the memoised `NL` list is *not* counted; computing a fresh
//! neighbor is.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{CategoryId, FxHashMap, FxHashSet, Graph, VertexId, Weight};
use kosr_hoplabel::HopLabels;
use kosr_pathfinding::{Dir, ResumableDijkstra};

use crate::inverted::CategoryIndexSet;

/// A source of x-th nearest neighbors within categories.
///
/// `x` is **1-based** (`x = 1` is the nearest neighbor), matching the
/// paper's notation. Implementations must return neighbors of strictly
/// nondecreasing distance as `x` grows and must be memoised: repeated calls
/// with the same arguments are cheap and stable.
pub trait NearestNeighbors {
    /// The `x`-th vertex of category `c` by distance from `v`
    /// (`None` when fewer than `x` members are reachable).
    fn find_nn(&mut self, v: VertexId, c: CategoryId, x: usize) -> Option<(VertexId, Weight)>;

    /// Number of *fresh* NN computations so far (the paper's "# NN queries";
    /// `NL` cache hits are excluded).
    fn nn_queries(&self) -> u64;

    /// Resets the NN-query counter (per-query accounting).
    fn reset_counters(&mut self);
}

// ---------------------------------------------------------------------------
// Label-based provider (Algorithm 3)
// ---------------------------------------------------------------------------

/// Per-(v, C) stream state: `NL`, `NQ` and the per-hub cursors `KV`.
#[derive(Clone, Debug, Default)]
struct NnState {
    /// `NL`: neighbors found so far, ascending distance.
    nl: Vec<(VertexId, Weight)>,
    /// `NQ`: candidate frontier — (total cost, member, hub slot).
    nq: BinaryHeap<Reverse<(Weight, VertexId, u32)>>,
    /// Matching hubs: `(d(v, hub), hub)` for each `Lout(v)` entry with a
    /// non-empty inverted list.
    hubs: Vec<(Weight, VertexId)>,
    /// `KV`: next unscanned position in each hub's inverted list.
    cursors: Vec<u32>,
    /// Members already emitted (duplicate suppression across hubs).
    found: FxHashSet<VertexId>,
    started: bool,
}

/// Algorithm 3 over the in-memory inverted label index.
pub struct LabelNn<'a> {
    labels: &'a HopLabels,
    inverted: &'a CategoryIndexSet,
    states: FxHashMap<(VertexId, CategoryId), NnState>,
    nn_queries: u64,
}

impl<'a> LabelNn<'a> {
    /// Creates a provider over prebuilt labels and inverted indexes.
    pub fn new(labels: &'a HopLabels, inverted: &'a CategoryIndexSet) -> Self {
        LabelNn {
            labels,
            inverted,
            states: FxHashMap::default(),
            nn_queries: 0,
        }
    }

    fn state_compute_next(
        state: &mut NnState,
        labels: &HopLabels,
        inverted: &CategoryIndexSet,
        v: VertexId,
        c: CategoryId,
    ) -> Option<(VertexId, Weight)> {
        let il = inverted.category(c);
        if !state.started {
            state.started = true;
            // Lines 6-10: seed NQ with the head of every matching list.
            for (hub, dvh) in labels.lout(v).iter() {
                if let Some(list) = il.list(hub) {
                    let slot = state.hubs.len() as u32;
                    state.hubs.push((dvh, hub));
                    state.cursors.push(1);
                    let (m, dm) = list[0];
                    state.nq.push(Reverse((dvh.saturating_add(dm), m, slot)));
                }
            }
        }
        // Lines 11-18: pop the global minimum; advance that hub's cursor past
        // already-found members; suppress duplicates of the popped member.
        loop {
            let Reverse((total, member, slot)) = state.nq.pop()?;
            // Advance the stream the popped candidate came from.
            let (dvh, hub) = state.hubs[slot as usize];
            if let Some(list) = il.list(hub) {
                let mut pos = state.cursors[slot as usize] as usize;
                while pos < list.len() && state.found.contains(&list[pos].0) {
                    pos += 1;
                }
                if pos < list.len() {
                    let (m, dm) = list[pos];
                    state.nq.push(Reverse((dvh.saturating_add(dm), m, slot)));
                    state.cursors[slot as usize] = (pos + 1) as u32;
                } else {
                    state.cursors[slot as usize] = u32::MAX; // the paper's '-'
                }
            }
            if state.found.insert(member) {
                state.nl.push((member, total));
                return Some((member, total));
            }
        }
    }
}

impl NearestNeighbors for LabelNn<'_> {
    fn find_nn(&mut self, v: VertexId, c: CategoryId, x: usize) -> Option<(VertexId, Weight)> {
        debug_assert!(x >= 1, "x is 1-based");
        let state = self.states.entry((v, c)).or_default();
        // Lines 4-5: NL cache hit (not counted as an NN query).
        if state.nl.len() >= x {
            return Some(state.nl[x - 1]);
        }
        while state.nl.len() < x {
            self.nn_queries += 1;
            Self::state_compute_next(state, self.labels, self.inverted, v, c)?;
        }
        Some(state.nl[x - 1])
    }

    fn nn_queries(&self) -> u64 {
        self.nn_queries
    }

    fn reset_counters(&mut self) {
        self.nn_queries = 0;
    }
}

// ---------------------------------------------------------------------------
// Dijkstra-based provider (the *-Dij baselines)
// ---------------------------------------------------------------------------

/// Per-(v, C) filter state over the shared resumable search.
#[derive(Clone, Debug, Default)]
struct DijState {
    nl: Vec<(VertexId, Weight)>,
    /// Next index of the shared settled list to inspect.
    scan_pos: usize,
}

/// Nearest neighbors via resumable Dijkstra searches (no index).
pub struct DijkstraNn<'a> {
    g: &'a Graph,
    searches: FxHashMap<VertexId, ResumableDijkstra>,
    states: FxHashMap<(VertexId, CategoryId), DijState>,
    nn_queries: u64,
}

impl<'a> DijkstraNn<'a> {
    /// Creates a provider over the raw graph.
    pub fn new(g: &'a Graph) -> Self {
        DijkstraNn {
            g,
            searches: FxHashMap::default(),
            states: FxHashMap::default(),
            nn_queries: 0,
        }
    }
}

impl NearestNeighbors for DijkstraNn<'_> {
    fn find_nn(&mut self, v: VertexId, c: CategoryId, x: usize) -> Option<(VertexId, Weight)> {
        debug_assert!(x >= 1, "x is 1-based");
        let state = self.states.entry((v, c)).or_default();
        if state.nl.len() >= x {
            return Some(state.nl[x - 1]);
        }
        let search = self
            .searches
            .entry(v)
            .or_insert_with(|| ResumableDijkstra::new(v, Dir::Forward));
        while state.nl.len() < x {
            self.nn_queries += 1;
            loop {
                let (u, d) = search.settled_at(self.g, state.scan_pos)?;
                state.scan_pos += 1;
                if self.g.categories().has_category(u, c) {
                    state.nl.push((u, d));
                    break;
                }
            }
        }
        Some(state.nl[x - 1])
    }

    fn nn_queries(&self) -> u64 {
        self.nn_queries
    }

    fn reset_counters(&mut self) {
        self.nn_queries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;
    use kosr_hoplabel::HubOrder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Random digraph with two categories scattered around.
    fn setup(seed: u64) -> (Graph, HopLabels, CategoryIndexSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 40u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..160 {
            let a = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if a != c {
                b.add_edge(v(a), v(c), rng.gen_range(1..30));
            }
        }
        let ca = b.categories_mut().add_category("A");
        let cb = b.categories_mut().add_category("B");
        for i in 0..n {
            if rng.gen_bool(0.3) {
                b.categories_mut().insert(v(i), ca);
            }
            if rng.gen_bool(0.2) {
                b.categories_mut().insert(v(i), cb);
            }
        }
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, g.categories());
        (g, labels, inverted)
    }

    /// Ground truth: all members sorted by (distance, id), reachable only.
    fn brute_nn(
        g: &Graph,
        labels: &HopLabels,
        s: VertexId,
        c: CategoryId,
    ) -> Vec<(VertexId, Weight)> {
        let mut all: Vec<(VertexId, Weight)> = g
            .categories()
            .vertices_of(c)
            .iter()
            .map(|&m| (m, labels.distance(s, m)))
            .filter(|&(_, d)| kosr_graph::is_finite(d))
            .collect();
        all.sort_unstable_by_key(|&(m, d)| (d, m));
        all
    }

    #[test]
    fn label_nn_yields_true_distance_sequence() {
        for seed in 0..4 {
            let (g, labels, inverted) = setup(seed);
            let mut nn = LabelNn::new(&labels, &inverted);
            for s in 0..40u32 {
                for cat in [CategoryId(0), CategoryId(1)] {
                    let want = brute_nn(&g, &labels, v(s), cat);
                    for (i, &(wm, wd)) in want.iter().enumerate() {
                        let (m, d) = nn
                            .find_nn(v(s), cat, i + 1)
                            .unwrap_or_else(|| panic!("seed {seed} s {s} x {}", i + 1));
                        assert_eq!(d, wd, "seed {seed} s={s} x={}", i + 1);
                        // Ties may reorder vertices; distances must agree.
                        let _ = (m, wm);
                    }
                    assert_eq!(
                        nn.find_nn(v(s), cat, want.len() + 1),
                        None,
                        "stream must end after {} members",
                        want.len()
                    );
                }
            }
        }
    }

    #[test]
    fn dijkstra_nn_matches_label_nn_distances() {
        let (g, labels, inverted) = setup(7);
        let mut a = LabelNn::new(&labels, &inverted);
        let mut b = DijkstraNn::new(&g);
        for s in 0..40u32 {
            for cat in [CategoryId(0), CategoryId(1)] {
                for x in 1..=5usize {
                    let da = a.find_nn(v(s), cat, x).map(|(_, d)| d);
                    let db = b.find_nn(v(s), cat, x).map(|(_, d)| d);
                    assert_eq!(da, db, "s={s} cat={cat:?} x={x}");
                }
            }
        }
    }

    #[test]
    fn streams_are_nondecreasing_and_duplicate_free() {
        let (g, labels, inverted) = setup(3);
        let _ = g;
        let mut nn = LabelNn::new(&labels, &inverted);
        for s in [0u32, 5, 11] {
            let mut seen = FxHashSet::default();
            let mut last = 0;
            let mut x = 1;
            while let Some((m, d)) = nn.find_nn(v(s), CategoryId(0), x) {
                assert!(d >= last);
                assert!(seen.insert(m), "duplicate member {m:?}");
                last = d;
                x += 1;
            }
        }
    }

    #[test]
    fn nl_cache_hits_are_not_counted() {
        let (_, labels, inverted) = setup(5);
        let mut nn = LabelNn::new(&labels, &inverted);
        nn.find_nn(v(0), CategoryId(0), 3);
        let after_first = nn.nn_queries();
        // Re-request the same and smaller x: pure cache hits.
        nn.find_nn(v(0), CategoryId(0), 3);
        nn.find_nn(v(0), CategoryId(0), 1);
        nn.find_nn(v(0), CategoryId(0), 2);
        assert_eq!(nn.nn_queries(), after_first);
        nn.reset_counters();
        assert_eq!(nn.nn_queries(), 0);
    }

    #[test]
    fn member_source_returns_itself_first() {
        let (g, labels, inverted) = setup(11);
        let cat = CategoryId(0);
        // Find a vertex that belongs to the category.
        let member = g.categories().vertices_of(cat)[0];
        let mut nn = LabelNn::new(&labels, &inverted);
        let (m, d) = nn.find_nn(member, cat, 1).unwrap();
        assert_eq!(d, 0);
        assert_eq!(m, member);
        let mut dij = DijkstraNn::new(&g);
        let (m2, d2) = dij.find_nn(member, cat, 1).unwrap();
        assert_eq!((m2, d2), (member, 0));
    }

    #[test]
    fn empty_category_yields_none() {
        let (g, labels, _) = setup(13);
        let mut cats = g.categories().clone();
        let empty = cats.add_category("EMPTY");
        let inverted = CategoryIndexSet::build(&labels, &cats);
        let mut nn = LabelNn::new(&labels, &inverted);
        assert_eq!(nn.find_nn(v(0), empty, 1), None);
        let mut dij = DijkstraNn::new(&g);
        assert_eq!(dij.find_nn(v(0), empty, 1), None);
    }
}
