//! The shard **snapshot codec**: one self-contained binary blob holding a
//! graph (structure + categories) and its 2-hop labels — everything a cold
//! replica needs to reconstruct an `IndexedGraph` without redoing the
//! expensive preprocessing of Table IX.
//!
//! The transport layer ships these blobs to joining replicas; the inverted
//! label indexes are *not* serialized because they are a pure function of
//! `(labels, categories)` and rebuilding them from the decoded parts is a
//! cheap grouping pass (no graph searches) that reproduces the maintained
//! indexes entry for entry.
//!
//! Layout (little endian):
//! ```text
//! magic    : 8 bytes = b"KOSRSNP\0"
//! version  : u8 (currently 1)
//! n, m     : u32, u32
//! edges    : m × (u32 from, u32 to, u64 weight)
//! ncats    : u32
//! category : ncats × (u32 name_len, name bytes, u32 members, u32 × members)
//! labels   : u64 byte length + the `kosr-hoplabel` codec blob
//! ```
//!
//! Decoding is **total**: arbitrary (corrupt, truncated, adversarial) input
//! produces a typed [`SnapshotError`], never a panic — the transport fuzz
//! suite enforces this.

use bytes::{Buf, BufMut};
use kosr_graph::{Graph, GraphBuilder, VertexId};
use kosr_hoplabel::codec::{self, CodecError};
use kosr_hoplabel::HopLabels;

pub(crate) const MAGIC: &[u8; 8] = b"KOSRSNP\0";

/// The original (v1) snapshot format version. This build *writes* the
/// flat-arena v2 format by default ([`crate::arena`]) and keeps the v1
/// codec for peers that never learned v2; both decode here via
/// [`crate::arena::blob_version`] dispatch.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Why a snapshot blob could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The magic header is absent or wrong.
    BadMagic,
    /// The version byte names a format this build does not understand.
    UnsupportedVersion {
        /// The version byte found in the blob.
        found: u8,
    },
    /// The blob ended before its declared contents.
    Truncated,
    /// The contents are internally inconsistent (out-of-range ids, bad
    /// UTF-8 names, trailing bytes, …).
    Corrupt(&'static str),
    /// The embedded label blob failed to decode.
    Labels(CodecError),
    /// The world does not fit the requested format (v1 counts are `u32`;
    /// a graph of `2^32` or more edges must ship as v2). Encoding-side
    /// only — the alternative was silent `as u32` truncation.
    TooLarge,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Labels(e) => write!(f, "corrupt label blob: {e}"),
            SnapshotError::TooLarge => {
                write!(f, "snapshot too large for format v1 (2^32 or more edges)")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> SnapshotError {
        SnapshotError::Labels(e)
    }
}

/// Little-endian reader over the shim's checked `try_get_*` reads: every
/// accessor reports [`SnapshotError::Truncated`] instead of panicking on
/// short input.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        self.0.try_get_u8().ok_or(SnapshotError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        self.0.try_get_u32_le().ok_or(SnapshotError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        self.0.try_get_u64_le().ok_or(SnapshotError::Truncated)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        if self.0.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.0.split_at(len);
        self.0 = tail;
        Ok(head)
    }

    /// Declared element count, refused up front when the buffer cannot
    /// possibly hold it — keeps adversarial counts from driving huge
    /// allocations before the truncation is discovered.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if self.0.remaining() < n.saturating_mul(elem_bytes) {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }
}

/// Serializes `graph` + `labels` into one **v1** snapshot blob.
///
/// Refuses (typed, [`SnapshotError::TooLarge`]) any world whose edge
/// count does not fit the format's `u32` counters instead of silently
/// truncating it; such worlds ship as v2 ([`crate::arena`]), whose counts
/// are `u64` throughout.
pub fn encode_snapshot(graph: &Graph, labels: &HopLabels) -> Result<Vec<u8>, SnapshotError> {
    if graph.num_edges() > u32::MAX as usize || graph.num_vertices() > u32::MAX as usize {
        return Err(SnapshotError::TooLarge);
    }
    let mut out = Vec::with_capacity(64 + graph.num_edges() * 16 + labels.size_bytes());
    out.put_slice(MAGIC);
    out.put_u8(SNAPSHOT_VERSION);
    out.put_u32_le(graph.num_vertices() as u32);
    out.put_u32_le(graph.num_edges() as u32);
    for u in graph.vertices() {
        for (v, w) in graph.out_edges(u) {
            out.put_u32_le(u.0);
            out.put_u32_le(v.0);
            out.put_u64_le(w);
        }
    }
    let cats = graph.categories();
    out.put_u32_le(cats.num_categories() as u32);
    for c in 0..cats.num_categories() {
        let c = kosr_graph::CategoryId(c as u32);
        let name = cats.name(c).as_bytes();
        out.put_u32_le(name.len() as u32);
        out.put_slice(name);
        let members = cats.vertices_of(c);
        out.put_u32_le(members.len() as u32);
        for &m in members {
            out.put_u32_le(m.0);
        }
    }
    let label_blob = codec::encode(labels);
    out.put_u64_le(label_blob.len() as u64);
    out.extend_from_slice(&label_blob);
    Ok(out)
}

/// Decodes a snapshot blob back into its graph and labels.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Graph, HopLabels), SnapshotError> {
    let mut r = Reader(bytes);
    if r.bytes(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let n = r.u32()? as usize;
    // The vertex count has no per-vertex payload in the graph section, but
    // the embedded label blob must hold 2n length-prefixed sets (≥ 8n
    // bytes) — so a blob shorter than that is lying about `n`. Checking
    // here keeps a crafted 21-byte header from driving an `n`-sized
    // allocation before the truncation is discovered.
    if n.saturating_mul(8) > bytes.len() {
        return Err(SnapshotError::Truncated);
    }
    let m = r.count(16)?;
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    for _ in 0..m {
        let u = r.u32()?;
        let v = r.u32()?;
        let w = r.u64()?;
        if u as usize >= n || v as usize >= n {
            return Err(SnapshotError::Corrupt("edge endpoint out of range"));
        }
        b.add_edge(VertexId(u), VertexId(v), w);
    }
    let ncats = r.count(8)?;
    for _ in 0..ncats {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|_| SnapshotError::Corrupt("category name is not UTF-8"))?
            .to_owned();
        let c = b.categories_mut().add_category(name);
        let members = r.count(4)?;
        for _ in 0..members {
            let v = r.u32()?;
            if v as usize >= n {
                return Err(SnapshotError::Corrupt("category member out of range"));
            }
            b.categories_mut().insert(VertexId(v), c);
        }
    }
    let label_len = r.u64()?;
    let label_len = usize::try_from(label_len)
        .map_err(|_| SnapshotError::Corrupt("label blob length overflows"))?;
    let labels = codec::decode(r.bytes(label_len)?)?;
    if labels.num_vertices() != n {
        return Err(SnapshotError::Corrupt("label vertex count mismatch"));
    }
    if r.0.has_remaining() {
        return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
    }
    Ok((b.build(), labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::CategoryId;
    use kosr_hoplabel::HubOrder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn world(seed: u64) -> (Graph, HopLabels) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30;
        let mut b = GraphBuilder::new(n);
        for _ in 0..4 * n {
            let a = rng.gen_range(0..n as u32);
            let c = rng.gen_range(0..n as u32);
            if a != c {
                b.add_edge(v(a), v(c), rng.gen_range(1..25));
            }
        }
        let ca = b.categories_mut().add_category("CAFÉ"); // non-ASCII name
        let cb = b.categories_mut().add_category("B");
        b.categories_mut().add_category("EMPTY");
        for i in 0..n as u32 {
            if i % 3 == 0 {
                b.categories_mut().insert(v(i), ca);
            }
            if i % 5 == 1 {
                b.categories_mut().insert(v(i), cb);
            }
        }
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        (g, labels)
    }

    #[test]
    fn roundtrip_preserves_graph_and_labels() {
        let (g, labels) = world(7);
        let blob = encode_snapshot(&g, &labels).unwrap();
        let (g2, labels2) = decode_snapshot(&blob).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(
                g2.out_edges(u).collect::<Vec<_>>(),
                g.out_edges(u).collect::<Vec<_>>()
            );
        }
        assert_eq!(
            g2.categories().num_categories(),
            g.categories().num_categories()
        );
        for c in 0..g.categories().num_categories() {
            let c = CategoryId(c as u32);
            assert_eq!(g2.categories().name(c), g.categories().name(c));
            assert_eq!(
                g2.categories().vertices_of(c),
                g.categories().vertices_of(c)
            );
        }
        assert_eq!(labels2, labels);
        // Deterministic bytes: re-encoding the decoded world is identical.
        assert_eq!(encode_snapshot(&g2, &labels2).unwrap(), blob);
    }

    #[test]
    fn truncation_yields_typed_errors_at_every_cut() {
        let (g, labels) = world(11);
        let blob = encode_snapshot(&g, &labels).unwrap();
        for cut in 0..blob.len() {
            let err = decode_snapshot(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic
                        | SnapshotError::Truncated
                        | SnapshotError::Labels(CodecError::Truncated)
                        | SnapshotError::Labels(CodecError::BadMagic)
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn version_and_magic_mismatches_are_typed() {
        let (g, labels) = world(3);
        let mut blob = encode_snapshot(&g, &labels).unwrap();
        blob[0] ^= 0xFF;
        assert_eq!(decode_snapshot(&blob).unwrap_err(), SnapshotError::BadMagic);
        blob[0] ^= 0xFF;
        blob[8] = 99;
        assert_eq!(
            decode_snapshot(&blob).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn corrupt_ids_and_trailing_bytes_are_typed() {
        let (g, labels) = world(5);
        let mut blob = encode_snapshot(&g, &labels).unwrap();
        blob.push(0);
        assert!(matches!(
            decode_snapshot(&blob),
            Err(SnapshotError::Corrupt(_))
        ));
        blob.pop();
        // First edge's source → out of range.
        let edge_base = 8 + 1 + 4 + 4;
        blob[edge_base..edge_base + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_snapshot(&blob).unwrap_err(),
            SnapshotError::Corrupt("edge endpoint out of range")
        );
    }

    #[test]
    fn lying_vertex_counts_refused_before_allocating() {
        // A crafted header claiming u32::MAX vertices must be a typed
        // error, not a ~100 GB allocation attempt.
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.push(SNAPSHOT_VERSION);
        blob.extend_from_slice(&u32::MAX.to_le_bytes()); // n
        blob.extend_from_slice(&0u32.to_le_bytes()); // m
        assert_eq!(
            decode_snapshot(&blob).unwrap_err(),
            SnapshotError::Truncated
        );
        // Same hole one layer down: the embedded label codec's own count.
        let mut label_blob = Vec::new();
        label_blob.extend_from_slice(b"KOSRHL1\0");
        label_blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            kosr_hoplabel::codec::decode(&label_blob).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let mut rng = StdRng::seed_from_u64(0xF422);
        for len in 0..200 {
            let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let _ = decode_snapshot(&junk); // must return, not panic
                                            // Junk behind a valid header prefix exercises the body paths.
            let mut framed = Vec::new();
            framed.extend_from_slice(MAGIC);
            framed.push(SNAPSHOT_VERSION);
            framed.extend_from_slice(&junk);
            let _ = decode_snapshot(&framed);
        }
    }

    #[test]
    fn errors_render() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::Corrupt("x").to_string().contains('x'));
        assert!(SnapshotError::from(CodecError::BadMagic)
            .to_string()
            .contains("label"));
    }
}
