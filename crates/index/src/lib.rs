//! # kosr-index
//!
//! The query-time index layer of the paper (§IV): inverted label indexes and
//! the two neighbor-stream primitives every KOSR algorithm is built on.
//!
//! * [`InvertedLabelIndex`] / [`CategoryIndexSet`] — `IL(Ci)`: per-category,
//!   per-hub sorted inverted lists over the 2-hop labels, with the dynamic
//!   category updates of §IV-C.
//! * [`NearestNeighbors`] — the `FindNN` abstraction (Algorithm 3), provided
//!   by [`LabelNn`] (inverted-index streams) and [`DijkstraNn`] (the `*-Dij`
//!   baselines' resumable searches).
//! * [`NenFinder`] — `FindNEN` (Algorithm 4): nearest *estimated* neighbors
//!   ordered by `dis(v,u) + dis(u,t)` for StarKOSR.
//! * [`TargetDistance`] — fixed-destination oracles ([`LabelTarget`],
//!   [`DijkstraTarget`]) behind the A* estimation.
//! * [`disk`] — the SK-DB on-disk layout (per-category segments + offset
//!   directory standing in for the paper's B+-tree).
//! * [`snapshot`] — the v1 shard snapshot codec: graph + labels as one
//!   blob, shipped to cold replicas by the transport layer.
//! * [`arena`] — the v2 **flat-arena** snapshot: offset-addressed slabs
//!   (including the inverted indexes) whose install is O(bytes) of
//!   bounds-checked reinterpretation instead of a rebuild.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bounds;
pub mod disk;
mod inverted;
mod nen;
mod nn;
pub mod snapshot;
mod target;

pub use bounds::{CategoryBounds, SeqBounds};
pub use inverted::{CategoryIndexSet, InvertedLabelIndex, InvertedStats};
pub use nen::{EstimatedNeighbor, NenFinder};
pub use nn::{DijkstraNn, LabelNn, NearestNeighbors};
pub use target::{DijkstraTarget, LabelTarget, TargetDistance};
