//! The **v2 flat-arena snapshot codec**: the whole index — graph CSR,
//! 2-hop labels, category tables, *and* the inverted label indexes — laid
//! out as offset-addressed slabs so a cold replica's install is O(bytes)
//! of bounds-checked reinterpretation instead of the v1 rebuild (per-edge
//! builder inserts, per-entry label inserts, and a full inverted-index
//! grouping pass over every category).
//!
//! Layout (little endian; all counts `u64`):
//! ```text
//! magic            : 8 bytes = b"KOSRSNP\0" (same as v1)
//! version          : u8 = 2
//! counts           : 9 × u64 — n, m, ncats, lin_tot, lout_tot,
//!                    name_tot, memb_tot, hub_tot, inv_tot
//! edge_offsets     : (n+1) × u32          CSR prefix sums
//! edge_targets     : m × u32              rows strictly increasing
//! edge_weights     : m × u64
//! lin slab         : (n+1)×u64 + lin_tot×(u32 hub + u64 dist)   [`flat`]
//! lout slab        : (n+1)×u64 + lout_tot×(u32 + u64)
//! name_offsets     : (ncats+1) × u64
//! name_bytes       : name_tot bytes       UTF-8 per category
//! memb_offsets     : (ncats+1) × u64
//! memb_verts       : memb_tot × u32       strictly increasing per category
//! inv_cat_offsets  : (ncats+1) × u64      hubs per category
//! inv_hubs         : hub_tot × u32        strictly increasing per category
//! inv_list_offsets : (hub_tot+1) × u64    entries per hub list
//! inv_members      : inv_tot × u32
//! inv_dists        : inv_tot × u64        lists sorted by (dist, member)
//! ```
//!
//! [`FlatSnapshot::validate`] is **total** on adversarial bytes: the full
//! byte length is recomputed from the declared counts with checked
//! arithmetic and compared *before any allocation*, then every section
//! invariant is checked in one no-allocation pass. After that, conversion
//! into owned structures ([`FlatSnapshot::graph`], [`FlatSnapshot::labels`],
//! [`FlatSnapshot::inverted`]) is pure slicing — no sorting, no grouping,
//! no hash-map-per-entry work.
//!
//! [`flat`]: kosr_hoplabel::flat

use bytes::BufMut;
use kosr_graph::{CategoryId, CategoryTable, FxHashMap, Graph, VertexId, Weight};
use kosr_hoplabel::{flat, flat::FlatError, HopLabels};

use crate::bounds::CategoryBounds;
use crate::inverted::{CategoryIndexSet, InvertedLabelIndex};
use crate::snapshot::{SnapshotError, MAGIC};

/// The flat-arena snapshot format version byte.
pub const FLAT_SNAPSHOT_VERSION: u8 = 2;

/// Magic opening the optional trailing category-bounds section.
const BOUNDS_MAGIC: &[u8; 4] = b"LBND";

/// Bytes before the first section: magic + version + 9 × u64 counts.
const HEADER_LEN: usize = 8 + 1 + 9 * 8;

impl From<FlatError> for SnapshotError {
    fn from(e: FlatError) -> SnapshotError {
        match e {
            FlatError::Truncated => SnapshotError::Truncated,
            FlatError::Corrupt(what) => SnapshotError::Corrupt(what),
        }
    }
}

/// The snapshot-format version byte of a blob, if it bears the snapshot
/// magic — the dispatch point between the v1 and v2 decoders. `None`
/// means "not a snapshot at all" (callers fall through to the v1 decoder
/// for its `BadMagic` error).
pub fn blob_version(bytes: &[u8]) -> Option<u8> {
    if bytes.len() > 8 && &bytes[..8] == MAGIC {
        Some(bytes[8])
    } else {
        None
    }
}

/// The `(hub_tot, inv_tot)` counts a v2 header declares for its
/// inverted-index arenas — the list and entry totals across every
/// category. Only meaningful for a blob that [`decode_snapshot_v2`] has
/// already accepted (the decode proves the header honest); callers use it
/// to report selectivity stats without re-walking the freshly built
/// indexes. `None` when the blob is not a v2 snapshot or too short to
/// carry a full header.
pub fn blob_inverted_counts(bytes: &[u8]) -> Option<(u64, u64)> {
    if blob_version(bytes) != Some(FLAT_SNAPSHOT_VERSION) || bytes.len() < HEADER_LEN {
        return None;
    }
    let c = &bytes[9..HEADER_LEN];
    Some((read_u64(c, 7), read_u64(c, 8)))
}

/// The nine declared section counts of a v2 header.
#[derive(Clone, Copy, Debug)]
struct Counts {
    n: u64,
    m: u64,
    ncats: u64,
    lin_tot: u64,
    lout_tot: u64,
    name_tot: u64,
    memb_tot: u64,
    hub_tot: u64,
    inv_tot: u64,
}

impl Counts {
    /// Byte length of each section, in layout order. `None` when the
    /// arithmetic overflows — a lying header, refused before any
    /// allocation.
    fn section_lens(&self) -> Option<[usize; 14]> {
        let per = |count: u64, elem: u64| -> Option<usize> {
            usize::try_from(count.checked_mul(elem)?).ok()
        };
        let plus1 = |count: u64, elem: u64| per(count.checked_add(1)?, elem);
        Some([
            plus1(self.n, 4)?,                                             // edge_offsets
            per(self.m, 4)?,                                               // edge_targets
            per(self.m, 8)?,                                               // edge_weights
            flat::slab_len(usize::try_from(self.n).ok()?, self.lin_tot)?,  // lin
            flat::slab_len(usize::try_from(self.n).ok()?, self.lout_tot)?, // lout
            plus1(self.ncats, 8)?,                                         // name_offsets
            usize::try_from(self.name_tot).ok()?,                          // name_bytes
            plus1(self.ncats, 8)?,                                         // memb_offsets
            per(self.memb_tot, 4)?,                                        // memb_verts
            plus1(self.ncats, 8)?,                                         // inv_cat_offsets
            per(self.hub_tot, 4)?,                                         // inv_hubs
            plus1(self.hub_tot, 8)?,                                       // inv_list_offsets
            per(self.inv_tot, 4)?,                                         // inv_members
            per(self.inv_tot, 8)?,                                         // inv_dists
        ])
    }

    /// Total blob length implied by the counts.
    fn expected_len(&self) -> Option<usize> {
        self.section_lens()?
            .iter()
            .try_fold(HEADER_LEN, |acc, &s| acc.checked_add(s))
    }
}

#[inline]
fn read_u32(region: &[u8], idx: usize) -> u32 {
    let b: [u8; 4] = region[idx * 4..idx * 4 + 4].try_into().unwrap();
    u32::from_le_bytes(b)
}

#[inline]
fn read_u64(region: &[u8], idx: usize) -> u64 {
    let b: [u8; 8] = region[idx * 8..idx * 8 + 8].try_into().unwrap();
    u64::from_le_bytes(b)
}

/// Checks that `offsets` (a `(k+1) × u64` prefix-sum region) starts at 0,
/// ends at `total`, and never decreases. Returns nothing beyond the typed
/// error — rows are walked by the caller.
fn check_offsets(offsets: &[u8], k: usize, total: u64) -> Result<(), SnapshotError> {
    if read_u64(offsets, 0) != 0 {
        return Err(SnapshotError::Corrupt("section offsets do not start at 0"));
    }
    if read_u64(offsets, k) != total {
        return Err(SnapshotError::Corrupt(
            "section offsets do not end at the declared total",
        ));
    }
    let mut prev = 0u64;
    for i in 1..=k {
        let next = read_u64(offsets, i);
        if next < prev || next > total {
            return Err(SnapshotError::Corrupt("section offsets not monotone"));
        }
        prev = next;
    }
    Ok(())
}

/// A validated zero-copy view over a v2 snapshot blob.
///
/// Construction ([`FlatSnapshot::validate`]) is total: any byte string —
/// truncated, padded, bit-flipped, or adversarially crafted — yields a
/// typed [`SnapshotError`], never a panic and never an attacker-sized
/// allocation. Every accessor on a constructed view is a pure slice walk.
pub struct FlatSnapshot<'a> {
    n: usize,
    m: usize,
    ncats: usize,
    lin_tot: u64,
    lout_tot: u64,
    edge_offsets: &'a [u8],
    edge_targets: &'a [u8],
    edge_weights: &'a [u8],
    lin: &'a [u8],
    lout: &'a [u8],
    name_offsets: &'a [u8],
    name_bytes: &'a [u8],
    memb_offsets: &'a [u8],
    memb_verts: &'a [u8],
    inv_cat_offsets: &'a [u8],
    inv_hubs: &'a [u8],
    inv_list_offsets: &'a [u8],
    inv_members: &'a [u8],
    inv_dists: &'a [u8],
}

impl<'a> FlatSnapshot<'a> {
    /// Parses and fully validates a v2 blob without building anything.
    pub fn validate(bytes: &'a [u8]) -> Result<FlatSnapshot<'a>, SnapshotError> {
        let view = FlatSnapshot::validate_structure(bytes)?;
        view.check_edges(view.m as u64)?;
        flat::validate_sets(view.n, view.lin_tot, view.n as u32, view.lin)?;
        flat::validate_sets(view.n, view.lout_tot, view.n as u32, view.lout)?;
        view.check_categories()?;
        view.check_inverted()?;
        Ok(view)
    }

    /// The structural half of [`FlatSnapshot::validate`]: header, counts,
    /// whole-blob length (checked arithmetic, before any allocation),
    /// section slicing, and every **offset array** — everything the
    /// materialisers need to be panic-free — but none of the per-entry
    /// content walks. The fused install path ([`decode_snapshot_v2`])
    /// starts here and performs the content checks *while copying*, so the
    /// entry arenas are walked once instead of twice.
    fn validate_structure(bytes: &'a [u8]) -> Result<FlatSnapshot<'a>, SnapshotError> {
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let version = bytes[8];
        if version != FLAT_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let c = &bytes[9..HEADER_LEN];
        let counts = Counts {
            n: read_u64(c, 0),
            m: read_u64(c, 1),
            ncats: read_u64(c, 2),
            lin_tot: read_u64(c, 3),
            lout_tot: read_u64(c, 4),
            name_tot: read_u64(c, 5),
            memb_tot: read_u64(c, 6),
            hub_tot: read_u64(c, 7),
            inv_tot: read_u64(c, 8),
        };
        // Vertex and edge ids are u32 throughout the index layer; a header
        // claiming more is either lying or a world this build cannot hold.
        if counts.n > u32::MAX as u64 || counts.m > u32::MAX as u64 {
            return Err(SnapshotError::Corrupt("vertex/edge count exceeds u32"));
        }
        // The whole-blob length check comes before anything else touches
        // the counts: a crafted header cannot drive an allocation, and a
        // short blob is reported as truncation rather than corruption.
        let lens = counts.section_lens().ok_or(SnapshotError::Truncated)?;
        let expect = counts.expected_len().ok_or(SnapshotError::Truncated)?;
        if bytes.len() < expect {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > expect {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }

        let mut cursor = HEADER_LEN;
        let mut take = |len: usize| {
            let s = &bytes[cursor..cursor + len];
            cursor += len;
            s
        };
        let view = FlatSnapshot {
            n: counts.n as usize,
            m: counts.m as usize,
            ncats: usize::try_from(counts.ncats).map_err(|_| SnapshotError::Truncated)?,
            lin_tot: counts.lin_tot,
            lout_tot: counts.lout_tot,
            edge_offsets: take(lens[0]),
            edge_targets: take(lens[1]),
            edge_weights: take(lens[2]),
            lin: take(lens[3]),
            lout: take(lens[4]),
            name_offsets: take(lens[5]),
            name_bytes: take(lens[6]),
            memb_offsets: take(lens[7]),
            memb_verts: take(lens[8]),
            inv_cat_offsets: take(lens[9]),
            inv_hubs: take(lens[10]),
            inv_list_offsets: take(lens[11]),
            inv_members: take(lens[12]),
            inv_dists: take(lens[13]),
        };
        // The offset arrays gate every downstream slice: checking them
        // here makes all materialisers total even before the content
        // walks run. (They are O(n + ncats + hub_tot), not per-entry.)
        check_offsets(view.name_offsets, view.ncats, counts.name_tot)?;
        check_offsets(view.memb_offsets, view.ncats, counts.memb_tot)?;
        check_offsets(view.inv_cat_offsets, view.ncats, counts.hub_tot)?;
        check_offsets(
            view.inv_list_offsets,
            usize::try_from(counts.hub_tot).map_err(|_| SnapshotError::Truncated)?,
            counts.inv_tot,
        )?;
        Ok(view)
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.ncats
    }

    fn check_edges(&self, m: u64) -> Result<(), SnapshotError> {
        if read_u32(self.edge_offsets, 0) != 0 || read_u32(self.edge_offsets, self.n) as u64 != m {
            return Err(SnapshotError::Corrupt("edge offsets do not span the edges"));
        }
        let mut prev = 0u32;
        for u in 0..self.n {
            let next = read_u32(self.edge_offsets, u + 1);
            if next < prev || next as u64 > m {
                return Err(SnapshotError::Corrupt("edge offsets not monotone"));
            }
            let mut prev_t: Option<u32> = None;
            for e in prev as usize..next as usize {
                let t = read_u32(self.edge_targets, e);
                if t as usize >= self.n {
                    return Err(SnapshotError::Corrupt("edge target out of range"));
                }
                if t as usize == u {
                    return Err(SnapshotError::Corrupt("self-loop edge"));
                }
                if prev_t.is_some_and(|p| p >= t) {
                    return Err(SnapshotError::Corrupt("adjacency row not sorted"));
                }
                prev_t = Some(t);
            }
            prev = next;
        }
        Ok(())
    }

    /// Per-entry category checks; the offset arrays were already checked
    /// by [`FlatSnapshot::validate_structure`].
    fn check_categories(&self) -> Result<(), SnapshotError> {
        for c in 0..self.ncats {
            let (lo, hi) = (
                read_u64(self.name_offsets, c) as usize,
                read_u64(self.name_offsets, c + 1) as usize,
            );
            if std::str::from_utf8(&self.name_bytes[lo..hi]).is_err() {
                return Err(SnapshotError::Corrupt("category name is not UTF-8"));
            }
            let (lo, hi) = (
                read_u64(self.memb_offsets, c) as usize,
                read_u64(self.memb_offsets, c + 1) as usize,
            );
            let mut prev: Option<u32> = None;
            for e in lo..hi {
                let v = read_u32(self.memb_verts, e);
                if v as usize >= self.n {
                    return Err(SnapshotError::Corrupt("category member out of range"));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(SnapshotError::Corrupt("category members not sorted"));
                }
                prev = Some(v);
            }
        }
        Ok(())
    }

    /// Per-entry inverted-index checks; the offset arrays were already
    /// checked by [`FlatSnapshot::validate_structure`].
    fn check_inverted(&self) -> Result<(), SnapshotError> {
        for c in 0..self.ncats {
            let (lo, hi) = (
                read_u64(self.inv_cat_offsets, c) as usize,
                read_u64(self.inv_cat_offsets, c + 1) as usize,
            );
            let mut prev: Option<u32> = None;
            for h in lo..hi {
                let hub = read_u32(self.inv_hubs, h);
                if hub as usize >= self.n {
                    return Err(SnapshotError::Corrupt("inverted hub out of range"));
                }
                if prev.is_some_and(|p| p >= hub) {
                    return Err(SnapshotError::Corrupt("inverted hubs not sorted"));
                }
                prev = Some(hub);
                let (elo, ehi) = (
                    read_u64(self.inv_list_offsets, h) as usize,
                    read_u64(self.inv_list_offsets, h + 1) as usize,
                );
                let mut prev_e: Option<(u64, u32)> = None;
                for e in elo..ehi {
                    let member = read_u32(self.inv_members, e);
                    let dist = read_u64(self.inv_dists, e);
                    if member as usize >= self.n {
                        return Err(SnapshotError::Corrupt("inverted member out of range"));
                    }
                    if prev_e.is_some_and(|p| p > (dist, member)) {
                        return Err(SnapshotError::Corrupt(
                            "inverted list not sorted by (dist, member)",
                        ));
                    }
                    prev_e = Some((dist, member));
                }
            }
        }
        Ok(())
    }

    /// Materialises the graph: the forward CSR is a straight copy of three
    /// arenas (the backward CSR is derived by one counting sort inside
    /// [`Graph::try_from_csr`]); the category table is sliced per category.
    pub fn graph(&self) -> Result<Graph, SnapshotError> {
        let out_offsets: Vec<u32> = self
            .edge_offsets
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let out_targets: Vec<VertexId> = self
            .edge_targets
            .chunks_exact(4)
            .map(|b| VertexId(u32::from_le_bytes(b.try_into().unwrap())))
            .collect();
        let out_weights: Vec<Weight> = self
            .edge_weights
            .chunks_exact(8)
            .map(|b| Weight::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let mut names = Vec::with_capacity(self.ncats);
        let mut per_category = Vec::with_capacity(self.ncats);
        for c in 0..self.ncats {
            let (lo, hi) = (
                read_u64(self.name_offsets, c) as usize,
                read_u64(self.name_offsets, c + 1) as usize,
            );
            let name = std::str::from_utf8(&self.name_bytes[lo..hi])
                .map_err(|_| SnapshotError::Corrupt("category name is not UTF-8"))?;
            names.push(name.to_owned());
            let (lo, hi) = (
                read_u64(self.memb_offsets, c) as usize,
                read_u64(self.memb_offsets, c + 1) as usize,
            );
            let members: Vec<VertexId> = self.memb_verts[lo * 4..hi * 4]
                .chunks_exact(4)
                .map(|b| VertexId(u32::from_le_bytes(b.try_into().unwrap())))
                .collect();
            per_category.push(members);
        }
        let categories = CategoryTable::from_parts(self.n, names, per_category)
            .map_err(SnapshotError::Corrupt)?;
        Graph::try_from_csr(self.n, out_offsets, out_targets, out_weights, categories)
            .map_err(SnapshotError::Corrupt)
    }

    /// Materialises the 2-hop labels by slicing both slabs row-wise — no
    /// per-entry inserts, no sorting.
    pub fn labels(&self) -> Result<HopLabels, SnapshotError> {
        let lin = flat::decode_sets(self.n, self.lin_tot, self.lin)?;
        let lout = flat::decode_sets(self.n, self.lout_tot, self.lout)?;
        Ok(HopLabels::from_parts(lin, lout))
    }

    /// Materialises the inverted label indexes straight from the arenas —
    /// the grouping pass v1 installs pay is already baked into the blob,
    /// and the per-list `(dist, member)` order was enforced by
    /// [`FlatSnapshot::validate`], so no sorting runs here either.
    pub fn inverted(&self) -> CategoryIndexSet {
        let mut indexes = Vec::with_capacity(self.ncats);
        for c in 0..self.ncats {
            let (lo, hi) = (
                read_u64(self.inv_cat_offsets, c) as usize,
                read_u64(self.inv_cat_offsets, c + 1) as usize,
            );
            let mut lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
            lists.reserve(hi - lo);
            for h in lo..hi {
                let hub = VertexId(read_u32(self.inv_hubs, h));
                let (elo, ehi) = (
                    read_u64(self.inv_list_offsets, h) as usize,
                    read_u64(self.inv_list_offsets, h + 1) as usize,
                );
                let entries: Vec<(VertexId, Weight)> = (elo..ehi)
                    .map(|e| {
                        (
                            VertexId(read_u32(self.inv_members, e)),
                            read_u64(self.inv_dists, e),
                        )
                    })
                    .collect();
                lists.insert(hub, entries);
            }
            let num_members =
                (read_u64(self.memb_offsets, c + 1) - read_u64(self.memb_offsets, c)) as usize;
            indexes.push(InvertedLabelIndex::from_sorted_lists(lists, num_members));
        }
        CategoryIndexSet::from_indexes(indexes)
    }

    /// Single-pass fusion of [`FlatSnapshot::check_inverted`] and
    /// [`FlatSnapshot::inverted`]: every hub/member/ordering invariant is
    /// checked while the lists are copied, walking the entry arenas once.
    fn inverted_checked(&self) -> Result<CategoryIndexSet, SnapshotError> {
        let mut indexes = Vec::with_capacity(self.ncats);
        for c in 0..self.ncats {
            let (lo, hi) = (
                read_u64(self.inv_cat_offsets, c) as usize,
                read_u64(self.inv_cat_offsets, c + 1) as usize,
            );
            let mut lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
            lists.reserve(hi - lo);
            let mut prev_hub: Option<u32> = None;
            for h in lo..hi {
                let hub = read_u32(self.inv_hubs, h);
                if hub as usize >= self.n {
                    return Err(SnapshotError::Corrupt("inverted hub out of range"));
                }
                if prev_hub.is_some_and(|p| p >= hub) {
                    return Err(SnapshotError::Corrupt("inverted hubs not sorted"));
                }
                prev_hub = Some(hub);
                let (elo, ehi) = (
                    read_u64(self.inv_list_offsets, h) as usize,
                    read_u64(self.inv_list_offsets, h + 1) as usize,
                );
                let mut entries = Vec::with_capacity(ehi - elo);
                let mut prev_e: Option<(u64, u32)> = None;
                for e in elo..ehi {
                    let member = read_u32(self.inv_members, e);
                    let dist = read_u64(self.inv_dists, e);
                    if member as usize >= self.n {
                        return Err(SnapshotError::Corrupt("inverted member out of range"));
                    }
                    if prev_e.is_some_and(|p| p > (dist, member)) {
                        return Err(SnapshotError::Corrupt(
                            "inverted list not sorted by (dist, member)",
                        ));
                    }
                    prev_e = Some((dist, member));
                    entries.push((VertexId(member), dist));
                }
                lists.insert(VertexId(hub), entries);
            }
            let num_members =
                (read_u64(self.memb_offsets, c + 1) - read_u64(self.memb_offsets, c)) as usize;
            indexes.push(InvertedLabelIndex::from_sorted_lists(lists, num_members));
        }
        Ok(CategoryIndexSet::from_indexes(indexes))
    }
}

/// Serializes a full index into one **v2** flat-arena blob. Deterministic:
/// the same index always produces the same bytes (hubs are emitted in
/// ascending id order, not hash order).
pub fn encode_snapshot_v2(
    graph: &Graph,
    labels: &HopLabels,
    inverted: &CategoryIndexSet,
) -> Vec<u8> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let cats = graph.categories();
    let ncats = cats.num_categories();
    let lin_tot = flat::entry_count(labels.lin_sets());
    let lout_tot = flat::entry_count(labels.lout_sets());
    let name_tot: u64 = (0..ncats)
        .map(|c| cats.name(CategoryId(c as u32)).len() as u64)
        .sum();
    let memb_tot: u64 = (0..ncats)
        .map(|c| cats.vertices_of(CategoryId(c as u32)).len() as u64)
        .sum();
    let hub_tot: u64 = (0..ncats)
        .map(|c| inverted.category(CategoryId(c as u32)).num_hubs() as u64)
        .sum();
    let inv_tot: u64 = (0..ncats)
        .map(|c| inverted.category(CategoryId(c as u32)).num_entries() as u64)
        .sum();
    let counts = Counts {
        n: n as u64,
        m: m as u64,
        ncats: ncats as u64,
        lin_tot,
        lout_tot,
        name_tot,
        memb_tot,
        hub_tot,
        inv_tot,
    };
    let mut out = Vec::with_capacity(counts.expected_len().expect("snapshot fits memory"));
    out.put_slice(MAGIC);
    out.put_u8(FLAT_SNAPSHOT_VERSION);
    for c in [
        counts.n,
        counts.m,
        counts.ncats,
        counts.lin_tot,
        counts.lout_tot,
        counts.name_tot,
        counts.memb_tot,
        counts.hub_tot,
        counts.inv_tot,
    ] {
        out.put_u64_le(c);
    }

    // Edges.
    let mut off = 0u32;
    out.put_u32_le(0);
    for u in graph.vertices() {
        off += graph.out_degree(u) as u32;
        out.put_u32_le(off);
    }
    for u in graph.vertices() {
        for (t, _) in graph.out_edges(u) {
            out.put_u32_le(t.0);
        }
    }
    for u in graph.vertices() {
        for (_, w) in graph.out_edges(u) {
            out.put_u64_le(w);
        }
    }

    // Labels.
    flat::encode_sets(labels.lin_sets(), &mut out);
    flat::encode_sets(labels.lout_sets(), &mut out);

    // Categories: names then members, both offset-addressed.
    let mut off = 0u64;
    out.put_u64_le(0);
    for c in 0..ncats {
        off += cats.name(CategoryId(c as u32)).len() as u64;
        out.put_u64_le(off);
    }
    for c in 0..ncats {
        out.put_slice(cats.name(CategoryId(c as u32)).as_bytes());
    }
    let mut off = 0u64;
    out.put_u64_le(0);
    for c in 0..ncats {
        off += cats.vertices_of(CategoryId(c as u32)).len() as u64;
        out.put_u64_le(off);
    }
    for c in 0..ncats {
        for &v in cats.vertices_of(CategoryId(c as u32)) {
            out.put_u32_le(v.0);
        }
    }

    // Inverted indexes: hubs ascending per category for determinism.
    let sorted_hubs: Vec<Vec<VertexId>> = (0..ncats)
        .map(|c| {
            let mut hubs: Vec<VertexId> = inverted
                .category(CategoryId(c as u32))
                .iter_lists()
                .map(|(h, _)| h)
                .collect();
            hubs.sort_unstable();
            hubs
        })
        .collect();
    let mut off = 0u64;
    out.put_u64_le(0);
    for hubs in &sorted_hubs {
        off += hubs.len() as u64;
        out.put_u64_le(off);
    }
    for hubs in &sorted_hubs {
        for h in hubs {
            out.put_u32_le(h.0);
        }
    }
    let mut off = 0u64;
    out.put_u64_le(0);
    for (c, hubs) in sorted_hubs.iter().enumerate() {
        let il = inverted.category(CategoryId(c as u32));
        for &h in hubs {
            off += il.list(h).map_or(0, <[_]>::len) as u64;
            out.put_u64_le(off);
        }
    }
    for (c, hubs) in sorted_hubs.iter().enumerate() {
        let il = inverted.category(CategoryId(c as u32));
        for &h in hubs {
            for &(member, _) in il.list(h).unwrap_or(&[]) {
                out.put_u32_le(member.0);
            }
        }
    }
    for (c, hubs) in sorted_hubs.iter().enumerate() {
        let il = inverted.category(CategoryId(c as u32));
        for &h in hubs {
            for &(_, d) in il.list(h).unwrap_or(&[]) {
                out.put_u64_le(d);
            }
        }
    }
    debug_assert_eq!(out.len(), counts.expected_len().unwrap());
    out
}

/// Label-entry count above which [`decode_snapshot_v2`] fans the section
/// copies out over scoped threads (given spare cores). Cold-start decode
/// is memory-bandwidth bound, and after structural validation the graph,
/// `Lin`, `Lout`, and inverted arenas materialise independently — but a
/// thread spawn costs tens of microseconds, so tiny snapshots (and
/// single-core hosts) stay on the caller's thread.
const PARALLEL_DECODE_ENTRIES: u64 = 1 << 15;

/// Decodes a v2 blob into its three owned parts.
///
/// Structural validation (header, counts, whole-length, offset arrays)
/// runs up front; the per-entry invariants are checked **while copying**
/// (`decode_sets_checked`, [`FlatSnapshot::inverted_checked`],
/// `Graph::try_from_csr`), so every arena is walked exactly once. Accepts
/// and refuses exactly the same blobs as [`FlatSnapshot::validate`]
/// followed by the plain materialisers.
pub fn decode_snapshot_v2(
    bytes: &[u8],
) -> Result<(Graph, HopLabels, CategoryIndexSet), SnapshotError> {
    let view = FlatSnapshot::validate_structure(bytes)?;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores <= 1 || view.lin_tot + view.lout_tot < PARALLEL_DECODE_ENTRIES {
        let graph = view.graph()?;
        let lin = flat::decode_sets_checked(view.n, view.lin_tot, view.n as u32, view.lin)?;
        let lout = flat::decode_sets_checked(view.n, view.lout_tot, view.n as u32, view.lout)?;
        let inverted = view.inverted_checked()?;
        return Ok((graph, HopLabels::from_parts(lin, lout), inverted));
    }
    let view = &view;
    std::thread::scope(|s| {
        let graph = s.spawn(move || view.graph());
        let lin = s.spawn(move || {
            flat::decode_sets_checked(view.n, view.lin_tot, view.n as u32, view.lin)
        });
        let lout = s.spawn(move || {
            flat::decode_sets_checked(view.n, view.lout_tot, view.n as u32, view.lout)
        });
        let inverted = view.inverted_checked()?;
        let graph = graph.join().expect("graph decode thread panicked")?;
        let lin = lin.join().expect("lin decode thread panicked")?;
        let lout = lout.join().expect("lout decode thread panicked")?;
        Ok((graph, HopLabels::from_parts(lin, lout), inverted))
    })
}

/// Byte length of the 14 **core** sections of a v2 blob (header included),
/// recomputed from the header counts with checked arithmetic. Anything
/// beyond this offset is the optional trailing bounds section.
fn core_len(bytes: &[u8]) -> Result<usize, SnapshotError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[8] != FLAT_SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: bytes[8] });
    }
    let c = &bytes[9..HEADER_LEN];
    let counts = Counts {
        n: read_u64(c, 0),
        m: read_u64(c, 1),
        ncats: read_u64(c, 2),
        lin_tot: read_u64(c, 3),
        lout_tot: read_u64(c, 4),
        name_tot: read_u64(c, 5),
        memb_tot: read_u64(c, 6),
        hub_tot: read_u64(c, 7),
        inv_tot: read_u64(c, 8),
    };
    counts.expected_len().ok_or(SnapshotError::Truncated)
}

/// Serializes a full index **plus its category-pair lower-bound tables**
/// into one v2 blob: the 14 core sections of [`encode_snapshot_v2`]
/// followed by a self-describing trailing section
///
/// ```text
/// bounds magic : 4 bytes = b"LBND"
/// ncats_b      : u64   must equal the header's ncats
/// linmin_tot   : u64   entries across the per-category virtual Lin sets
/// loutmin_tot  : u64   entries across the per-category virtual Lout sets
/// lin_min slab : flat slab over ncats sets                       [`flat`]
/// lout_min slab: flat slab over ncats sets
/// table        : ncats² × u64, row-major
/// ```
///
/// Core-only decoders ([`decode_snapshot_v2`]) keep refusing the longer
/// blob as trailing garbage; bounds-aware installs use
/// [`decode_snapshot_v2_full`].
pub fn encode_snapshot_v2_with_bounds(
    graph: &Graph,
    labels: &HopLabels,
    inverted: &CategoryIndexSet,
    bounds: &CategoryBounds,
) -> Vec<u8> {
    let mut out = encode_snapshot_v2(graph, labels, inverted);
    out.put_slice(BOUNDS_MAGIC);
    out.put_u64_le(bounds.num_categories() as u64);
    out.put_u64_le(flat::entry_count(bounds.lin_min_sets()));
    out.put_u64_le(flat::entry_count(bounds.lout_min_sets()));
    flat::encode_sets(bounds.lin_min_sets(), &mut out);
    flat::encode_sets(bounds.lout_min_sets(), &mut out);
    for &w in bounds.table_slice() {
        out.put_u64_le(w);
    }
    out
}

/// Decodes the trailing bounds section. `ncats` and `n` come from the
/// already-validated core (the category table and vertex count the section
/// must agree with); any disagreement is a typed [`SnapshotError`], never
/// a panic.
fn decode_bounds_section(
    region: &[u8],
    ncats: usize,
    n: usize,
) -> Result<CategoryBounds, SnapshotError> {
    const BOUNDS_HEADER: usize = 4 + 3 * 8;
    if region.len() < BOUNDS_HEADER {
        return Err(SnapshotError::Truncated);
    }
    if &region[..4] != BOUNDS_MAGIC {
        return Err(SnapshotError::Corrupt("bounds section magic mismatch"));
    }
    let c = &region[4..BOUNDS_HEADER];
    let ncats_b = read_u64(c, 0);
    if ncats_b != ncats as u64 {
        return Err(SnapshotError::Corrupt(
            "bounds section category count disagrees with category table",
        ));
    }
    let lin_tot = read_u64(c, 1);
    let lout_tot = read_u64(c, 2);
    // Whole-section length from the declared counts, checked arithmetic
    // first — a lying header cannot drive an allocation.
    let lin_len = flat::slab_len(ncats, lin_tot).ok_or(SnapshotError::Truncated)?;
    let lout_len = flat::slab_len(ncats, lout_tot).ok_or(SnapshotError::Truncated)?;
    let table_len = ncats
        .checked_mul(ncats)
        .and_then(|cells| cells.checked_mul(8))
        .ok_or(SnapshotError::Truncated)?;
    let expect = [lin_len, lout_len, table_len]
        .iter()
        .try_fold(BOUNDS_HEADER, |acc, &s| acc.checked_add(s))
        .ok_or(SnapshotError::Truncated)?;
    if region.len() < expect {
        return Err(SnapshotError::Truncated);
    }
    if region.len() > expect {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after bounds section",
        ));
    }
    let lin_region = &region[BOUNDS_HEADER..BOUNDS_HEADER + lin_len];
    let lout_region = &region[BOUNDS_HEADER + lin_len..BOUNDS_HEADER + lin_len + lout_len];
    let lin_min = flat::decode_sets_checked(ncats, lin_tot, n as u32, lin_region)?;
    let lout_min = flat::decode_sets_checked(ncats, lout_tot, n as u32, lout_region)?;
    let table_region = &region[expect - table_len..];
    let table: Vec<Weight> = (0..ncats * ncats)
        .map(|i| read_u64(table_region, i))
        .collect();
    CategoryBounds::from_parts(lin_min, lout_min, table)
        .ok_or(SnapshotError::Corrupt("bounds section shape mismatch"))
}

/// [`decode_snapshot_v2`] extended with the optional trailing bounds
/// section: `Ok(..., Some(bounds))` when the blob carries one (validated
/// against the decoded category table), `Ok(..., None)` for a plain core
/// blob (the installer rebuilds bounds from the labels).
#[allow(clippy::type_complexity)]
pub fn decode_snapshot_v2_full(
    bytes: &[u8],
) -> Result<(Graph, HopLabels, CategoryIndexSet, Option<CategoryBounds>), SnapshotError> {
    let core = core_len(bytes)?;
    if bytes.len() < core {
        return Err(SnapshotError::Truncated);
    }
    let (graph, labels, inverted) = decode_snapshot_v2(&bytes[..core])?;
    let bounds = if bytes.len() > core {
        Some(decode_bounds_section(
            &bytes[core..],
            graph.categories().num_categories(),
            graph.num_vertices(),
        )?)
    } else {
        None
    };
    Ok((graph, labels, inverted, bounds))
}

/// Transcodes a v2 blob down to the v1 wire format — the negotiated
/// fallback the transports use when a fleet peer predates v2. The inverted
/// arenas are dropped (v1 never carried them; the old peer rebuilds its
/// own), so only the graph and labels are materialised here.
pub fn downgrade(bytes: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    // A trailing bounds section (v1 never carried bounds either) is
    // validated and then dropped along with the inverted arenas.
    let core = core_len(bytes)?;
    if bytes.len() < core {
        return Err(SnapshotError::Truncated);
    }
    let view = FlatSnapshot::validate(&bytes[..core])?;
    let graph = view.graph()?;
    if bytes.len() > core {
        decode_bounds_section(
            &bytes[core..],
            graph.categories().num_categories(),
            graph.num_vertices(),
        )?;
    }
    let labels = view.labels()?;
    crate::snapshot::encode_snapshot(&graph, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;
    use kosr_hoplabel::HubOrder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// A small world with two categories, one empty category, and a
    /// non-trivial label set.
    fn world() -> (Graph, HopLabels, CategoryIndexSet) {
        let mut b = GraphBuilder::new(8);
        for i in 0..7u32 {
            b.add_edge(v(i), v(i + 1), (i % 3 + 1) as u64);
        }
        b.add_edge(v(7), v(0), 2);
        b.add_edge(v(0), v(4), 9);
        let ca = b.categories_mut().add_category("MA");
        let cb = b.categories_mut().add_category("RE");
        b.categories_mut().add_category("EMPTY");
        for i in [1u32, 3, 6] {
            b.categories_mut().insert(v(i), ca);
        }
        for i in [2u32, 5] {
            b.categories_mut().insert(v(i), cb);
        }
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, g.categories());
        (g, labels, inverted)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (g, labels, inverted) = world();
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        assert_eq!(blob_version(&blob), Some(FLAT_SNAPSHOT_VERSION));
        let (g2, labels2, inverted2) = decode_snapshot_v2(&blob).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(
                g2.out_edges(u).collect::<Vec<_>>(),
                g.out_edges(u).collect::<Vec<_>>()
            );
            assert_eq!(
                g2.in_edges(u).collect::<Vec<_>>(),
                g.in_edges(u).collect::<Vec<_>>()
            );
            assert_eq!(
                g2.categories().categories_of(u),
                g.categories().categories_of(u)
            );
        }
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(labels2.distance(s, t), labels.distance(s, t));
            }
        }
        assert_eq!(inverted2.num_categories(), inverted.num_categories());
        for c in 0..inverted.num_categories() {
            let c = CategoryId(c as u32);
            let (a, b) = (inverted.category(c), inverted2.category(c));
            assert_eq!(a.num_members(), b.num_members());
            assert_eq!(a.num_entries(), b.num_entries());
            assert_eq!(a.num_hubs(), b.num_hubs());
            for (h, list) in a.iter_lists() {
                assert_eq!(b.list(h), Some(list));
            }
        }
        // Deterministic re-encode.
        assert_eq!(encode_snapshot_v2(&g2, &labels2, &inverted2), blob);
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let (g, labels, inverted) = world();
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        for cut in 0..blob.len() {
            match FlatSnapshot::validate(&blob[..cut]) {
                Err(
                    SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::Corrupt(_)
                    | SnapshotError::UnsupportedVersion { .. },
                ) => {}
                Err(other) => panic!("cut={cut}: unexpected {other:?}"),
                Ok(_) => panic!("cut={cut}: truncated blob validated"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let (g, labels, inverted) = world();
        let mut blob = encode_snapshot_v2(&g, &labels, &inverted);
        blob.push(0);
        assert!(matches!(
            FlatSnapshot::validate(&blob),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn lying_counts_refused_before_allocating() {
        let (g, labels, inverted) = world();
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        // Each of the nine counts in turn claims u64::MAX: the length
        // check must refuse without ever allocating toward the claim.
        for slot in 0..9 {
            let mut bad = blob.clone();
            bad[9 + slot * 8..9 + slot * 8 + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            match FlatSnapshot::validate(&bad) {
                Err(SnapshotError::Truncated) | Err(SnapshotError::Corrupt(_)) => {}
                Err(other) => panic!("slot={slot}: unexpected {other:?}"),
                Ok(_) => panic!("slot={slot}: lying count validated"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (g, labels, inverted) = world();
        let mut blob = encode_snapshot_v2(&g, &labels, &inverted);
        assert_eq!(blob_version(b"short"), None);
        let mut wrong = blob.clone();
        wrong[0] ^= 0xFF;
        assert_eq!(blob_version(&wrong), None);
        assert!(matches!(
            FlatSnapshot::validate(&wrong),
            Err(SnapshotError::BadMagic)
        ));
        blob[8] = 99;
        assert_eq!(blob_version(&blob), Some(99));
        assert!(matches!(
            FlatSnapshot::validate(&blob),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn corrupt_content_is_typed() {
        let (g, labels, inverted) = world();
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        let n = g.num_vertices();
        // First edge target out of range.
        let target_base = HEADER_LEN + (n + 1) * 4;
        let mut bad = blob.clone();
        bad[target_base..target_base + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FlatSnapshot::validate(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // Edge offsets that do not start at 0.
        let mut bad = blob.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            FlatSnapshot::validate(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // A self-loop: rewrite the first target to its own source (vertex
        // 0's first out-edge targets vertex 1 in `world`).
        let mut bad = blob;
        bad[target_base..target_base + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            FlatSnapshot::validate(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn bounds_section_roundtrips_and_core_decoders_stay_strict() {
        let (g, labels, inverted) = world();
        let bounds = CategoryBounds::build(&labels, g.categories());
        let blob = encode_snapshot_v2_with_bounds(&g, &labels, &inverted, &bounds);
        let (g2, labels2, _, back) = decode_snapshot_v2_full(&blob).unwrap();
        assert_eq!(back.as_ref(), Some(&bounds));
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(labels2.num_entries(), labels.num_entries());
        // A core-only blob reports no bounds instead of failing.
        let core = encode_snapshot_v2(&g, &labels, &inverted);
        let (_, _, _, none) = decode_snapshot_v2_full(&core).unwrap();
        assert!(none.is_none());
        // The strict core decoder keeps refusing the longer blob.
        assert!(matches!(
            decode_snapshot_v2(&blob),
            Err(SnapshotError::Corrupt(_))
        ));
        // Downgrade drops the section but still validates it.
        assert_eq!(downgrade(&blob).unwrap(), downgrade(&core).unwrap());
    }

    #[test]
    fn bounds_section_count_mismatch_is_typed() {
        let (g, labels, inverted) = world();
        let bounds = CategoryBounds::build(&labels, g.categories());
        let core = encode_snapshot_v2(&g, &labels, &inverted);
        let blob = encode_snapshot_v2_with_bounds(&g, &labels, &inverted, &bounds);
        // Lie about the category count inside the bounds section.
        let mut bad = blob.clone();
        let pos = core.len() + 4;
        bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match decode_snapshot_v2_full(&bad) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("disagrees with category table"), "{msg}")
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Same lie through the downgrade path.
        assert!(downgrade(&bad).is_err());
        // A lying entry total is refused by the length check, not an
        // allocation attempt.
        let mut bad = blob.clone();
        let pos = core.len() + 12;
        bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot_v2_full(&bad),
            Err(SnapshotError::Truncated)
        ));
        // Wrong section magic.
        let mut bad = blob.clone();
        bad[core.len()] ^= 0xFF;
        assert!(matches!(
            decode_snapshot_v2_full(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // Truncation anywhere inside the section is typed, never a panic
        // (a cut at exactly the core length is a valid bounds-less blob).
        for cut in core.len() + 1..blob.len() {
            match decode_snapshot_v2_full(&blob[..cut]) {
                Err(SnapshotError::Truncated | SnapshotError::Corrupt(_)) => {}
                other => panic!("cut={cut}: unexpected {other:?}"),
            }
        }
        // Trailing garbage after a complete section is corrupt.
        let mut bad = blob.clone();
        bad.push(0);
        assert!(matches!(
            decode_snapshot_v2_full(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn downgrade_matches_direct_v1_encode() {
        let (g, labels, inverted) = world();
        let v2 = encode_snapshot_v2(&g, &labels, &inverted);
        let v1 = downgrade(&v2).unwrap();
        assert_eq!(v1, crate::snapshot::encode_snapshot(&g, &labels).unwrap());
        let (g2, labels2) = crate::snapshot::decode_snapshot(&v1).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(labels2.num_entries(), labels.num_entries());
    }

    #[test]
    fn empty_world_roundtrips() {
        let g = GraphBuilder::new(0).build();
        let labels = HopLabels::empty(0);
        let inverted = CategoryIndexSet::build(&labels, g.categories());
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        let (g2, labels2, inverted2) = decode_snapshot_v2(&blob).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(labels2.num_vertices(), 0);
        assert_eq!(inverted2.num_categories(), 0);
    }
}
