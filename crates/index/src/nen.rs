//! `FindNEN` (Algorithm 4): the x-th **nearest estimated neighbor** — the
//! member `u` of a category with the x-th smallest `dis(v,u) + dis(u,t)`.
//!
//! StarKOSR extends routes through nearest *estimated* neighbors so that its
//! priority queue can be ordered by admissible total estimates (§IV-B). The
//! stream is produced by pulling plain nearest neighbors (`FindNN`) only
//! while they might still beat the best already-buffered estimate: once
//! `dis(v, ln) ≥ min_{u ∈ ENQ} (dis(v,u) + dis(u,t))` every unseen member
//! must estimate worse, so the buffered minimum can be emitted.
//!
//! Members that cannot reach the destination (`dis(u,t) = ∞`) are skipped:
//! no feasible route can be completed through them (Definition 4), so they
//! can never appear in a top-k answer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{is_finite, CategoryId, FxHashMap, VertexId, Weight};

use crate::nn::NearestNeighbors;
use crate::target::TargetDistance;

/// An emitted estimated neighbor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EstimatedNeighbor {
    /// The member vertex.
    pub vertex: VertexId,
    /// `dis(v, vertex)` — the real cost increment.
    pub dist: Weight,
    /// `dis(v, vertex) + dis(vertex, t)` — the estimate used for ordering.
    pub estimate: Weight,
}

/// The last nearest neighbor pulled but not yet buffered (`ln`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Ln {
    /// `FindNN` has not been consulted yet.
    #[default]
    NotStarted,
    /// A pulled neighbor waiting to enter `ENQ`.
    Pending(VertexId, Weight),
    /// The underlying NN stream is exhausted.
    Exhausted,
}

/// Per-(v, C) stream state: `ENL`, `ENQ`, `ln` and the NN cursor.
#[derive(Clone, Debug, Default)]
struct NenState {
    /// `ENL`: estimated neighbors already emitted, ascending estimate.
    enl: Vec<EstimatedNeighbor>,
    /// `ENQ`: buffered candidates ordered by estimate.
    enq: BinaryHeap<Reverse<(Weight, VertexId, Weight)>>,
    ln: Ln,
    /// 1-based index of the next `FindNN` to pull.
    next_x: usize,
}

/// Memoised `FindNEN` streams for one query (one state per `(v, C)`).
#[derive(Debug, Default)]
pub struct NenFinder {
    states: FxHashMap<(VertexId, CategoryId), NenState>,
}

impl NenFinder {
    /// Fresh per-query state.
    pub fn new() -> Self {
        NenFinder::default()
    }

    /// The `x`-th (1-based) nearest estimated neighbor of `v` in `c`, or
    /// `None` when fewer than `x` members can reach both `v` and the target.
    pub fn find_nen<N: NearestNeighbors, T: TargetDistance>(
        &mut self,
        nn: &mut N,
        oracle: &mut T,
        v: VertexId,
        c: CategoryId,
        x: usize,
    ) -> Option<EstimatedNeighbor> {
        debug_assert!(x >= 1, "x is 1-based");
        let state = self.states.entry((v, c)).or_default();
        // Lines 4-5: memoised hit.
        if state.enl.len() >= x {
            return Some(state.enl[x - 1]);
        }
        while state.enl.len() < x {
            Self::compute_next(state, nn, oracle, v, c)?;
        }
        Some(state.enl[x - 1])
    }

    fn compute_next<N: NearestNeighbors, T: TargetDistance>(
        state: &mut NenState,
        nn: &mut N,
        oracle: &mut T,
        v: VertexId,
        c: CategoryId,
    ) -> Option<EstimatedNeighbor> {
        // Lines 6-9: pull NNs while an unseen member could still beat the
        // buffered minimum estimate.
        loop {
            let min_est = state.enq.peek().map(|Reverse((e, _, _))| *e);
            let pull = match (state.ln, min_est) {
                (Ln::Exhausted, _) => false,
                (Ln::NotStarted, _) => true,
                (Ln::Pending(_, _), None) => true,
                (Ln::Pending(_, d), Some(me)) => d < me,
            };
            if !pull {
                break;
            }
            if let Ln::Pending(m, d) = state.ln {
                let dt = oracle.to_target(m);
                if is_finite(dt) {
                    state.enq.push(Reverse((d.saturating_add(dt), m, d)));
                }
                state.ln = Ln::NotStarted; // consumed; replaced below
            }
            state.next_x += 1;
            state.ln = match nn.find_nn(v, c, state.next_x) {
                Some((m, d)) => Ln::Pending(m, d),
                None => Ln::Exhausted,
            };
        }
        // Lines 10-12: emit the buffered minimum.
        let Reverse((est, m, d)) = state.enq.pop()?;
        let out = EstimatedNeighbor {
            vertex: m,
            dist: d,
            estimate: est,
        };
        state.enl.push(out);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::CategoryIndexSet;
    use crate::nn::LabelNn;
    use crate::target::LabelTarget;
    use kosr_graph::{Graph, GraphBuilder};
    use kosr_hoplabel::{HopLabels, HubOrder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn setup(seed: u64) -> (Graph, HopLabels, CategoryIndexSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 36u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..150 {
            let a = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if a != c {
                b.add_edge(v(a), v(c), rng.gen_range(1..25));
            }
        }
        let ca = b.categories_mut().add_category("A");
        for i in 0..n {
            if rng.gen_bool(0.35) {
                b.categories_mut().insert(v(i), ca);
            }
        }
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, g.categories());
        (g, labels, inverted)
    }

    /// Ground truth: members sorted by (estimate, id), both legs finite.
    fn brute_nen(
        g: &Graph,
        labels: &HopLabels,
        s: VertexId,
        c: CategoryId,
        t: VertexId,
    ) -> Vec<(Weight, Weight)> {
        let mut all: Vec<(Weight, Weight)> = g
            .categories()
            .vertices_of(c)
            .iter()
            .filter_map(|&m| {
                let d = labels.distance(s, m);
                let dt = labels.distance(m, t);
                (kosr_graph::is_finite(d) && kosr_graph::is_finite(dt)).then(|| (d + dt, d))
            })
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn nen_stream_matches_brute_force() {
        for seed in 0..4 {
            let (g, labels, inverted) = setup(seed);
            let cat = CategoryId(0);
            for s in (0..36u32).step_by(5) {
                for t in (1..36u32).step_by(7) {
                    let want = brute_nen(&g, &labels, v(s), cat, v(t));
                    let mut nn = LabelNn::new(&labels, &inverted);
                    let mut oracle = LabelTarget::new(&labels, v(t));
                    let mut finder = NenFinder::new();
                    for (i, &(west, _)) in want.iter().enumerate() {
                        let got = finder
                            .find_nen(&mut nn, &mut oracle, v(s), cat, i + 1)
                            .unwrap_or_else(|| panic!("seed {seed} s {s} t {t} x {}", i + 1));
                        assert_eq!(got.estimate, west, "seed {seed} s {s} t {t} x {}", i + 1);
                        assert_eq!(
                            got.estimate,
                            got.dist + labels.distance(got.vertex, v(t)),
                            "estimate decomposition"
                        );
                    }
                    assert!(
                        finder
                            .find_nen(&mut nn, &mut oracle, v(s), cat, want.len() + 1)
                            .is_none(),
                        "seed {seed} s {s} t {t}: stream must end"
                    );
                }
            }
        }
    }

    #[test]
    fn memoisation_is_stable() {
        let (_, labels, inverted) = setup(9);
        let cat = CategoryId(0);
        let mut nn = LabelNn::new(&labels, &inverted);
        let mut oracle = LabelTarget::new(&labels, v(10));
        let mut finder = NenFinder::new();
        let first = finder.find_nen(&mut nn, &mut oracle, v(0), cat, 1);
        let second = finder.find_nen(&mut nn, &mut oracle, v(0), cat, 1);
        assert_eq!(first, second);
        // Random access works.
        let third = finder.find_nen(&mut nn, &mut oracle, v(0), cat, 3);
        let third_again = finder.find_nen(&mut nn, &mut oracle, v(0), cat, 3);
        assert_eq!(third, third_again);
    }

    #[test]
    fn estimates_are_nondecreasing() {
        let (_, labels, inverted) = setup(2);
        let cat = CategoryId(0);
        let mut nn = LabelNn::new(&labels, &inverted);
        let mut oracle = LabelTarget::new(&labels, v(5));
        let mut finder = NenFinder::new();
        let mut last = 0;
        let mut x = 1;
        while let Some(e) = finder.find_nen(&mut nn, &mut oracle, v(1), cat, x) {
            assert!(e.estimate >= last, "x={x}");
            last = e.estimate;
            x += 1;
        }
    }

    #[test]
    fn members_unable_to_reach_target_are_skipped() {
        // 0 → 1(member) → 2(t), 0 → 3(member, dead end)
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(0), v(3), 1);
        let ca = b.categories_mut().add_category("A");
        b.categories_mut().insert(v(1), ca);
        b.categories_mut().insert(v(3), ca);
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, g.categories());
        let mut nn = LabelNn::new(&labels, &inverted);
        let mut oracle = LabelTarget::new(&labels, v(2));
        let mut finder = NenFinder::new();
        let first = finder
            .find_nen(&mut nn, &mut oracle, v(0), CategoryId(0), 1)
            .unwrap();
        assert_eq!(first.vertex, v(1));
        assert_eq!(first.estimate, 2);
        assert!(finder
            .find_nen(&mut nn, &mut oracle, v(0), CategoryId(0), 2)
            .is_none());
    }
}
