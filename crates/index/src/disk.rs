//! Disk-resident index layout for the paper's **SK-DB** method (§IV-C,
//! *disk-based query answering*).
//!
//! "In the case that the label index cannot fit into memory, we store the
//! indexes into disk according to categories": each category `Ci` owns one
//! contiguous segment holding `IL(Ci)` plus `Lout(v)` for every `v ∈ V_Ci`,
//! so a query touches `|C| + 4` seeks — one per required category segment
//! plus the source's `Lout` and the destination's `Lin`.
//!
//! The paper locates segments with a disk-based B+-tree; an in-memory sorted
//! offset directory (binary-searchable, loaded once at `open`) provides the
//! same `O(log n)` lookup with identical I/O granularity — see DESIGN.md,
//! substitution table.
//!
//! File layout (little endian):
//! ```text
//! magic       : 8 bytes = b"KOSRDX1\0"
//! n, nc       : u32, u32
//! vertex dir  : n × (u64 lout_off, u32 lout_len, u64 lin_off, u32 lin_len)
//! category dir: nc × (u64 off, u32 len)
//! data        : label sets / category segments, byte-addressed above
//! ```

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut};
use kosr_graph::{CategoryId, CategoryTable, FxHashMap, VertexId, Weight};
use kosr_hoplabel::codec::{decode_label_set, encode_label_set};
use kosr_hoplabel::{HopLabels, LabelSet};
use parking_lot::Mutex;

use crate::inverted::InvertedLabelIndex;

const MAGIC: &[u8; 8] = b"KOSRDX1\0";

/// One category's loaded segment: its inverted index plus the `Lout` sets of
/// all member vertices.
#[derive(Debug, Default)]
pub struct CategorySegment {
    /// `IL(Ci)`.
    pub inverted: InvertedLabelIndex,
    /// `Lout(v)` for each member `v ∈ V_Ci`.
    pub louts: FxHashMap<VertexId, LabelSet>,
}

#[derive(Clone, Copy, Debug, Default)]
struct VertexSlot {
    lout_off: u64,
    lout_len: u32,
    lin_off: u64,
    lin_len: u32,
}

/// A read-only handle to an on-disk index with seek/byte accounting.
#[derive(Debug)]
pub struct DiskIndex {
    file: Mutex<File>,
    vertex_dir: Vec<VertexSlot>,
    category_dir: Vec<(u64, u32)>,
    seeks: AtomicU64,
    bytes_read: AtomicU64,
}

/// Serialises `labels` + per-category segments for `categories` into `path`.
pub fn create(path: &Path, labels: &HopLabels, categories: &CategoryTable) -> io::Result<()> {
    let n = labels.num_vertices();
    let nc = categories.num_categories();

    // Encode all payloads first to learn their sizes.
    let mut payload = Vec::new();
    let mut vertex_dir = vec![VertexSlot::default(); n];
    for (vi, slot) in vertex_dir.iter_mut().enumerate() {
        let v = VertexId(vi as u32);
        let start = payload.len() as u64;
        encode_label_set(labels.lout(v), &mut payload);
        slot.lout_off = start;
        slot.lout_len = (payload.len() as u64 - start) as u32;
        let start = payload.len() as u64;
        encode_label_set(labels.lin(v), &mut payload);
        slot.lin_off = start;
        slot.lin_len = (payload.len() as u64 - start) as u32;
    }
    let mut category_dir = Vec::with_capacity(nc);
    for ci in 0..nc {
        let c = CategoryId(ci as u32);
        let start = payload.len() as u64;
        encode_category_segment(labels, categories, c, &mut payload);
        category_dir.push((start, (payload.len() as u64 - start) as u32));
    }

    // Header + directories, then rebase payload offsets.
    let header_len = 8 + 8 + n * 24 + nc * 12;
    let mut out = Vec::with_capacity(header_len + payload.len());
    out.put_slice(MAGIC);
    out.put_u32_le(n as u32);
    out.put_u32_le(nc as u32);
    for slot in &vertex_dir {
        out.put_u64_le(slot.lout_off + header_len as u64);
        out.put_u32_le(slot.lout_len);
        out.put_u64_le(slot.lin_off + header_len as u64);
        out.put_u32_le(slot.lin_len);
    }
    for &(off, len) in &category_dir {
        out.put_u64_le(off + header_len as u64);
        out.put_u32_le(len);
    }
    debug_assert_eq!(out.len(), header_len);
    out.extend_from_slice(&payload);
    let mut f = File::create(path)?;
    f.write_all(&out)?;
    f.sync_all()
}

fn encode_category_segment(
    labels: &HopLabels,
    categories: &CategoryTable,
    c: CategoryId,
    out: &mut Vec<u8>,
) {
    let il = InvertedLabelIndex::build(labels, categories, c);
    let mut lists: Vec<(VertexId, &[(VertexId, Weight)])> = il.iter_lists().collect();
    lists.sort_unstable_by_key(|&(h, _)| h); // deterministic file bytes
    out.put_u32_le(lists.len() as u32);
    for (hub, list) in lists {
        out.put_u32_le(hub.0);
        out.put_u32_le(list.len() as u32);
        for &(m, d) in list {
            out.put_u32_le(m.0);
            out.put_u64_le(d);
        }
    }
    let members = categories.vertices_of(c);
    out.put_u32_le(members.len() as u32);
    for &m in members {
        out.put_u32_le(m.0);
        encode_label_set(labels.lout(m), out);
    }
}

impl DiskIndex {
    /// Opens an index file, reading only the directories into memory.
    pub fn open(path: &Path) -> io::Result<DiskIndex> {
        let mut f = File::open(path)?;
        let mut head = [0u8; 16];
        f.read_exact(&mut head)?;
        if &head[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut cursor = &head[8..];
        let n = cursor.get_u32_le() as usize;
        let nc = cursor.get_u32_le() as usize;
        // The directory size is attacker-controlled (a crafted 16-byte file
        // can claim `u32::MAX` vertices ≈ a 100 GB directory), so check it
        // against the actual file length — in u64, so `n * 24` cannot wrap
        // usize on 32-bit hosts — before allocating a single byte.
        let dir_len = (n as u64) * 24 + (nc as u64) * 12;
        let file_len = f.metadata()?.len();
        if dir_len > file_len.saturating_sub(16) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "directory exceeds file length",
            ));
        }
        let mut dir_bytes = vec![0u8; dir_len as usize];
        f.read_exact(&mut dir_bytes)?;
        let mut buf = &dir_bytes[..];
        let mut vertex_dir = Vec::with_capacity(n);
        for _ in 0..n {
            vertex_dir.push(VertexSlot {
                lout_off: buf.get_u64_le(),
                lout_len: buf.get_u32_le(),
                lin_off: buf.get_u64_le(),
                lin_len: buf.get_u32_le(),
            });
        }
        let mut category_dir = Vec::with_capacity(nc);
        for _ in 0..nc {
            category_dir.push((buf.get_u64_le(), buf.get_u32_le()));
        }
        Ok(DiskIndex {
            file: Mutex::new(f),
            vertex_dir,
            category_dir,
            seeks: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.vertex_dir.len()
    }

    /// Number of category segments.
    pub fn num_categories(&self) -> usize {
        self.category_dir.len()
    }

    fn read_at(&self, off: u64, len: u32) -> io::Result<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        self.seeks.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    fn vertex_slot(&self, v: VertexId) -> io::Result<VertexSlot> {
        self.vertex_dir.get(v.index()).copied().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "vertex beyond the directory")
        })
    }

    /// Loads `Lout(v)` (one seek). A vertex beyond the on-disk directory is
    /// a typed [`io::ErrorKind::InvalidData`] error, not a panic — the id
    /// may come from a query against a newer in-memory graph.
    pub fn load_lout(&self, v: VertexId) -> io::Result<LabelSet> {
        let slot = self.vertex_slot(v)?;
        let buf = self.read_at(slot.lout_off, slot.lout_len)?;
        decode_label_set(&mut buf.as_slice())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads `Lin(v)` (one seek).
    pub fn load_lin(&self, v: VertexId) -> io::Result<LabelSet> {
        let slot = self.vertex_slot(v)?;
        let buf = self.read_at(slot.lin_off, slot.lin_len)?;
        decode_label_set(&mut buf.as_slice())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads a whole category segment (one seek + one sequential read).
    pub fn load_category(&self, c: CategoryId) -> io::Result<CategorySegment> {
        let &(off, len) = self.category_dir.get(c.index()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "category beyond the directory")
        })?;
        let raw = self.read_at(off, len)?;
        let mut buf = raw.as_slice();
        let truncated = || io::Error::new(io::ErrorKind::InvalidData, "truncated segment");
        if buf.remaining() < 4 {
            return Err(truncated());
        }
        let num_lists = buf.get_u32_le() as usize;
        let mut lists: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
        for _ in 0..num_lists {
            if buf.remaining() < 8 {
                return Err(truncated());
            }
            let hub = VertexId(buf.get_u32_le());
            let len = buf.get_u32_le() as usize;
            // `len * 12` wraps 32-bit usize for crafted lengths; saturate so
            // the lying length is caught here instead of over-allocating.
            if buf.remaining() < len.saturating_mul(12) {
                return Err(truncated());
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let m = VertexId(buf.get_u32_le());
                let d: Weight = buf.get_u64_le();
                list.push((m, d));
            }
            lists.insert(hub, list);
        }
        if buf.remaining() < 4 {
            return Err(truncated());
        }
        let num_members = buf.get_u32_le() as usize;
        let mut louts = FxHashMap::default();
        for _ in 0..num_members {
            if buf.remaining() < 4 {
                return Err(truncated());
            }
            let m = VertexId(buf.get_u32_le());
            let set = decode_label_set(&mut buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            louts.insert(m, set);
        }
        Ok(CategorySegment {
            inverted: InvertedLabelIndex::from_lists(lists, num_members),
            louts,
        })
    }

    /// Seeks performed so far.
    pub fn seek_count(&self) -> u64 {
        self.seeks.load(Ordering::Relaxed)
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Resets the I/O counters.
    pub fn reset_io_counters(&self) {
        self.seeks.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;
    use kosr_hoplabel::HubOrder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn setup(test: &str) -> (kosr_graph::Graph, HopLabels, std::path::PathBuf) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut b = GraphBuilder::new(25);
        for _ in 0..90 {
            let a = rng.gen_range(0..25u32);
            let c = rng.gen_range(0..25u32);
            if a != c {
                b.add_edge(v(a), v(c), rng.gen_range(1..20));
            }
        }
        let ca = b.categories_mut().add_category("A");
        let cb = b.categories_mut().add_category("B");
        for i in 0..25u32 {
            if i % 3 == 0 {
                b.categories_mut().insert(v(i), ca);
            }
            if i % 4 == 1 {
                b.categories_mut().insert(v(i), cb);
            }
        }
        let g = b.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let dir = std::env::temp_dir().join(format!("kosr_disk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Unique file per test: the tests run concurrently.
        (g, labels, dir.join(format!("{test}.bin")))
    }

    #[test]
    fn roundtrip_vertex_labels() {
        let (g, labels, path) = setup("roundtrip_vertex_labels");
        create(&path, &labels, g.categories()).unwrap();
        let disk = DiskIndex::open(&path).unwrap();
        assert_eq!(disk.num_vertices(), 25);
        assert_eq!(disk.num_categories(), 2);
        for i in 0..25u32 {
            assert_eq!(&disk.load_lout(v(i)).unwrap(), labels.lout(v(i)));
            assert_eq!(&disk.load_lin(v(i)).unwrap(), labels.lin(v(i)));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_category_segment() {
        let (g, labels, path) = setup("roundtrip_category_segment");
        create(&path, &labels, g.categories()).unwrap();
        let disk = DiskIndex::open(&path).unwrap();
        for c in [CategoryId(0), CategoryId(1)] {
            let seg = disk.load_category(c).unwrap();
            let fresh = InvertedLabelIndex::build(&labels, g.categories(), c);
            assert_eq!(seg.inverted.num_entries(), fresh.num_entries());
            assert_eq!(seg.inverted.num_members(), fresh.num_members());
            // Every member's Lout is present and identical.
            for &m in g.categories().vertices_of(c) {
                assert_eq!(seg.louts.get(&m).unwrap(), labels.lout(m));
            }
            // Lists agree hub by hub.
            for (hub, list) in fresh.iter_lists() {
                assert_eq!(seg.inverted.list(hub).unwrap(), list);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_counters_track_access() {
        let (g, labels, path) = setup("io_counters_track_access");
        create(&path, &labels, g.categories()).unwrap();
        let disk = DiskIndex::open(&path).unwrap();
        assert_eq!(disk.seek_count(), 0);
        disk.load_lout(v(0)).unwrap();
        disk.load_lin(v(1)).unwrap();
        disk.load_category(CategoryId(0)).unwrap();
        assert_eq!(disk.seek_count(), 3);
        assert!(disk.bytes_read() > 0);
        disk.reset_io_counters();
        assert_eq!(disk.seek_count(), 0);
        assert_eq!(disk.bytes_read(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lying_vertex_count_refused_before_allocating() {
        // A crafted 16-byte file claiming u32::MAX vertices must be a typed
        // error, not a ~100 GB directory allocation.
        let (_, _, path) = setup("lying_vertex_count_refused_before_allocating");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.put_u32_le(u32::MAX);
        data.put_u32_le(u32::MAX);
        std::fs::write(&path, &data).unwrap();
        let err = DiskIndex::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_directory_refused() {
        let (g, labels, path) = setup("truncated_directory_refused");
        create(&path, &labels, g.categories()).unwrap();
        let data = std::fs::read(&path).unwrap();
        // Keep the header but cut the file inside the directory region.
        std::fs::write(&path, &data[..40]).unwrap();
        let err = DiskIndex::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_ids_are_typed_errors() {
        let (g, labels, path) = setup("out_of_range_ids_are_typed_errors");
        create(&path, &labels, g.categories()).unwrap();
        let disk = DiskIndex::open(&path).unwrap();
        for err in [
            disk.load_lout(v(25)).unwrap_err(),
            disk.load_lin(v(9999)).unwrap_err(),
            disk.load_category(CategoryId(2)).unwrap_err(),
        ] {
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        // In-range loads still work on the same handle.
        assert_eq!(&disk.load_lout(v(0)).unwrap(), labels.lout(v(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let (g, labels, path) = setup("bad_magic_rejected");
        create(&path, &labels, g.categories()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[0] = b'X';
        std::fs::write(&path, &data).unwrap();
        assert!(DiskIndex::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
