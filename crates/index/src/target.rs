//! Fixed-target distance oracles: `dis(v, t)` for the query's destination
//! `t`, the quantity StarKOSR's admissible estimation is built on (§IV-B).
//!
//! * [`LabelTarget`] wraps [`kosr_hoplabel::TargetDistancer`] (one `Lout(v)`
//!   scan per distinct source, memoised).
//! * [`DijkstraTarget`] runs one lazy backward Dijkstra from `t` — the
//!   estimation strategy available to the `SK-Dij` baseline, which has no
//!   label index.

use kosr_graph::{Graph, VertexId, Weight};
use kosr_hoplabel::{HopLabels, TargetDistancer};
use kosr_pathfinding::{Dijkstra, Dir};

/// `dis(v, target)` for a target fixed at construction time.
pub trait TargetDistance {
    /// The shortest-path distance from `v` to the fixed target
    /// ([`kosr_graph::INFINITY`] when `v` cannot reach it).
    fn to_target(&mut self, v: VertexId) -> Weight;

    /// The fixed target vertex.
    fn target(&self) -> VertexId;
}

/// Label-backed oracle.
pub struct LabelTarget<'a> {
    labels: &'a HopLabels,
    inner: TargetDistancer,
}

impl<'a> LabelTarget<'a> {
    /// Prepares the oracle for `t`.
    pub fn new(labels: &'a HopLabels, t: VertexId) -> Self {
        LabelTarget {
            labels,
            inner: TargetDistancer::new(labels, t),
        }
    }
}

impl TargetDistance for LabelTarget<'_> {
    fn to_target(&mut self, v: VertexId) -> Weight {
        self.inner.distance_from(self.labels, v)
    }

    fn target(&self) -> VertexId {
        self.inner.target()
    }
}

/// Dijkstra-backed oracle: a single backward one-to-all search from `t`,
/// run lazily on the first request.
pub struct DijkstraTarget<'a> {
    g: &'a Graph,
    t: VertexId,
    search: Dijkstra,
    ran: bool,
}

impl<'a> DijkstraTarget<'a> {
    /// Prepares the oracle for `t` (the search runs on first use).
    pub fn new(g: &'a Graph, t: VertexId) -> Self {
        DijkstraTarget {
            g,
            t,
            search: Dijkstra::new(g.num_vertices()),
            ran: false,
        }
    }
}

impl TargetDistance for DijkstraTarget<'_> {
    fn to_target(&mut self, v: VertexId) -> Weight {
        if !self.ran {
            self.search.one_to_all(self.g, Dir::Backward, self.t);
            self.ran = true;
        }
        self.search.distance(v)
    }

    fn target(&self) -> VertexId {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::{GraphBuilder, INFINITY};
    use kosr_hoplabel::HubOrder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn cycle_graph() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(v(i), v(i + 1), (i + 2) as u64);
        }
        b.add_edge(v(5), v(0), 1);
        b.build()
    }

    #[test]
    fn oracles_agree() {
        let g = cycle_graph();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let t = v(3);
        let mut a = LabelTarget::new(&labels, t);
        let mut b = DijkstraTarget::new(&g, t);
        assert_eq!(a.target(), t);
        assert_eq!(b.target(), t);
        for s in 0..6u32 {
            assert_eq!(a.to_target(v(s)), b.to_target(v(s)), "s={s}");
        }
    }

    #[test]
    fn unreachable_target() {
        let mut builder = GraphBuilder::new(3);
        builder.add_edge(v(0), v(1), 2);
        let g = builder.build();
        let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
        let mut a = LabelTarget::new(&labels, v(2));
        let mut b = DijkstraTarget::new(&g, v(2));
        assert_eq!(a.to_target(v(0)), INFINITY);
        assert_eq!(b.to_target(v(0)), INFINITY);
        assert_eq!(a.to_target(v(2)), 0);
        assert_eq!(b.to_target(v(2)), 0);
    }
}
