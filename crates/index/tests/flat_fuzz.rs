//! Fuzz/property suite for the **v2 flat-arena snapshot codec** — the
//! same total-decode discipline the v1 snapshot and wire fuzz suites
//! enforce: arbitrary bytes produce typed errors (never a panic, never an
//! attacker-sized allocation), valid blobs survive mutation rounds with a
//! typed outcome, and on random worlds the v1 and v2 paths reconstruct
//! indexes that answer identically.

use kosr_graph::{CategoryId, Graph, VertexId};
use kosr_hoplabel::{HopLabels, HubOrder};
use kosr_index::arena::{
    blob_version, decode_snapshot_v2, downgrade, encode_snapshot_v2, FlatSnapshot,
    FLAT_SNAPSHOT_VERSION,
};
use kosr_index::snapshot::{decode_snapshot, encode_snapshot};
use kosr_index::CategoryIndexSet;
use proptest::prelude::*;

/// Builds a world from proptest-driven raw material: edges and category
/// memberships land where the fuzzer puts them (self-loops and duplicates
/// are dropped by the builder's own rules).
fn world(
    n: usize,
    edges: &[(u32, u32, u64)],
    members: &[(u32, u32)],
) -> (Graph, HopLabels, CategoryIndexSet) {
    let mut b = kosr_graph::GraphBuilder::new(n);
    for &(a, t, w) in edges {
        let (a, t) = (a % n as u32, t % n as u32);
        if a != t {
            b.add_edge(VertexId(a), VertexId(t), w % 100 + 1);
        }
    }
    b.categories_mut().ensure_categories(3);
    for &(v, c) in members {
        b.categories_mut()
            .insert(VertexId(v % n as u32), CategoryId(c % 3));
    }
    let g = b.build();
    let labels = kosr_hoplabel::build(&g, &HubOrder::Degree);
    let inverted = CategoryIndexSet::build(&labels, g.categories());
    (g, labels, inverted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw fuzz: any byte vector validates to Ok or a typed error — no
    /// panic from either codec or the version sniffer.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(proptest::bits::u8::ANY, 0..200)) {
        let _ = blob_version(&bytes);
        let _ = FlatSnapshot::validate(&bytes);
        let _ = decode_snapshot_v2(&bytes);
        let _ = downgrade(&bytes);
        let _ = decode_snapshot(&bytes);
    }

    /// Bytes that *start* like a v2 snapshot (magic + version) but carry
    /// fuzzed counts and body still only produce typed errors.
    #[test]
    fn crafted_headers_never_panic(body in proptest::collection::vec(proptest::bits::u8::ANY, 0..160)) {
        let mut bytes = b"KOSRSNP\0".to_vec();
        bytes.push(FLAT_SNAPSHOT_VERSION);
        bytes.extend_from_slice(&body);
        let _ = FlatSnapshot::validate(&bytes);
        let _ = decode_snapshot_v2(&bytes);
    }

    /// On arbitrary worlds the v2 roundtrip is lossless — graph, labels,
    /// categories, and inverted indexes all agree — and re-encoding the
    /// decoded world reproduces the blob bit for bit.
    #[test]
    fn random_worlds_roundtrip_losslessly(
        n in 2usize..16,
        edges in proptest::collection::vec((0u32..16, 0u32..16, 1u64..100), 1..40),
        members in proptest::collection::vec((0u32..16, 0u32..3), 0..20),
    ) {
        let (g, labels, inverted) = world(n, &edges, &members);
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        let (g2, labels2, inverted2) = decode_snapshot_v2(&blob).expect("own blob validates");
        for s in g.vertices() {
            prop_assert_eq!(
                g2.out_edges(s).collect::<Vec<_>>(),
                g.out_edges(s).collect::<Vec<_>>()
            );
            prop_assert_eq!(g2.categories().categories_of(s), g.categories().categories_of(s));
            for t in g.vertices() {
                prop_assert_eq!(labels2.distance(s, t), labels.distance(s, t));
            }
        }
        for c in 0..3u32 {
            let (a, b) = (inverted.category(CategoryId(c)), inverted2.category(CategoryId(c)));
            prop_assert_eq!(a.num_members(), b.num_members());
            prop_assert_eq!(a.num_entries(), b.num_entries());
            for (h, list) in a.iter_lists() {
                prop_assert_eq!(b.list(h), Some(list));
            }
        }
        prop_assert_eq!(encode_snapshot_v2(&g2, &labels2, &inverted2), blob);
    }

    /// The v1 and v2 codecs agree: downgrading a v2 blob yields exactly
    /// the direct v1 encoding, and decoding either format reconstructs
    /// the same distances.
    #[test]
    fn v1_and_v2_paths_agree(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1u64..50), 1..25),
        members in proptest::collection::vec((0u32..12, 0u32..3), 0..12),
    ) {
        let (g, labels, inverted) = world(n, &edges, &members);
        let v2 = encode_snapshot_v2(&g, &labels, &inverted);
        let v1 = downgrade(&v2).expect("world fits v1");
        prop_assert_eq!(&v1, &encode_snapshot(&g, &labels).unwrap());
        let (g1, l1) = decode_snapshot(&v1).expect("v1 decodes");
        let (g2, l2, _) = decode_snapshot_v2(&v2).expect("v2 decodes");
        for s in g.vertices() {
            prop_assert_eq!(
                g1.out_edges(s).collect::<Vec<_>>(),
                g2.out_edges(s).collect::<Vec<_>>()
            );
            for t in g.vertices() {
                prop_assert_eq!(l1.distance(s, t), l2.distance(s, t));
            }
        }
    }

    /// Truncations and single-byte mutations of a valid blob never panic:
    /// validate() answers Ok (a benign flip, e.g. inside a weight) or a
    /// typed error, and a flipped blob that still validates must still
    /// materialise without panicking.
    #[test]
    fn mutated_valid_blobs_never_panic(
        cut_seed in 0u64..u64::MAX,
        flip_pos in 0usize..usize::MAX,
        flip_bits in 1u8..=255,
    ) {
        let (g, labels, inverted) = world(
            6,
            &[(0, 1, 3), (1, 2, 4), (2, 3, 5), (3, 4, 1), (4, 5, 2), (5, 0, 7)],
            &[(1, 0), (3, 0), (2, 1)],
        );
        let blob = encode_snapshot_v2(&g, &labels, &inverted);
        let cut = (cut_seed as usize) % (blob.len() + 1);
        let _ = decode_snapshot_v2(&blob[..cut]);
        let mut mutated = blob.clone();
        mutated[flip_pos % blob.len()] ^= flip_bits;
        let _ = decode_snapshot_v2(&mutated);
        let _ = downgrade(&mutated);
    }
}

/// Deterministic spot checks complementing the sweeps above.
#[test]
fn version_dispatch_and_interop() {
    let (g, labels, inverted) = world(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)], &[(1, 0)]);
    let v2 = encode_snapshot_v2(&g, &labels, &inverted);
    let v1 = encode_snapshot(&g, &labels).unwrap();
    assert_eq!(blob_version(&v2), Some(2));
    assert_eq!(blob_version(&v1), Some(1));
    // The v1 decoder refuses a v2 blob with a *typed* version error (what
    // an old binary reports when handed the new format).
    assert!(matches!(
        decode_snapshot(&v2),
        Err(kosr_index::snapshot::SnapshotError::UnsupportedVersion { found: 2 })
    ));
    // And the v2 validator refuses a v1 blob the same way.
    assert!(matches!(
        FlatSnapshot::validate(&v1),
        Err(kosr_index::snapshot::SnapshotError::UnsupportedVersion { found: 1 })
    ));
}
