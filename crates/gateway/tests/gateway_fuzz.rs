//! Gateway edge fuzz suite, mirroring `wire_fuzz`: the HTTP request
//! parser and the JSON decoder are **total** — arbitrary bytes produce a
//! typed error, never a panic — mutated/truncated valid requests stay
//! panic-free, declared-oversized bodies are refused *before* any body
//! allocation, and pathological nesting is a typed error rather than a
//! stack overflow.

use kosr_gateway::http::{read_request, HttpError, HttpLimits};
use kosr_gateway::json::{self, Json, JsonError, JsonLimits};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw fuzz: any byte vector through both decoders — Ok or typed
    /// error, no panic.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(proptest::bits::u8::ANY, 0..300),
    ) {
        let _ = json::parse(&bytes);
        let _ = read_request(&mut &bytes[..], &HttpLimits::default());
        // Tiny limits exercise the cap paths on the same input.
        let tight = HttpLimits { max_head_bytes: 16, max_body_bytes: 8, ..Default::default() };
        let _ = read_request(&mut &bytes[..], &tight);
        let _ = json::parse_with(&bytes, &JsonLimits { max_bytes: 16, max_depth: 2 });
    }

    /// Structured fuzz: a valid route request with every prefix truncated
    /// and a byte flipped still decodes without panicking.
    #[test]
    fn mutated_valid_requests_never_panic(
        (source, target, k) in (0u32..500, 0u32..500, 1u64..8),
        cats in proptest::collection::vec(0u32..12, 0..5),
        cut in proptest::bits::u8::ANY,
        flip_pos in 0usize..512,
        flip_bits in proptest::bits::u8::ANY,
    ) {
        let cats: Vec<String> = cats.iter().map(u32::to_string).collect();
        let body = format!(
            "{{\"source\": {source}, \"target\": {target}, \"categories\": [{}], \"k\": {k}}}",
            cats.join(","),
        );
        let request = format!(
            "POST /v1/route HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        );
        let frame = request.into_bytes();

        // The pristine request parses, and its body is valid JSON.
        let parsed = read_request(&mut &frame[..], &HttpLimits::default()).expect("valid");
        prop_assert!(json::parse(&parsed.body).is_ok());

        // Truncations and bit flips are typed errors or valid requests —
        // never panics.
        let cut = (cut as usize) % (frame.len() + 1);
        let _ = read_request(&mut &frame[..cut], &HttpLimits::default());
        let mut mutated = frame.clone();
        let pos = flip_pos % mutated.len();
        mutated[pos] ^= flip_bits;
        if let Ok(req) = read_request(&mut &mutated[..], &HttpLimits::default()) {
            let _ = json::parse(&req.body);
        }
    }

    /// A declared `Content-Length` past the cap is refused typed, before
    /// the body is read or allocated — for *any* oversized declaration up
    /// to `u64::MAX`.
    #[test]
    fn oversized_declared_bodies_always_refused(extra in 1u64..u64::MAX - 128) {
        let limit = 128usize;
        let declared = limit as u64 + extra;
        let head = format!("POST /v1/route HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let result = read_request(
            &mut head.as_bytes(),
            &HttpLimits { max_head_bytes: 8192, max_body_bytes: limit, ..Default::default() },
        );
        prop_assert_eq!(result, Err(HttpError::BodyTooLarge { declared, limit }));
    }

    /// JSON string and integer values round-trip through the serializer
    /// and parser bit-for-bit.
    #[test]
    fn json_values_roundtrip(
        bytes in proptest::collection::vec(proptest::bits::u8::ANY, 0..64),
        n in 0u64..(1 << 53),
    ) {
        let s = Json::Str(String::from_utf8_lossy(&bytes).into_owned());
        prop_assert_eq!(json::parse(s.to_string().as_bytes()).unwrap(), s);
        let num = Json::Num(n as f64);
        prop_assert_eq!(json::parse(num.to_string().as_bytes()).unwrap(), num);
    }

    /// Nesting past the depth limit is a typed error at every depth — the
    /// parser's recursion is bounded by the limit, not the input.
    #[test]
    fn deep_nesting_is_typed_not_a_stack_overflow(depth in 33usize..5000) {
        let mut bytes = vec![b'['; depth];
        bytes.extend(vec![b']'; depth]);
        prop_assert_eq!(
            json::parse(&bytes),
            Err(JsonError::TooDeep { limit: JsonLimits::default().max_depth })
        );
    }
}

/// Deterministic spot checks complementing the sweeps.
#[test]
fn http_error_statuses_are_stable() {
    use kosr_gateway::http::status_of_parse_error;
    assert_eq!(status_of_parse_error(&HttpError::ConnectionClosed), None);
    assert_eq!(status_of_parse_error(&HttpError::Idle), None);
    assert_eq!(
        status_of_parse_error(&HttpError::BodyTooLarge {
            declared: 10,
            limit: 1
        }),
        Some(413)
    );
    assert_eq!(
        status_of_parse_error(&HttpError::HeadTooLarge { limit: 1 }),
        Some(431)
    );
    assert_eq!(
        status_of_parse_error(&HttpError::MalformedRequestLine),
        Some(400)
    );
    assert_eq!(
        status_of_parse_error(&HttpError::UnsupportedVersion),
        Some(505)
    );
}
