//! A dependency-free JSON codec for the gateway's request/response
//! bodies: a **total, panic-free** recursive-descent parser (explicit
//! depth limit, input size checked *before* any allocation — fuzz-tested
//! like the wire decoder) and an escaping serializer.
//!
//! Numbers are `f64`, which is exact for every id, count and route cost
//! this API carries (all well under 2⁵³); [`Json::as_u64`] refuses
//! non-integral or out-of-range values rather than truncating.

use std::fmt;

/// Parser limits. Both bounds are enforced *before* the corresponding
/// allocation: an oversized input is refused by length, a deep nesting by
/// the depth counter (no parser recursion ever exceeds it).
#[derive(Clone, Copy, Debug)]
pub struct JsonLimits {
    /// Largest accepted input in bytes.
    pub max_bytes: usize,
    /// Deepest accepted array/object nesting.
    pub max_depth: usize,
}

impl Default for JsonLimits {
    fn default() -> JsonLimits {
        JsonLimits {
            max_bytes: 1 << 20,
            max_depth: 32,
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are kept as sent;
    /// [`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (first occurrence), else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer: a number that is non-negative,
    /// integral, and exactly representable (`≤ 2⁵³`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64).then_some(n as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn escape_into(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Serializes to compact JSON. `parse(x.to_string()) == x` for every
    /// value this module produces (NaN/infinite numbers, which JSON cannot
    /// carry, render as `null`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape_into(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why an input was refused. The parser is total: every byte sequence
/// yields `Ok` or one of these, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Input longer than [`JsonLimits::max_bytes`] — refused before any
    /// parsing allocation.
    TooLarge {
        /// Input length.
        len: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Nesting deeper than [`JsonLimits::max_depth`].
    TooDeep {
        /// The configured cap.
        limit: usize,
    },
    /// An unexpected byte at `at`.
    Unexpected {
        /// Byte offset of the offense.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// Input ended mid-value.
    UnexpectedEnd,
    /// A malformed number starting at `at`.
    BadNumber {
        /// Byte offset of the number.
        at: usize,
    },
    /// A malformed escape sequence at `at`.
    BadEscape {
        /// Byte offset of the escape.
        at: usize,
    },
    /// Invalid UTF-8 inside a string at `at`.
    BadUtf8 {
        /// Byte offset of the offense.
        at: usize,
    },
    /// Bytes left over after one complete value.
    Trailing {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::TooLarge { len, limit } => {
                write!(f, "body of {len} bytes exceeds the {limit}-byte limit")
            }
            JsonError::TooDeep { limit } => write!(f, "nesting deeper than {limit}"),
            JsonError::Unexpected { at, byte } => {
                write!(f, "unexpected byte 0x{byte:02x} at offset {at}")
            }
            JsonError::UnexpectedEnd => write!(f, "unexpected end of input"),
            JsonError::BadNumber { at } => write!(f, "malformed number at offset {at}"),
            JsonError::BadEscape { at } => write!(f, "malformed escape at offset {at}"),
            JsonError::BadUtf8 { at } => write!(f, "invalid utf-8 at offset {at}"),
            JsonError::Trailing { at } => write!(f, "trailing bytes at offset {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value under the default [`JsonLimits`].
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    parse_with(bytes, &JsonLimits::default())
}

/// Parses one JSON value under explicit limits. Total and panic-free; see
/// [`JsonError`].
pub fn parse_with(bytes: &[u8], limits: &JsonLimits) -> Result<Json, JsonError> {
    if bytes.len() > limits.max_bytes {
        return Err(JsonError::TooLarge {
            len: bytes.len(),
            limit: limits.max_bytes,
        });
    }
    let mut p = Parser {
        bytes,
        at: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at < p.bytes.len() {
        return Err(JsonError::Trailing { at: p.at });
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect_literal(&mut self, lit: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(lit) {
            self.at += lit.len();
            Ok(value)
        } else if self.bytes.len() - self.at < lit.len() && lit.starts_with(&self.bytes[self.at..])
        {
            Err(JsonError::UnexpectedEnd)
        } else {
            Err(JsonError::Unexpected {
                at: self.at,
                byte: self.bytes[self.at],
            })
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.max_depth {
            return Err(JsonError::TooDeep {
                limit: self.max_depth,
            });
        }
        match self.peek() {
            None => Err(JsonError::UnexpectedEnd),
            Some(b'n') => self.expect_literal(b"null", Json::Null),
            Some(b't') => self.expect_literal(b"true", Json::Bool(true)),
            Some(b'f') => self.expect_literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(byte) => Err(JsonError::Unexpected { at: self.at, byte }),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.at += 1;
        }
        // The byte set above cannot spell `inf`/`NaN`, so a successful
        // float parse is a genuine JSON number — modulo JSON's stricter
        // grammar corners (leading `+`, bare `.`), which float parsing
        // refuses anyway or which we accept as harmless supersets.
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| JsonError::BadNumber { at: start })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError::BadNumber { at: start }),
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let at = self.at;
        let slice = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or(JsonError::UnexpectedEnd)?;
        let text = std::str::from_utf8(slice).map_err(|_| JsonError::BadEscape { at })?;
        let v = u32::from_str_radix(text, 16).map_err(|_| JsonError::BadEscape { at })?;
        self.at += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.at += 1;
        let mut out = String::new();
        let mut run_start = self.at;
        loop {
            match self.peek() {
                None => return Err(JsonError::UnexpectedEnd),
                Some(b'"') => {
                    self.flush_run(run_start, &mut out)?;
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.flush_run(run_start, &mut out)?;
                    self.at += 1;
                    let esc_at = self.at;
                    match self.peek() {
                        None => return Err(JsonError::UnexpectedEnd),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate: consume the paired
                                // `\uXXXX` low half when present; a lone
                                // surrogate decodes to U+FFFD (total, no
                                // crash on any input) — and a following
                                // escape that is *not* a low half is put
                                // back, never swallowed.
                                let before_pair = self.at;
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    } else {
                                        self.at = before_pair;
                                        0xFFFD
                                    }
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            run_start = self.at;
                            continue;
                        }
                        Some(_) => return Err(JsonError::BadEscape { at: esc_at }),
                    }
                    self.at += 1;
                    run_start = self.at;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::Unexpected {
                        at: self.at,
                        byte: b,
                    })
                }
                Some(_) => self.at += 1,
            }
        }
    }

    fn flush_run(&mut self, run_start: usize, out: &mut String) -> Result<(), JsonError> {
        if run_start < self.at {
            let run = std::str::from_utf8(&self.bytes[run_start..self.at])
                .map_err(|_| JsonError::BadUtf8 { at: run_start })?;
            out.push_str(run);
        }
        Ok(())
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                Some(byte) => return Err(JsonError::Unexpected { at: self.at, byte }),
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.at += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return match self.peek() {
                    Some(byte) => Err(JsonError::Unexpected { at: self.at, byte }),
                    None => Err(JsonError::UnexpectedEnd),
                };
            }
            let key = self.string()?;
            self.skip_ws();
            match self.peek() {
                Some(b':') => self.at += 1,
                Some(byte) => return Err(JsonError::Unexpected { at: self.at, byte }),
                None => return Err(JsonError::UnexpectedEnd),
            }
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                Some(byte) => return Err(JsonError::Unexpected { at: self.at, byte }),
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_api_shapes() {
        let v =
            parse(br#"{"source": 3, "categories": [0, 1, 2], "k": 5, "note": "a\nb"}"#).unwrap();
        assert_eq!(v.get("source").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\nb"));
        let cats: Vec<u64> = v
            .get("categories")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect();
        assert_eq!(cats, vec![0, 1, 2]);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn roundtrips_through_display() {
        for text in [
            r#"null"#,
            r#"true"#,
            r#"[1,2.5,-3,"x",[],{}]"#,
            r#"{"a":"quote \" backslash \\ tab \t","b":[null,false]}"#,
        ] {
            let v = parse(text.as_bytes()).unwrap();
            let again = parse(v.to_string().as_bytes()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn unicode_escapes_decode_with_surrogate_pairs() {
        let v = parse(r#""Aé😀""#.as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        // Lone surrogates decode to the replacement character, totally.
        let v = parse(br#""\ud800x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
        // A following `\uXXXX` escape that is not a low half is put back
        // and decoded on its own, not swallowed with the lone surrogate…
        let v = parse(br#""\ud800\u0041x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}Ax"));
        // …even when the put-back escape is itself a high surrogate that
        // then pairs with the escape after it.
        let v = parse(br#""\ud800\ud801\udc01""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}\u{10401}"));
    }

    #[test]
    fn as_u64_refuses_lossy_values() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(9.1e18).as_u64(), None);
        assert_eq!(Json::Num((1u64 << 53) as f64).as_u64(), Some(1 << 53));
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn typed_errors_not_panics() {
        assert!(matches!(parse(b""), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(parse(b"{"), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(parse(b"tru"), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(parse(b"01x"), Err(JsonError::Trailing { .. })));
        assert!(matches!(parse(b"1 2"), Err(JsonError::Trailing { .. })));
        assert!(matches!(parse(b"+1"), Err(JsonError::Unexpected { .. })));
        assert!(matches!(parse(b"1e999"), Err(JsonError::BadNumber { .. })));
        assert!(matches!(parse(b"\"\xff\""), Err(JsonError::BadUtf8 { .. })));
        assert!(matches!(
            parse(b"{1: 2}"),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            parse(br#""\q""#),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn size_rejected_before_parsing_depth_before_overflow() {
        let limits = JsonLimits {
            max_bytes: 10,
            max_depth: 8,
        };
        assert_eq!(
            parse_with(b"[1,2,3,4,5,6]", &limits),
            Err(JsonError::TooLarge { len: 13, limit: 10 })
        );
        // Deep nesting is a typed error, not a stack overflow — even at
        // depths that would blow the stack without the limit.
        let deep = vec![b'['; 100_000];
        assert_eq!(
            parse(&deep),
            Err(JsonError::TooDeep {
                limit: JsonLimits::default().max_depth
            })
        );
    }
}
