//! # kosr-gateway
//!
//! The HTTP edge of the KOSR fleet: the first surface anything *outside*
//! the workspace can reach. A dependency-free threaded HTTP/1.1 server
//! (hand-rolled request parser and fixed-length/chunked response writers,
//! in the same no-network, shim-only spirit as the binary wire protocol)
//! fronting a [`ShardRouter`](kosr_shard::ShardRouter) and, optionally, a
//! running [`SupervisorHandle`](kosr_shard::SupervisorHandle).
//!
//! | endpoint | method | does |
//! |---|---|---|
//! | `/v1/route` | POST | JSON `{source, target, categories, k, deadline_ms?}` → merged top-k routes with per-route cost + stop breakdown |
//! | `/v1/update` | POST | JSON `{op, …}` membership/edge update published through the live update bus |
//! | `/healthz` | GET | per-shard replica health; `200` healthy / `503` degraded |
//! | `/metrics` | GET | Prometheus text: gateway QPS/latency/cache hit rate + latency histograms + trace counters + per-shard health and service stats + supervisor counters |
//! | `/v1/traces/recent` | GET | summaries of recently retained traces and the slow-query log |
//! | `/v1/traces/{id}` | GET | the full span tree of one trace (id from `X-Kosr-Trace-Id`) |
//! | `/v1/subscribe` | POST | register a standing top-k query: JSON `{source, target, categories, k}` → session id + initial full top-k + epoch |
//! | `/v1/subscribe/{id}/poll` | GET | long-poll (`?wait_ms=`) draining the session's queued epoch-diff deltas; answers a typed full resync after queue overflow |
//! | `/v1/subscribe/{id}` | DELETE | end the standing query |
//!
//! Every `/v1/route` request is traced: the response carries an
//! `X-Kosr-Trace-Id` header whenever its trace was retained (sampled, or
//! unsampled-but-slow), and the id fetches the gateway → router → shard →
//! replica span tree — with the paper's pruning counters (PNE expansions,
//! dominated candidates, expansion budget) as tags on the replica's
//! `execute` span — from `/v1/traces/{id}`.
//!
//! ## Error taxonomy → status codes
//!
//! The existing typed rejections map onto HTTP statuses without losing
//! their identity (the JSON error body carries a stable `kind`):
//! deterministic rejections — invalid JSON/request shape, invalid query,
//! invalid update — are `400`; capacity/availability conditions — queue
//! full, deadline exceeded, budget exhausted, transport failure, shutdown
//! — are `503`; an oversized body is `413` *before* the body is read.
//!
//! ## Admission control
//!
//! The edge sheds load at the front door: a bounded connection pool
//! (`503` past the cap, typed), head/body size caps enforced before
//! allocation, and per-request deadlines (`deadline_ms`, or the
//! configured default) checked at admission and after the shard merge —
//! while each replica's planner keeps enforcing its own
//! `PlannerConfig::deadline` on queue wait.
//!
//! ```no_run
//! use std::sync::Arc;
//! use kosr_core::IndexedGraph;
//! use kosr_gateway::{client, Gateway, GatewayConfig};
//! use kosr_graph::{PartitionConfig, Partitioner};
//! use kosr_service::ServiceConfig;
//! use kosr_shard::{ShardRouter, ShardSet};
//!
//! let fx = kosr_core::figure1::figure1();
//! let ig = IndexedGraph::build_default(fx.graph.clone());
//! let partition = Partitioner::new(PartitionConfig { num_shards: 2, ..Default::default() })
//!     .partition(&ig.graph);
//! let router = Arc::new(ShardRouter::new(
//!     ShardSet::build(&ig, partition),
//!     ServiceConfig::default(),
//! ));
//! let gateway = Gateway::spawn(router, None, GatewayConfig::default()).unwrap();
//! let resp = client::call(
//!     gateway.addr(),
//!     "POST",
//!     "/v1/route",
//!     Some(r#"{"source": 0, "target": 7, "categories": [0, 1, 2], "k": 3}"#),
//! ).unwrap();
//! assert_eq!(resp.status, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
mod server;
mod stats;

pub use server::{api_error_of, ApiError, Gateway, GatewayConfig};
pub use stats::{Endpoint, GatewayStats};

// Re-exported so gateway users don't need direct sibling dependencies for
// the common types.
pub use kosr_service::{
    validate_prometheus_text, MetricsRegistry, MetricsSource, Span, SpanId, Trace, TraceContext,
    TraceId, TraceStore,
};
pub use kosr_shard::{ShardError, ShardRouter, SupervisorHandle};
