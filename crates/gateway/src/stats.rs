//! Edge-side instrumentation: request/response counters, an end-to-end
//! latency histogram (reusing the service layer's lock-free
//! [`LatencyHistogram`]), and the [`MetricsSource`] export that puts the
//! gateway's own QPS / p50 / p99 / cache-hit-rate on `/metrics` next to
//! the fleet's counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kosr_service::{LatencyHistogram, MetricsRegistry, MetricsSource};

/// The endpoints the gateway distinguishes in its counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/route`.
    Route,
    /// `POST /v1/update`.
    Update,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `GET /v1/traces/recent` and `GET /v1/traces/{id}`.
    Traces,
    /// `GET /v1/events`.
    Events,
    /// `GET /v1/alerts`.
    Alerts,
    /// `POST /v1/subscribe`, `GET /v1/subscribe/{id}/poll` and
    /// `DELETE /v1/subscribe/{id}`.
    Subscribe,
    /// Anything else (404/405/parse failures).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 9] = [
        Endpoint::Route,
        Endpoint::Update,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Traces,
        Endpoint::Events,
        Endpoint::Alerts,
        Endpoint::Subscribe,
        Endpoint::Other,
    ];

    fn slot(self) -> usize {
        match self {
            Endpoint::Route => 0,
            Endpoint::Update => 1,
            Endpoint::Healthz => 2,
            Endpoint::Metrics => 3,
            Endpoint::Traces => 4,
            Endpoint::Events => 5,
            Endpoint::Alerts => 6,
            Endpoint::Subscribe => 7,
            Endpoint::Other => 8,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Endpoint::Route => "route",
            Endpoint::Update => "update",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Traces => "traces",
            Endpoint::Events => "events",
            Endpoint::Alerts => "alerts",
            Endpoint::Subscribe => "subscribe",
            Endpoint::Other => "other",
        }
    }
}

/// Thread-safe gateway counters. One instance per [`crate::Gateway`],
/// shared with every connection handler.
#[derive(Debug)]
pub struct GatewayStats {
    started: Instant,
    connections_accepted: AtomicU64,
    /// Connections refused at the admission gate (pool full → 503).
    connections_rejected: AtomicU64,
    requests: [AtomicU64; 9],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Requests the HTTP parser refused (malformed head, oversized body).
    malformed: AtomicU64,
    /// Per-shard answers that came from replica result caches, over all
    /// routed queries — the edge's view of the fleet cache hit rate.
    shard_answers: AtomicU64,
    shard_cache_hits: AtomicU64,
    latency: LatencyHistogram,
}

impl Default for GatewayStats {
    fn default() -> GatewayStats {
        GatewayStats {
            started: Instant::now(),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            requests: Default::default(),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            shard_answers: AtomicU64::new(0),
            shard_cache_hits: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }
}

impl GatewayStats {
    pub(crate) fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, endpoint: Endpoint, status: u16, latency: Duration) {
        self.requests[endpoint.slot()].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    pub(crate) fn record_shard_answers(&self, shards: u64, cached: u64) {
        self.shard_answers.fetch_add(shards, Ordering::Relaxed);
        self.shard_cache_hits.fetch_add(cached, Ordering::Relaxed);
    }

    /// Requests served so far (all endpoints).
    pub fn requests(&self) -> u64 {
        Endpoint::ALL
            .iter()
            .map(|e| self.requests[e.slot()].load(Ordering::Relaxed))
            .sum()
    }

    /// Requests served on one endpoint.
    pub fn requests_on(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.slot()].load(Ordering::Relaxed)
    }

    /// Connections refused at the admission gate so far.
    pub fn connections_rejected(&self) -> u64 {
        self.connections_rejected.load(Ordering::Relaxed)
    }

    /// Responses per status class `(2xx, 4xx, 5xx)` so far.
    pub fn responses_by_class(&self) -> (u64, u64, u64) {
        (
            self.responses_2xx.load(Ordering::Relaxed),
            self.responses_4xx.load(Ordering::Relaxed),
            self.responses_5xx.load(Ordering::Relaxed),
        )
    }

    /// Requests per second over the gateway's lifetime.
    pub fn qps(&self) -> f64 {
        let window = self.started.elapsed().as_secs_f64();
        if window > 0.0 {
            self.requests() as f64 / window
        } else {
            0.0
        }
    }

    /// Shard answers served from replica caches over all routed queries,
    /// in `0.0 ..= 1.0` — the edge's fleet-wide cache hit rate.
    pub fn shard_cache_hit_rate(&self) -> f64 {
        let total = self.shard_answers.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            self.shard_cache_hits.load(Ordering::Relaxed) as f64 / total as f64
        }
    }

    /// The request latency quantile `q` (see
    /// [`LatencyHistogram::quantile`]).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        self.latency.quantile(q)
    }
}

impl MetricsSource for GatewayStats {
    fn export(&self, registry: &mut MetricsRegistry) {
        for e in Endpoint::ALL {
            registry.counter(
                "kosr_gateway_requests_total",
                "HTTP requests served, per endpoint",
                &[("endpoint", e.name())],
                self.requests_on(e) as f64,
            );
        }
        let (ok, client_err, server_err) = self.responses_by_class();
        for (class, v) in [("2xx", ok), ("4xx", client_err), ("5xx", server_err)] {
            registry.counter(
                "kosr_gateway_responses_total",
                "HTTP responses, per status class",
                &[("class", class)],
                v as f64,
            );
        }
        registry.counter(
            "kosr_gateway_connections_accepted_total",
            "Connections admitted into the bounded pool",
            &[],
            self.connections_accepted.load(Ordering::Relaxed) as f64,
        );
        registry.counter(
            "kosr_gateway_connections_rejected_total",
            "Connections refused 503 at the admission gate",
            &[],
            self.connections_rejected() as f64,
        );
        registry.counter(
            "kosr_gateway_malformed_requests_total",
            "Requests the HTTP parser refused",
            &[],
            self.malformed.load(Ordering::Relaxed) as f64,
        );
        registry.gauge(
            "kosr_gateway_qps",
            "HTTP requests per second over the gateway lifetime",
            &[],
            self.qps(),
        );
        registry.gauge(
            "kosr_gateway_shard_cache_hit_rate",
            "Per-shard answers served from replica caches (0..1)",
            &[],
            self.shard_cache_hit_rate(),
        );
        for (q, v) in [
            ("0.5", self.latency.quantile(0.5)),
            ("0.99", self.latency.quantile(0.99)),
            ("1", self.latency.max()),
        ] {
            registry.gauge(
                "kosr_gateway_latency_seconds",
                "End-to-end request latency quantiles in seconds",
                &[("quantile", q)],
                v.as_secs_f64(),
            );
        }
        registry.histogram(
            "kosr_gateway_latency_histogram_seconds",
            "End-to-end request latency distribution (cumulative log buckets)",
            &[],
            &self.latency.cumulative_octaves(),
            self.latency.sum().as_secs_f64(),
            self.latency.count(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_service::validate_prometheus_text;

    #[test]
    fn counters_accumulate_and_export_validly() {
        let stats = GatewayStats::default();
        stats.connection_accepted();
        stats.record(Endpoint::Route, 200, Duration::from_millis(2));
        stats.record(Endpoint::Route, 400, Duration::from_millis(1));
        stats.record(Endpoint::Metrics, 200, Duration::from_micros(300));
        stats.record(Endpoint::Other, 503, Duration::from_micros(50));
        stats.record(Endpoint::Traces, 200, Duration::from_micros(80));
        stats.record_shard_answers(4, 3);
        stats.connection_rejected();
        stats.malformed();

        assert_eq!(stats.requests(), 5);
        assert_eq!(stats.requests_on(Endpoint::Route), 2);
        assert_eq!(stats.requests_on(Endpoint::Traces), 1);
        assert_eq!(stats.responses_by_class(), (3, 1, 1));
        assert!((stats.shard_cache_hit_rate() - 0.75).abs() < 1e-9);
        assert!(stats.qps() > 0.0);
        assert!(stats.latency_quantile(0.99) >= stats.latency_quantile(0.5));

        let mut reg = MetricsRegistry::new();
        reg.collect(&stats);
        let text = reg.render();
        validate_prometheus_text(&text).expect(&text);
        assert!(text.contains("kosr_gateway_requests_total{endpoint=\"route\"} 2"));
        assert!(text.contains("kosr_gateway_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("kosr_gateway_shard_cache_hit_rate 0.75"));
        assert!(text.contains("kosr_gateway_connections_rejected_total 1"));
        assert!(text.contains("kosr_gateway_requests_total{endpoint=\"traces\"} 1"));
        assert!(text.contains("# TYPE kosr_gateway_latency_histogram_seconds histogram"));
        assert!(text.contains("kosr_gateway_latency_histogram_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("kosr_gateway_latency_histogram_seconds_count 5"));
    }
}
