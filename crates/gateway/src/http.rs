//! A hand-rolled HTTP/1.1 server codec in the same no-dependency,
//! shim-only spirit as the binary wire protocol: a **total** request
//! parser (arbitrary bytes produce a typed [`HttpError`], never a panic;
//! oversized heads and bodies are refused *before* the corresponding
//! allocation) and fixed-length / chunked response writers.
//!
//! Scope is deliberately the subset an API edge needs: `GET`/`POST`,
//! `Content-Length` bodies, keep-alive. `Transfer-Encoding` request
//! bodies and HTTP/2 upgrades are refused typed.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Parser limits, enforced before allocation.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Largest accepted request head (request line + headers) in bytes.
    pub max_head_bytes: usize,
    /// Largest accepted request body in bytes — a larger declared
    /// `Content-Length` is refused without reading or allocating it.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one request, measured from its first
    /// byte. Socket read timeouts *within* the budget are retried (a slow
    /// client is not a protocol error); past it the request fails typed.
    pub read_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 8 << 10,
            max_body_bytes: 1 << 20,
            read_deadline: Duration::from_secs(10),
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path + optional query string), as sent.
    pub target: String,
    /// Header `(name, value)` pairs in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
    /// `true` for HTTP/1.1 requests — responses to HTTP/1.0 clients must
    /// not use framing (chunked transfer) their protocol lacks.
    pub http11: bool,
}

impl HttpRequest {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The path part of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a request could not be read. The parser is total — any byte input
/// yields a request or one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending a request —
    /// the quiet end of a keep-alive session, not an error to report.
    ConnectionClosed,
    /// The socket timed out before the *first* byte of a request — an
    /// idle keep-alive connection; callers poll their shutdown flag and
    /// try again.
    Idle,
    /// An I/O failure mid-request.
    Io(String),
    /// The request head exceeded [`HttpLimits::max_head_bytes`].
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    MalformedRequestLine,
    /// A header line has no `:` separator or a malformed name.
    MalformedHeader,
    /// The request speaks a protocol other than HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
    /// `Content-Length` is not a decimal integer (or conflicts).
    BadContentLength,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`] — refused
    /// before any body byte is read or buffered.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
        /// The configured cap.
        limit: usize,
    },
    /// A request body arrived with `Transfer-Encoding` instead of
    /// `Content-Length`; this edge does not accept chunked uploads.
    UnsupportedTransferEncoding,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "idle connection"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::MalformedRequestLine => write!(f, "malformed request line"),
            HttpError::MalformedHeader => write!(f, "malformed header"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadContentLength => write!(f, "bad content-length"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding request bodies not supported")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// The status code a request-parse failure maps to (`None` when nothing
/// should be written — the peer is gone or merely idle).
pub fn status_of_parse_error(e: &HttpError) -> Option<u16> {
    match e {
        HttpError::ConnectionClosed | HttpError::Idle | HttpError::Io(_) => None,
        HttpError::HeadTooLarge { .. } => Some(431),
        HttpError::MalformedRequestLine
        | HttpError::MalformedHeader
        | HttpError::BadContentLength => Some(400),
        HttpError::UnsupportedVersion => Some(505),
        HttpError::BodyTooLarge { .. } => Some(413),
        HttpError::UnsupportedTransferEncoding => Some(411),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from `r`. Blocking; a read timeout before the first
/// byte is the typed [`HttpError::Idle`] so keep-alive handlers can poll
/// their shutdown flag. Head and body caps are enforced before the
/// corresponding allocation grows past them.
pub fn read_request(r: &mut impl Read, limits: &HttpLimits) -> Result<HttpRequest, HttpError> {
    // --- head: byte-at-a-time until CRLFCRLF (or LFLF), capped ---
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    // Started at the first byte: socket read timeouts inside the budget
    // are retried (a slow client mid-request is not a protocol error);
    // only the overall deadline fails the request.
    let mut started: Option<Instant> = None;
    let check_deadline = |started: &Option<Instant>| match started {
        Some(t0) if t0.elapsed() > limits.read_deadline => {
            Err(HttpError::Io("request read deadline exceeded".into()))
        }
        _ => Ok(()),
    };
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    HttpError::ConnectionClosed
                } else {
                    HttpError::Io("eof mid-request".into())
                })
            }
            Ok(_) => {
                started.get_or_insert_with(Instant::now);
                head.push(byte[0]);
                if head.len() > limits.max_head_bytes {
                    return Err(HttpError::HeadTooLarge {
                        limit: limits.max_head_bytes,
                    });
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) if is_timeout(&e) && head.is_empty() => return Err(HttpError::Idle),
            Err(e) if is_timeout(&e) => check_deadline(&started)?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }

    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::MalformedRequestLine),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::UnsupportedVersion),
    };
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let keep_alive_default = http11;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::MalformedHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::MalformedHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => keep_alive_default,
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }

    // --- body: length checked against the cap BEFORE allocation ---
    let mut body = Vec::new();
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
    if let Some((_, cl)) = lengths.next() {
        // Duplicate Content-Length headers that disagree are the classic
        // request-smuggling desync primitive: refuse them outright
        // (RFC 7230 §3.3.2). Duplicates that agree are tolerated.
        if lengths.any(|(_, other)| other.trim() != cl.trim()) {
            return Err(HttpError::BadContentLength);
        }
        let declared: u64 = cl.trim().parse().map_err(|_| HttpError::BadContentLength)?;
        if declared > limits.max_body_bytes as u64 {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: limits.max_body_bytes,
            });
        }
        body = vec![0u8; declared as usize];
        let mut filled = 0;
        while filled < body.len() {
            match r.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::Io("eof mid-body".into())),
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) => check_deadline(&started)?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e.to_string())),
            }
        }
    }

    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
        keep_alive,
        http11,
    })
}

/// The canonical reason phrase of the status codes this edge emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a fixed-length (`Content-Length`) response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with_headers(w, status, content_type, &[], body, keep_alive)
}

/// Writes a fixed-length response carrying extra `(name, value)` headers
/// — what `/v1/route` uses to attach `X-Kosr-Trace-Id`. Header values
/// must be line-safe (no CR/LF); the trace ids this edge emits are hex.
pub fn write_response_with_headers(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a `Transfer-Encoding: chunked` response, `chunk`-byte chunks at
/// a time — what the `/metrics` page uses so its (unbounded-over-time)
/// exposition never needs a pre-computed length.
pub fn write_response_chunked(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    chunk: usize,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for piece in body.chunks(chunk.max(1)) {
        write!(w, "{:x}\r\n", piece.len())?;
        w.write_all(piece)?;
        w.write_all(b"\r\n")?;
    }
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<HttpRequest, HttpError> {
        read_request(&mut &bytes[..], &HttpLimits::default())
    }

    #[test]
    fn parses_get_and_post() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert!(req.keep_alive);
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));

        let req = parse(
            b"POST /v1/route HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"k\":1}",
        )
        .unwrap();
        assert_eq!(req.body, b"{\"k\":1}");
        assert_eq!(req.path(), "/v1/route");

        let req = parse(b"GET /metrics?x=1 HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "1.0 defaults to close");
        assert!(!req.http11);
        assert_eq!(req.path(), "/metrics");
    }

    #[test]
    fn conflicting_content_lengths_are_refused() {
        // Disagreeing duplicates are the request-smuggling desync
        // primitive: refused outright, the body never read.
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 100\r\n\r\nhello"),
            Err(HttpError::BadContentLength)
        );
        // Agreeing duplicates are tolerated.
        let req = parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn connection_header_overrides_default() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn typed_errors_for_malformed_requests() {
        assert_eq!(parse(b""), Err(HttpError::ConnectionClosed));
        assert!(
            matches!(parse(b"GET"), Err(HttpError::Io(_))),
            "eof mid-head"
        );
        assert_eq!(parse(b"\r\n\r\n"), Err(HttpError::MalformedRequestLine));
        assert_eq!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::MalformedHeader)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn oversized_head_and_body_are_refused_before_allocation() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 128,
            ..Default::default()
        };
        let mut big_head = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        big_head.extend(vec![b'a'; 200]);
        big_head.extend_from_slice(b"\r\n\r\n");
        assert_eq!(
            read_request(&mut &big_head[..], &limits),
            Err(HttpError::HeadTooLarge { limit: 64 })
        );

        // A u64::MAX declared body must be refused without allocating it —
        // if the parser tried, this test would OOM rather than pass.
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert_eq!(
            read_request(&mut huge.as_bytes(), &limits),
            Err(HttpError::BodyTooLarge {
                declared: u64::MAX,
                limit: 128
            })
        );
    }

    #[test]
    fn response_writers_emit_wellformed_http() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            200,
            "application/json",
            &[("X-Kosr-Trace-Id", "abc123".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Kosr-Trace-Id: abc123\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response_chunked(&mut out, 200, "text/plain", b"abcdefg", 4, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("4\r\nabcd\r\n3\r\nefg\r\n0\r\n\r\n"));
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn parser_accepts_bare_lf_line_endings() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path(), "/healthz");
    }
}
