//! A minimal blocking HTTP/1.1 client — one connection per call,
//! `Connection: close` — for the gateway's tests, examples and ops
//! tooling. It decodes both fixed-length and chunked responses, so it can
//! read every page the server writes. Not a general-purpose client.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json, JsonError};

/// A decoded HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked transfer already reassembled).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        json::parse(&self.body)
    }
}

/// Issues one request and reads the full response. `body` implies a
/// `Content-Type: application/json` payload.
pub fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: kosr\r\nConnection: close\r\n"
    )?;
    if body.is_some() {
        write!(
            stream,
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        )?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads and decodes one response from `r`.
pub fn read_response(r: &mut impl Read) -> io::Result<HttpResponse> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Head until CRLFCRLF.
    while !buf.ends_with(b"\r\n\r\n") {
        match r.read(&mut byte)? {
            0 => return Err(bad("eof in response head")),
            _ => buf.push(byte[0]),
        }
        if buf.len() > (64 << 10) {
            return Err(bad("response head too large"));
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    let body = if find("transfer-encoding").is_some_and(|te| te.contains("chunked")) {
        read_chunked(r)?
    } else if let Some(cl) = find("content-length") {
        let len: usize = cl.parse().map_err(|_| bad("bad content-length"))?;
        if len > (64 << 20) {
            return Err(bad("response body too large"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    } else {
        // Connection: close delimited.
        let mut body = Vec::new();
        r.read_to_end(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn read_line(r: &mut impl Read) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while !line.ends_with(b"\r\n") {
        match r.read(&mut byte)? {
            0 => return Err(bad("eof in chunk header")),
            _ => line.push(byte[0]),
        }
        if line.len() > 64 {
            return Err(bad("chunk header too long"));
        }
    }
    line.truncate(line.len() - 2);
    Ok(String::from_utf8_lossy(&line).into_owned())
}

fn read_chunked(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let size_line = read_line(r)?;
        let size =
            usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
        if size > (64 << 20) {
            return Err(bad("chunk too large"));
        }
        if size == 0 {
            // Trailer-free end: consume the final CRLF.
            let _ = read_line(r)?;
            return Ok(out);
        }
        let at = out.len();
        out.resize(at + size, 0);
        r.read_exact(&mut out[at..])?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk not CRLF-terminated"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_fixed_and_chunked_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"k\":1}";
        let resp = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.json().unwrap().get("k").unwrap().as_u64(), Some(1));

        let mut raw = Vec::new();
        crate::http::write_response_chunked(&mut raw, 503, "text/plain", b"0123456789", 3, false)
            .unwrap();
        let resp = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, b"0123456789");
    }

    #[test]
    fn malformed_responses_are_io_errors() {
        assert!(read_response(&mut &b""[..]).is_err());
        assert!(read_response(&mut &b"HTTP/1.1\r\n\r\n"[..]).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(read_response(&mut &raw[..]).is_err());
    }
}
