//! The threaded HTTP edge: a bounded-connection accept loop fronting a
//! [`ShardRouter`] (+ optional [`SupervisorHandle`]), with the JSON query
//! API, the update surface, `/healthz` and the fleet-wide `/metrics`
//! page. See the crate docs for the endpoint table.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use kosr_core::Query;
use kosr_graph::{CategoryId, VertexId};
use kosr_service::{
    sample_decision, span_id_for, Alert, Event, EventKind, MetricsRegistry, ServiceError, Severity,
    Source, Span, TagValue, Trace, TraceContext, TraceId, TraceStore,
};
use kosr_shard::{
    LiveUpdateBus, ShardError, ShardRouter, ShardedResponse, SupervisorHandle, Update,
};
use kosr_subscribe::{Delta, HubConfig, PollResponse, SessionId, SubscriptionHub};

use crate::http::{
    read_request, status_of_parse_error, write_response, write_response_chunked,
    write_response_with_headers, HttpError, HttpLimits, HttpRequest,
};
use crate::json::{self, Json, JsonLimits};
use crate::stats::{Endpoint, GatewayStats};

const JSON_TYPE: &str = "application/json";
const METRICS_TYPE: &str = "text/plain; version=0.0.4";

/// Gateway tunables.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Concurrent connections admitted; the one past the cap is answered
    /// `503` and closed at the accept gate (admission control, edge-side).
    pub max_connections: usize,
    /// Largest accepted request body — a larger declared `Content-Length`
    /// is refused `413` before any body byte is read or buffered.
    pub max_body_bytes: usize,
    /// Largest accepted request head.
    pub max_head_bytes: usize,
    /// Deadline applied to `/v1/route` requests that carry no
    /// `deadline_ms` of their own; `None` admits them without one.
    pub default_deadline: Option<Duration>,
    /// Largest accepted `k` — the runners pre-size result buffers by `k`,
    /// so an unbounded value would let one request demand an absurd
    /// allocation; past the cap is a typed `400` at admission.
    pub max_k: usize,
    /// JSON nesting bound for request bodies.
    pub json_depth: usize,
    /// Fraction of `/v1/route` requests traced end to end, decided
    /// deterministically per trace id ([`sample_decision`]). Unsampled
    /// requests still get an edge-only trace that competes for the
    /// slow-query log — the always-capture-the-tail path.
    pub trace_sample_ratio: f64,
    /// Traces retained in the recent ring (`GET /v1/traces/recent`).
    pub trace_recent: usize,
    /// Worst-N traces by wall time retained in the slow-query log.
    pub trace_slow: usize,
    /// Longest a `GET /v1/subscribe/{id}/poll` long-poll may park waiting
    /// for a delta; a request's `wait_ms` is clamped to this.
    pub max_poll_wait: Duration,
    /// Undrained deltas a subscription may queue before the hub discards
    /// them and forces a typed resync (see [`kosr_subscribe::HubConfig`]).
    pub subscribe_queue: usize,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            max_connections: 64,
            max_body_bytes: 1 << 20,
            max_head_bytes: 8 << 10,
            default_deadline: None,
            max_k: 1024,
            json_depth: 32,
            trace_sample_ratio: 1.0,
            trace_recent: 64,
            trace_slow: 16,
            max_poll_wait: Duration::from_secs(10),
            subscribe_queue: 8,
        }
    }
}

/// A typed API failure: the status code plus the machine-readable error
/// kind and human-readable message the JSON error body carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status code.
    pub status: u16,
    /// A stable machine-readable error kind (`"invalid_query"`,
    /// `"queue_full"`, …).
    pub kind: &'static str,
    /// The human-readable detail.
    pub message: String,
}

impl ApiError {
    fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            message: message.into(),
        }
    }

    fn body(&self) -> Json {
        Json::Obj(vec![(
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::from(self.kind)),
                ("status".into(), Json::from(self.status as u64)),
                ("message".into(), Json::Str(self.message.clone())),
            ]),
        )])
    }
}

/// Maps the shard/service error taxonomy onto the HTTP status surface:
/// deterministic rejections (invalid query/update) are `4xx`; capacity
/// and availability conditions (queue full, deadline, budget, transport,
/// shutdown) are `503`; a lost worker is the only `502`.
pub fn api_error_of(e: &ShardError) -> ApiError {
    match e {
        ShardError::Service(ServiceError::InvalidQuery(q)) => {
            ApiError::new(400, "invalid_query", format!("invalid query: {q}"))
        }
        ShardError::Service(ServiceError::QueueFull { .. }) => {
            ApiError::new(503, "queue_full", e.to_string())
        }
        ShardError::Service(ServiceError::DeadlineExceeded { .. }) => {
            ApiError::new(503, "deadline_exceeded", e.to_string())
        }
        ShardError::Service(ServiceError::BudgetExhausted { .. }) => {
            ApiError::new(503, "budget_exhausted", e.to_string())
        }
        ShardError::Service(ServiceError::ShuttingDown) => {
            ApiError::new(503, "shutting_down", e.to_string())
        }
        ShardError::Service(ServiceError::WorkerLost) => {
            ApiError::new(502, "worker_lost", e.to_string())
        }
        ShardError::Update(u) => ApiError::new(400, "invalid_update", u.to_string()),
        ShardError::Transport(_) | ShardError::CursorTooOld { .. } => {
            ApiError::new(503, "unavailable", e.to_string())
        }
    }
}

enum Reply {
    Fixed(u16, &'static str, Vec<u8>),
    WithHeaders(u16, &'static str, Vec<(&'static str, String)>, Vec<u8>),
    Chunked(u16, &'static str, Vec<u8>),
}

impl Reply {
    fn status(&self) -> u16 {
        match self {
            Reply::Fixed(s, ..) | Reply::WithHeaders(s, ..) | Reply::Chunked(s, ..) => *s,
        }
    }

    fn error(e: ApiError) -> Reply {
        Reply::Fixed(e.status, JSON_TYPE, e.body().to_string().into_bytes())
    }

    fn json(status: u16, value: &Json) -> Reply {
        Reply::Fixed(status, JSON_TYPE, value.to_string().into_bytes())
    }

    fn with_header(self, name: &'static str, value: String) -> Reply {
        match self {
            Reply::Fixed(s, ct, body) => Reply::WithHeaders(s, ct, vec![(name, value)], body),
            Reply::WithHeaders(s, ct, mut headers, body) => {
                headers.push((name, value));
                Reply::WithHeaders(s, ct, headers, body)
            }
            // Chunked replies (the /metrics page) never carry trace
            // headers; leave them untouched.
            chunked => chunked,
        }
    }
}

/// What the edge fronts — shared by every connection handler.
struct EdgeState {
    router: Arc<ShardRouter>,
    bus: LiveUpdateBus,
    subs: Arc<SubscriptionHub>,
    supervisor: Option<Arc<SupervisorHandle>>,
    stats: Arc<GatewayStats>,
    traces: Arc<TraceStore>,
    config: GatewayConfig,
    json_limits: JsonLimits,
    slots: AtomicUsize,
}

impl EdgeState {
    fn try_acquire_slot(&self) -> bool {
        self.slots
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                (used < self.config.max_connections).then_some(used + 1)
            })
            .is_ok()
    }

    fn release_slot(&self) {
        self.slots.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Returns a connection slot on drop — including when the handler
/// unwinds from a panic, so a crashed handler can never permanently
/// shrink the admission pool.
struct SlotGuard(Arc<EdgeState>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.release_slot();
    }
}

fn field<'v>(v: &'v Json, key: &str) -> Result<&'v Json, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError::new(400, "invalid_request", format!("missing field {key:?}")))
}

fn field_u32(v: &Json, key: &str) -> Result<u32, ApiError> {
    field(v, key)?
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| {
            ApiError::new(
                400,
                "invalid_request",
                format!("field {key:?} must be an unsigned 32-bit integer"),
            )
        })
}

fn parse_body(edge: &EdgeState, body: &[u8]) -> Result<Json, ApiError> {
    json::parse_with(body, &edge.json_limits)
        .map_err(|e| ApiError::new(400, "invalid_json", e.to_string()))
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Parses the shared query shape — `{"source", "target", "categories",
/// "k"}` — used by both `/v1/route` and `/v1/subscribe`.
fn parse_query_fields(edge: &EdgeState, v: &Json) -> Result<Query, ApiError> {
    let source = VertexId(field_u32(v, "source")?);
    let target = VertexId(field_u32(v, "target")?);
    // The runners pre-size result buffers by `k`; cap it at admission
    // so one request cannot demand an absurd allocation downstream.
    let k = field(v, "k")?
        .as_u64()
        .and_then(|n| (n <= edge.config.max_k as u64).then_some(n as usize))
        .ok_or_else(|| {
            ApiError::new(
                400,
                "invalid_request",
                format!(
                    "field \"k\" must be an integer in 1..={}",
                    edge.config.max_k
                ),
            )
        })?;
    let categories = field(v, "categories")?
        .as_array()
        .ok_or_else(|| {
            ApiError::new(
                400,
                "invalid_request",
                "field \"categories\" must be an array",
            )
        })?
        .iter()
        .map(|c| {
            c.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(CategoryId)
                .ok_or_else(|| {
                    ApiError::new(
                        400,
                        "invalid_request",
                        "categories must be unsigned 32-bit integers",
                    )
                })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Query::new(source, target, categories, k))
}

/// Assembles and retains the request's trace, then attaches the
/// `X-Kosr-Trace-Id` header iff the trace is actually retrievable:
/// sampled traces always are; an unsampled request's edge-only trace only
/// when the slow-query log admitted it (the tail-capture path). The
/// reply's status class is counted exactly once, upstream in
/// [`serve_connection`], after this function has fixed the final status.
fn finish_route(
    edge: &EdgeState,
    ctx: TraceContext,
    received: Instant,
    mut spans: Vec<Span>,
    reply: Reply,
) -> Reply {
    let root = Span::new(ctx.parent_span, None, "gateway", 0, elapsed_us(received))
        .tag("status", TagValue::U64(reply.status() as u64))
        .tag("sampled", TagValue::Bool(ctx.sampled));
    spans.insert(0, root);
    let trace = Trace {
        trace_id: ctx.trace_id,
        // Measured after the root span's duration, so the root always
        // fits inside the trace wall time.
        wall_us: elapsed_us(received),
        sampled: ctx.sampled,
        spans,
    };
    let retained = if ctx.sampled || reply.status() >= 500 {
        // Server-error responses are always correlatable: even an
        // unsampled request's trace is retained on a 5xx, so the
        // advertised id resolves via `GET /v1/traces/{id}` while the
        // incident is being investigated.
        edge.traces.record(trace);
        true
    } else {
        edge.traces.record_slow_only(trace)
    };
    if retained {
        reply.with_header("X-Kosr-Trace-Id", ctx.trace_id.to_hex())
    } else {
        reply
    }
}

/// `POST /v1/route`: `{"source", "target", "categories", "k",
/// "deadline_ms"?}` → the merged top-k with per-route cost and stop
/// breakdown. Every request is traced: a fresh [`TraceId`] is minted, the
/// sampling decision made deterministically from it, and — when sampled —
/// the context propagated through the router fan-out so replica spans
/// come back with the response.
fn handle_route(edge: &EdgeState, body: &[u8], received: Instant) -> Reply {
    let trace_id = TraceId::mint();
    let sampled = sample_decision(trace_id, edge.config.trace_sample_ratio);
    let ctx = TraceContext::root(trace_id, sampled);
    let mut spans: Vec<Span> = Vec::new();
    let parsed = (|| {
        let v = parse_body(edge, body)?;
        let query = parse_query_fields(edge, &v)?;
        let deadline = match v.get("deadline_ms") {
            None | Some(Json::Null) => edge.config.default_deadline,
            Some(d) => Some(Duration::from_millis(d.as_u64().ok_or_else(|| {
                ApiError::new(400, "invalid_request", "deadline_ms must be milliseconds")
            })?)),
        };
        Ok((query, deadline))
    })();
    // The parse span covers JSON decode + field validation, which began
    // when the request arrived.
    spans.push(Span::new(
        span_id_for(trace_id, ctx.parent_span, 0),
        Some(ctx.parent_span),
        "parse",
        0,
        elapsed_us(received),
    ));
    let (query, deadline) = match parsed {
        Ok(p) => p,
        Err(e) => return finish_route(edge, ctx, received, spans, Reply::error(e)),
    };

    // Deadline propagation, edge-side: the budget covers parse + routing
    // + shard execution; replicas additionally enforce their planner's
    // own `PlannerConfig::deadline` on queue wait.
    let expired = |d: Duration| received.elapsed() > d;
    let deadline_error = |d: Duration| {
        Reply::error(api_error_of(&ShardError::Service(
            ServiceError::DeadlineExceeded { deadline: d },
        )))
    };
    if let Some(d) = deadline {
        if expired(d) {
            return finish_route(edge, ctx, received, spans, deadline_error(d));
        }
    }
    // The router span parents the whole fan-out: shard spans (and the
    // replica trees under them) come back inside the response.
    let router_span = span_id_for(trace_id, ctx.parent_span, 1);
    let router_ctx = sampled.then_some(TraceContext {
        trace_id,
        parent_span: router_span,
        sampled: true,
    });
    let router_started = Instant::now();
    let router_start_us = elapsed_us(received);
    let outcome = edge
        .router
        .submit_traced(query.clone(), router_ctx)
        .and_then(|ticket| ticket.wait());
    let router = Span::new(
        router_span,
        Some(ctx.parent_span),
        "router",
        router_start_us,
        elapsed_us(router_started),
    );
    match outcome {
        Ok(resp) => {
            spans.push(
                router
                    .tag("shards", TagValue::U64(resp.shards.len() as u64))
                    .tag("cached_shards", TagValue::U64(resp.cached_shards as u64)),
            );
            spans.extend(resp.spans.iter().cloned());
            if let Some(d) = deadline {
                if expired(d) {
                    // The 503 rewrite happens *before* any accounting:
                    // the status class is counted once, on the final
                    // reply, and the shard-answer counters skip requests
                    // the client never got an answer for.
                    return finish_route(edge, ctx, received, spans, deadline_error(d));
                }
            }
            edge.stats
                .record_shard_answers(resp.shards.len() as u64, resp.cached_shards as u64);
            let serialize_started = Instant::now();
            let serialize_start_us = elapsed_us(received);
            let reply = Reply::json(200, &route_body(&query, &resp));
            spans.push(Span::new(
                span_id_for(trace_id, ctx.parent_span, 2),
                Some(ctx.parent_span),
                "serialize",
                serialize_start_us,
                elapsed_us(serialize_started),
            ));
            finish_route(edge, ctx, received, spans, reply)
        }
        Err(e) => {
            spans.push(router);
            finish_route(edge, ctx, received, spans, Reply::error(api_error_of(&e)))
        }
    }
}

/// One witness rendered with its cost, vertex tuple, and per-stop
/// breakdown — a witness is ⟨s, c1…cj, t⟩, so the interior stops line up
/// with the query's category sequence. Shared by `/v1/route` and the
/// subscribe surface so standing queries render routes identically.
fn witness_json(query: &Query, w: &kosr_core::Witness) -> Json {
    let stops: Vec<Json> = w
        .vertices
        .iter()
        .skip(1)
        .take(query.categories.len())
        .zip(&query.categories)
        .map(|(v, c)| {
            Json::Obj(vec![
                ("vertex".into(), Json::from(v.0 as u64)),
                ("category".into(), Json::from(c.0 as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("cost".into(), Json::from(w.cost)),
        (
            "vertices".into(),
            Json::Arr(w.vertices.iter().map(|v| Json::from(v.0 as u64)).collect()),
        ),
        ("stops".into(), Json::Arr(stops)),
    ])
}

fn route_body(query: &Query, resp: &ShardedResponse) -> Json {
    let routes: Vec<Json> = resp
        .outcome
        .witnesses
        .iter()
        .map(|w| witness_json(query, w))
        .collect();
    Json::Obj(vec![
        ("k".into(), Json::from(query.k as u64)),
        ("routes".into(), Json::Arr(routes)),
        (
            "shards".into(),
            Json::Arr(resp.shards.iter().map(|&j| Json::from(j as u64)).collect()),
        ),
        (
            "cached_shards".into(),
            Json::from(resp.cached_shards as u64),
        ),
        (
            "latency_us".into(),
            Json::from(resp.latency.as_micros().min(u64::MAX as u128) as u64),
        ),
    ])
}

fn tag_json(v: &TagValue) -> Json {
    match v {
        TagValue::U64(n) => Json::from(*n),
        TagValue::Str(s) => Json::Str(s.clone()),
        TagValue::Bool(b) => Json::from(*b),
    }
}

/// One span rendered as a JSON subtree: its own fields, tags, and its
/// children nested inside. Depth-capped defensively — the trees this edge
/// assembles are ~4 levels deep, and a cap means even a malformed trace
/// cannot recurse unboundedly.
fn span_tree_json(trace: &Trace, span: &Span, depth: usize) -> Json {
    let tags: Vec<(String, Json)> = span
        .tags
        .iter()
        .map(|(k, v)| (k.clone(), tag_json(v)))
        .collect();
    let children: Vec<Json> = if depth < 16 {
        trace
            .children_of(span.id)
            .into_iter()
            .map(|c| span_tree_json(trace, c, depth + 1))
            .collect()
    } else {
        Vec::new()
    };
    Json::Obj(vec![
        ("span_id".into(), Json::Str(format!("{:016x}", span.id.0))),
        ("name".into(), Json::from(span.name.as_str())),
        ("start_us".into(), Json::from(span.start_us)),
        ("duration_us".into(), Json::from(span.duration_us)),
        ("tags".into(), Json::Obj(tags)),
        ("children".into(), Json::Arr(children)),
    ])
}

fn trace_json(t: &Trace) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(t.trace_id.to_hex())),
        ("wall_us".into(), Json::from(t.wall_us)),
        ("sampled".into(), Json::from(t.sampled)),
        ("span_count".into(), Json::from(t.spans.len() as u64)),
        (
            "root".into(),
            t.root().map_or(Json::Null, |r| span_tree_json(t, r, 0)),
        ),
    ])
}

fn trace_summary_json(t: &Trace) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(t.trace_id.to_hex())),
        ("wall_us".into(), Json::from(t.wall_us)),
        ("sampled".into(), Json::from(t.sampled)),
        ("spans".into(), Json::from(t.spans.len() as u64)),
    ])
}

/// `GET /v1/traces/recent`: summaries of the recent ring (oldest first)
/// and the slow-query log (slowest first) — ids here feed
/// `GET /v1/traces/{id}`.
fn handle_traces_recent(edge: &EdgeState) -> Reply {
    let recent: Vec<Json> = edge
        .traces
        .recent()
        .iter()
        .map(trace_summary_json)
        .collect();
    let slow: Vec<Json> = edge.traces.slow().iter().map(trace_summary_json).collect();
    Reply::json(
        200,
        &Json::Obj(vec![
            ("recent".into(), Json::Arr(recent)),
            ("slow".into(), Json::Arr(slow)),
        ]),
    )
}

/// `GET /v1/traces/{id}`: the full span tree of one retained trace.
fn handle_trace_get(edge: &EdgeState, id: &str) -> Reply {
    let Some(id) = TraceId::parse_hex(id) else {
        return Reply::error(ApiError::new(
            400,
            "invalid_trace_id",
            "trace ids are 32 lowercase hex digits",
        ));
    };
    match edge.traces.get(id) {
        Some(t) => Reply::json(200, &trace_json(&t)),
        None => Reply::error(ApiError::new(
            404,
            "trace_not_found",
            format!("no retained trace {}", id.to_hex()),
        )),
    }
}

fn event_json(e: &Event) -> Json {
    let mut obj = vec![
        ("seq".into(), Json::from(e.seq)),
        ("wall_ms".into(), Json::from(e.wall_ms)),
        ("severity".into(), Json::from(e.severity.name())),
        ("source".into(), Json::from(e.source.label())),
    ];
    match e.source {
        Source::Shard(j) => obj.push(("shard".into(), Json::from(j as u64))),
        Source::Replica { shard, replica } => {
            obj.push(("shard".into(), Json::from(shard as u64)));
            obj.push(("replica".into(), Json::from(replica as u64)));
        }
        Source::Service | Source::Supervisor | Source::Gateway => {}
    }
    obj.push(("kind".into(), Json::from(e.kind.name())));
    obj.push((
        "trace_id".into(),
        e.trace_id.map_or(Json::Null, |id| Json::Str(id.to_hex())),
    ));
    obj.push((
        "tags".into(),
        Json::Obj(
            e.tags
                .iter()
                .map(|(k, v)| (k.clone(), tag_json(v)))
                .collect(),
        ),
    ));
    Json::Obj(obj)
}

/// `GET /v1/events?severity=&source=&since_seq=`: the retained slice of
/// the fleet event journal, ascending by sequence number. `next_seq` in
/// the response is the cursor to poll from for only-new events.
fn handle_events(edge: &EdgeState, req: &HttpRequest) -> Reply {
    let query = req.target.split_once('?').map_or("", |(_, q)| q);
    let mut severity: Option<Severity> = None;
    let mut source: Option<String> = None;
    let mut since_seq: u64 = 0;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "severity" => match Severity::parse(value) {
                Some(s) => severity = Some(s),
                None => {
                    return Reply::error(ApiError::new(
                        400,
                        "invalid_request",
                        format!("severity must be info|warn|critical, got {value:?}"),
                    ))
                }
            },
            "source" => {
                if !["service", "shard", "replica", "supervisor", "gateway"].contains(&value) {
                    return Reply::error(ApiError::new(
                        400,
                        "invalid_request",
                        format!("unknown source tier {value:?}"),
                    ));
                }
                source = Some(value.to_string());
            }
            "since_seq" => match value.parse::<u64>() {
                Ok(n) => since_seq = n,
                Err(_) => {
                    return Reply::error(ApiError::new(
                        400,
                        "invalid_request",
                        "since_seq must be an unsigned integer",
                    ))
                }
            },
            other => {
                return Reply::error(ApiError::new(
                    400,
                    "invalid_request",
                    format!("unknown query parameter {other:?}"),
                ))
            }
        }
    }
    let journal = edge.router.events();
    let events: Vec<Json> = journal
        .events_since(since_seq, severity, source.as_deref())
        .iter()
        .map(event_json)
        .collect();
    Reply::json(
        200,
        &Json::Obj(vec![
            ("next_seq".into(), Json::from(journal.next_seq())),
            ("events".into(), Json::Arr(events)),
        ]),
    )
}

fn alert_json(a: &Alert) -> Json {
    Json::Obj(vec![
        ("slo".into(), Json::Str(a.slo.clone())),
        ("state".into(), Json::from(a.state.name())),
        ("seq".into(), Json::from(a.seq)),
        ("wall_ms".into(), Json::from(a.wall_ms)),
        ("burn_rate".into(), Json::Num(a.burn_rate)),
    ])
}

/// `GET /v1/alerts`: currently firing alerts plus the bounded
/// recently-resolved history, each anchored to its journal transition
/// sequence (correlate via `GET /v1/events?since_seq=`).
fn handle_alerts(edge: &EdgeState) -> Reply {
    let slo = edge.router.slo();
    let firing: Vec<Json> = slo.firing().iter().map(alert_json).collect();
    let resolved: Vec<Json> = slo.recently_resolved().iter().map(alert_json).collect();
    Reply::json(
        200,
        &Json::Obj(vec![
            ("firing".into(), Json::Arr(firing)),
            ("recently_resolved".into(), Json::Arr(resolved)),
        ]),
    )
}

/// `POST /v1/update`: `{"op": "insert_membership" | "remove_membership" |
/// "insert_edge", ...}` published through the live update bus.
fn handle_update(edge: &EdgeState, body: &[u8]) -> Reply {
    let parsed = (|| {
        let v = parse_body(edge, body)?;
        let op = field(&v, "op")?.as_str().ok_or_else(|| {
            ApiError::new(400, "invalid_request", "field \"op\" must be a string")
        })?;
        match op {
            "insert_membership" => Ok(Update::InsertMembership {
                vertex: VertexId(field_u32(&v, "vertex")?),
                category: CategoryId(field_u32(&v, "category")?),
            }),
            "remove_membership" => Ok(Update::RemoveMembership {
                vertex: VertexId(field_u32(&v, "vertex")?),
                category: CategoryId(field_u32(&v, "category")?),
            }),
            "insert_edge" => Ok(Update::InsertEdge {
                from: VertexId(field_u32(&v, "from")?),
                to: VertexId(field_u32(&v, "to")?),
                weight: field(&v, "weight")?.as_u64().ok_or_else(|| {
                    ApiError::new(400, "invalid_request", "weight must be an unsigned integer")
                })?,
            }),
            other => Err(ApiError::new(
                400,
                "invalid_request",
                format!("unknown op {other:?}"),
            )),
        }
    })();
    let update = match parsed {
        Ok(u) => u,
        Err(e) => return Reply::error(e),
    };
    match edge.bus.publish(&update) {
        Ok(receipt) => Reply::json(
            200,
            &Json::Obj(vec![
                ("applied".into(), Json::from(receipt.applied)),
                (
                    "replicas_touched".into(),
                    Json::from(receipt.replicas_touched as u64),
                ),
                ("invalidated".into(), Json::from(receipt.invalidated as u64)),
                (
                    "label_entries_added".into(),
                    Json::from(receipt.label_entries_added as u64),
                ),
                (
                    "deferred_replicas".into(),
                    Json::from(receipt.deferred_replicas as u64),
                ),
                (
                    "owner_shard".into(),
                    receipt
                        .owner_shard
                        .map(|j| Json::from(j as u64))
                        .unwrap_or(Json::Null),
                ),
                // The fleet publish epoch this update committed at — the
                // value subscription deltas are tagged with, so a client
                // can correlate its own update with the delta it caused.
                ("epoch".into(), Json::from(receipt.epoch)),
                ("log_len".into(), Json::from(edge.bus.log_len() as u64)),
            ]),
        ),
        Err(e) => Reply::error(api_error_of(&e)),
    }
}

fn delta_json(query: &Query, d: &Delta) -> Json {
    let changed: Vec<Json> = d
        .changed
        .iter()
        .map(|(rank, w)| {
            Json::Obj(vec![
                ("rank".into(), Json::from(*rank as u64)),
                ("route".into(), witness_json(query, w)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("epoch".into(), Json::from(d.epoch)),
        ("new_len".into(), Json::from(d.new_len as u64)),
        ("changed".into(), Json::Arr(changed)),
    ])
}

/// `POST /v1/subscribe`: `{"source", "target", "categories", "k"}` →
/// the minted session id plus the initial full top-k and its epoch.
/// Subsequent answer changes arrive as deltas via the poll endpoint.
fn handle_subscribe(edge: &EdgeState, body: &[u8]) -> Reply {
    let query = match parse_body(edge, body).and_then(|v| parse_query_fields(edge, &v)) {
        Ok(q) => q,
        Err(e) => return Reply::error(e),
    };
    match edge.subs.subscribe(query.clone()) {
        Ok(reply) => {
            let routes: Vec<Json> = reply
                .routes
                .iter()
                .map(|w| witness_json(&query, w))
                .collect();
            Reply::json(
                200,
                &Json::Obj(vec![
                    ("session".into(), Json::from(reply.id.0)),
                    ("epoch".into(), Json::from(reply.epoch)),
                    ("k".into(), Json::from(query.k as u64)),
                    ("routes".into(), Json::Arr(routes)),
                ]),
            )
        }
        Err(e) => Reply::error(api_error_of(&e)),
    }
}

fn parse_session_id(segment: &str) -> Result<SessionId, ApiError> {
    segment.parse::<u64>().map(SessionId).map_err(|_| {
        ApiError::new(
            400,
            "invalid_session",
            "session ids are unsigned decimal integers",
        )
    })
}

fn unknown_session(id: SessionId) -> Reply {
    Reply::error(ApiError::new(
        404,
        "unknown_session",
        format!("no subscription {id}"),
    ))
}

/// `GET /v1/subscribe/{id}/poll?wait_ms=`: drains the session's queued
/// deltas, long-polling up to `wait_ms` (clamped to the configured
/// maximum) when none are pending. After a queue overflow or a failed
/// recompute the answer is a typed full resync instead — `resync: true`
/// with the complete current top-k — telling the client to discard its
/// replayed state. Streamed chunked: delta payloads are unbounded in the
/// number of changed ranks.
fn handle_subscribe_poll(edge: &EdgeState, id: &str, req: &HttpRequest) -> Reply {
    let id = match parse_session_id(id) {
        Ok(id) => id,
        Err(e) => return Reply::error(e),
    };
    let raw_query = req.target.split_once('?').map_or("", |(_, q)| q);
    let mut wait = Duration::ZERO;
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "wait_ms" => match value.parse::<u64>() {
                Ok(ms) => wait = Duration::from_millis(ms).min(edge.config.max_poll_wait),
                Err(_) => {
                    return Reply::error(ApiError::new(
                        400,
                        "invalid_request",
                        "wait_ms must be an unsigned integer",
                    ))
                }
            },
            other => {
                return Reply::error(ApiError::new(
                    400,
                    "invalid_request",
                    format!("unknown query parameter {other:?}"),
                ))
            }
        }
    }
    match edge.subs.poll(id, wait) {
        PollResponse::Deltas { query, deltas } => {
            let deltas: Vec<Json> = deltas.iter().map(|d| delta_json(&query, d)).collect();
            Reply::Chunked(
                200,
                JSON_TYPE,
                Json::Obj(vec![
                    ("resync".into(), Json::from(false)),
                    ("deltas".into(), Json::Arr(deltas)),
                ])
                .to_string()
                .into_bytes(),
            )
        }
        PollResponse::Resync {
            query,
            routes,
            epoch,
        } => {
            let routes: Vec<Json> = routes.iter().map(|w| witness_json(&query, w)).collect();
            Reply::Chunked(
                200,
                JSON_TYPE,
                Json::Obj(vec![
                    ("resync".into(), Json::from(true)),
                    ("epoch".into(), Json::from(epoch)),
                    ("routes".into(), Json::Arr(routes)),
                ])
                .to_string()
                .into_bytes(),
            )
        }
        PollResponse::UnknownSession => unknown_session(id),
        PollResponse::Failed(e) => Reply::error(api_error_of(&e)),
    }
}

/// `DELETE /v1/subscribe/{id}`: ends the standing query.
fn handle_unsubscribe(edge: &EdgeState, id: &str) -> Reply {
    let id = match parse_session_id(id) {
        Ok(id) => id,
        Err(e) => return Reply::error(e),
    };
    if edge.subs.unsubscribe(id) {
        Reply::json(200, &Json::Obj(vec![("removed".into(), Json::from(true))]))
    } else {
        unknown_session(id)
    }
}

/// `GET /healthz`: `200` when every replica of every shard is serving,
/// `503` with the same body when degraded.
fn handle_healthz(edge: &EdgeState) -> Reply {
    let mut all_healthy = true;
    let shards: Vec<Json> = (0..edge.router.num_shards())
        .map(|j| {
            let snap = edge.router.replica_set(j).health_snapshot();
            all_healthy &= snap.all_healthy();
            Json::Obj(vec![
                ("shard".into(), Json::from(j as u64)),
                (
                    "replicas".into(),
                    Json::Arr(
                        snap.health
                            .iter()
                            .map(|h| {
                                Json::from(match h {
                                    kosr_transport::ReplicaHealth::Healthy => "healthy",
                                    kosr_transport::ReplicaHealth::Down => "down",
                                })
                            })
                            .collect(),
                    ),
                ),
                ("healthy".into(), Json::from(snap.healthy as u64)),
                ("failovers".into(), Json::from(snap.failovers)),
            ])
        })
        .collect();
    let mut body = vec![
        ("healthy".into(), Json::from(all_healthy)),
        ("shards".into(), Json::Arr(shards)),
    ];
    if let Some(sup) = &edge.supervisor {
        let r = sup.report();
        body.push((
            "supervisor".into(),
            Json::Obj(vec![
                ("ticks".into(), Json::from(r.ticks)),
                ("replays".into(), Json::from(r.replays)),
                (
                    "snapshot_refreshes".into(),
                    Json::from(r.snapshot_refreshes),
                ),
                ("compactions".into(), Json::from(r.compactions)),
                ("recovery_failures".into(), Json::from(r.recovery_failures)),
            ]),
        ));
    }
    Reply::json(if all_healthy { 200 } else { 503 }, &Json::Obj(body))
}

/// `GET /metrics`: the Prometheus exposition aggregating the gateway's
/// own counters, per-shard health and service stats, and the supervisor
/// report — streamed chunked.
fn handle_metrics(edge: &EdgeState) -> Reply {
    let mut registry = MetricsRegistry::new();
    registry.collect(edge.stats.as_ref());
    registry.collect(edge.traces.as_ref());
    registry.collect(edge.router.as_ref());
    registry.collect(edge.router.events().as_ref());
    registry.collect(edge.router.slo().as_ref());
    registry.collect(edge.subs.as_ref());
    if let Some(sup) = &edge.supervisor {
        registry.collect(sup.as_ref());
    }
    Reply::Chunked(200, METRICS_TYPE, registry.render().into_bytes())
}

fn dispatch(edge: &EdgeState, req: &HttpRequest, received: Instant) -> (Endpoint, Reply) {
    match (req.method.as_str(), req.path()) {
        ("POST", "/v1/route") => (Endpoint::Route, handle_route(edge, &req.body, received)),
        ("POST", "/v1/update") => (Endpoint::Update, handle_update(edge, &req.body)),
        ("GET", "/healthz") => (Endpoint::Healthz, handle_healthz(edge)),
        ("GET", "/metrics") => (Endpoint::Metrics, handle_metrics(edge)),
        ("GET", "/v1/traces/recent") => (Endpoint::Traces, handle_traces_recent(edge)),
        ("GET", path) if path.starts_with("/v1/traces/") => (
            Endpoint::Traces,
            handle_trace_get(edge, path.trim_start_matches("/v1/traces/")),
        ),
        ("GET", "/v1/events") => (Endpoint::Events, handle_events(edge, req)),
        ("GET", "/v1/alerts") => (Endpoint::Alerts, handle_alerts(edge)),
        ("POST", "/v1/subscribe") => (Endpoint::Subscribe, handle_subscribe(edge, &req.body)),
        ("GET", path)
            if path
                .strip_prefix("/v1/subscribe/")
                .and_then(|rest| rest.strip_suffix("/poll"))
                .is_some() =>
        {
            let id = path
                .strip_prefix("/v1/subscribe/")
                .and_then(|rest| rest.strip_suffix("/poll"))
                .expect("guard matched");
            (Endpoint::Subscribe, handle_subscribe_poll(edge, id, req))
        }
        ("DELETE", path) if path.starts_with("/v1/subscribe/") => (
            Endpoint::Subscribe,
            handle_unsubscribe(edge, path.trim_start_matches("/v1/subscribe/")),
        ),
        (_, path)
            if matches!(
                path,
                "/v1/route"
                    | "/v1/update"
                    | "/healthz"
                    | "/metrics"
                    | "/v1/events"
                    | "/v1/alerts"
                    | "/v1/subscribe"
            ) || path.starts_with("/v1/traces/")
                || path.starts_with("/v1/subscribe/") =>
        {
            (
                Endpoint::Other,
                Reply::error(ApiError::new(
                    405,
                    "method_not_allowed",
                    format!("{} not allowed here", req.method),
                )),
            )
        }
        (_, path) => (
            Endpoint::Other,
            Reply::error(ApiError::new(
                404,
                "not_found",
                format!("no such endpoint {path:?}"),
            )),
        ),
    }
}

fn serve_connection(stream: TcpStream, edge: Arc<EdgeState>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // Short read timeout: idle keep-alive connections wake periodically
    // to observe shutdown instead of pinning their handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let limits = HttpLimits {
        max_head_bytes: edge.config.max_head_bytes,
        max_body_bytes: edge.config.max_body_bytes,
        ..HttpLimits::default()
    };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    while !shutdown.load(Ordering::Acquire) {
        let req = match read_request(&mut reader, &limits) {
            Ok(req) => req,
            Err(HttpError::Idle) => continue,
            Err(HttpError::ConnectionClosed) => break,
            Err(e) => {
                // Only protocol offenses count as malformed; clients that
                // hang up or stall mid-request (`None` statuses) are
                // ordinary churn, not abuse.
                if let Some(status) = status_of_parse_error(&e) {
                    edge.stats.malformed();
                    let reply = ApiError::new(status, "malformed_request", e.to_string());
                    let body = reply.body().to_string();
                    let _ = write_response(&mut writer, status, JSON_TYPE, body.as_bytes(), false);
                    edge.stats.record(Endpoint::Other, status, Duration::ZERO);
                }
                break;
            }
        };
        let received = Instant::now();
        let keep_alive = req.keep_alive;
        let (endpoint, reply) = dispatch(&edge, &req, received);
        let status = reply.status();
        let written = match reply {
            Reply::Fixed(status, content_type, body) => {
                write_response(&mut writer, status, content_type, &body, keep_alive)
            }
            Reply::WithHeaders(status, content_type, headers, body) => write_response_with_headers(
                &mut writer,
                status,
                content_type,
                &headers,
                &body,
                keep_alive,
            ),
            // Chunked framing only exists in HTTP/1.1; a 1.0 client gets
            // the same body with a Content-Length instead.
            Reply::Chunked(status, content_type, body) if req.http11 => {
                write_response_chunked(&mut writer, status, content_type, &body, 1024, keep_alive)
            }
            Reply::Chunked(status, content_type, body) => {
                write_response(&mut writer, status, content_type, &body, keep_alive)
            }
        };
        edge.stats.record(endpoint, status, received.elapsed());
        if written.is_err() || !keep_alive {
            break;
        }
    }
}

/// The running HTTP edge. Dropping it shuts the listener down and joins
/// every connection handler.
pub struct Gateway {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
    stats: Arc<GatewayStats>,
    traces: Arc<TraceStore>,
    subs: Arc<SubscriptionHub>,
}

impl Gateway {
    /// Binds `127.0.0.1:0` and serves `router` (and `supervisor`'s
    /// counters, when given) until dropped. The update bus the `/v1/update`
    /// surface publishes through is created from the router.
    pub fn spawn(
        router: Arc<ShardRouter>,
        supervisor: Option<Arc<SupervisorHandle>>,
        config: GatewayConfig,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(GatewayStats::default());
        let traces = Arc::new(TraceStore::new(config.trace_recent, config.trace_slow));
        // The subscription hub rides the router's observer registry: every
        // bus publish — from this edge or any other handle — sweeps the
        // standing queries through the invalidation filter.
        let subs = Arc::new(SubscriptionHub::new(
            &router,
            HubConfig {
                queue_capacity: config.subscribe_queue,
            },
        ));
        router.register_update_observer(Arc::clone(&subs) as _);
        let edge = Arc::new(EdgeState {
            bus: router.update_bus(),
            subs: Arc::clone(&subs),
            json_limits: JsonLimits {
                max_bytes: config.max_body_bytes,
                max_depth: config.json_depth,
            },
            router,
            supervisor,
            stats: Arc::clone(&stats),
            traces: Arc::clone(&traces),
            config,
            slots: AtomicUsize::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = thread::Builder::new()
            .name(format!("kosr-gateway-{}", addr.port()))
            .spawn(move || {
                let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            handlers.retain(|h| !h.is_finished());
                            if !edge.try_acquire_slot() {
                                // Admission control at the front door: the
                                // connection past the cap gets a typed 503
                                // and the socket back, not a hang. The
                                // write happens off the accept thread so a
                                // flood of never-reading clients can't
                                // stall accepts for admitted traffic.
                                edge.stats.connection_rejected();
                                let max = edge.config.max_connections;
                                // The rejection is journaled with a minted
                                // trace id, and a stub trace retained, so
                                // the 503's X-Kosr-Trace-Id resolves via
                                // /v1/traces/{id} like any other error.
                                let trace_id = TraceId::mint();
                                let ctx = TraceContext::root(trace_id, false);
                                let seq = edge.router.events().emit(
                                    Source::Gateway,
                                    EventKind::AdmissionRejected,
                                    Some(trace_id),
                                    vec![
                                        (
                                            "reason".to_string(),
                                            TagValue::Str("connection_limit".to_string()),
                                        ),
                                        ("max_connections".to_string(), TagValue::U64(max as u64)),
                                    ],
                                );
                                edge.traces.record(Trace {
                                    trace_id,
                                    wall_us: 0,
                                    sampled: false,
                                    spans: vec![Span::new(ctx.parent_span, None, "gateway", 0, 0)
                                        .tag("status", TagValue::U64(503))
                                        .tag("rejected", TagValue::Bool(true))
                                        .tag("event_seq", TagValue::U64(seq))],
                                });
                                handlers.push(thread::spawn(move || {
                                    let mut stream = stream;
                                    let _ =
                                        stream.set_write_timeout(Some(Duration::from_millis(200)));
                                    let body = ApiError::new(
                                        503,
                                        "connection_limit",
                                        format!("connection pool of {max} is full"),
                                    )
                                    .body()
                                    .to_string();
                                    let headers = [("X-Kosr-Trace-Id", trace_id.to_hex())];
                                    let _ = write_response_with_headers(
                                        &mut stream,
                                        503,
                                        JSON_TYPE,
                                        &headers,
                                        body.as_bytes(),
                                        false,
                                    );
                                }));
                                continue;
                            }
                            edge.stats.connection_accepted();
                            let edge = Arc::clone(&edge);
                            let flag = Arc::clone(&flag);
                            handlers.push(thread::spawn(move || {
                                // Held for the whole connection: released
                                // on return *and* on panic.
                                let _slot = SlotGuard(Arc::clone(&edge));
                                serve_connection(stream, edge, flag);
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn gateway accept loop");
        Ok(Gateway {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            stats,
            traces,
            subs,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The edge's live counters (shared with the running handlers).
    pub fn stats(&self) -> &Arc<GatewayStats> {
        &self.stats
    }

    /// The edge's trace retention: the recent ring, the slow-query log,
    /// and the sampling counters — what `/v1/traces/*` serves from.
    pub fn traces(&self) -> &Arc<TraceStore> {
        &self.traces
    }

    /// The standing-query hub behind `/v1/subscribe` — its counters
    /// (wakes, proven skips, deltas pushed) also ride `/metrics`.
    pub fn subscriptions(&self) -> &Arc<SubscriptionHub> {
        &self.subs
    }

    /// Stops accepting, wakes idle keep-alive handlers, joins everything.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::{validate_prometheus_text, ServiceConfig};
    use kosr_shard::ShardSet;
    use std::io::Write;

    fn fleet(
        shards: usize,
        replicas: usize,
    ) -> (
        Arc<ShardRouter>,
        Vec<kosr_transport::KillSwitch>,
        kosr_core::figure1::Figure1,
    ) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: shards,
            ..Default::default()
        })
        .partition(&ig.graph);
        let set = ShardSet::build(&ig, partition);
        let mut switches = Vec::new();
        let router = ShardRouter::with_replicas(
            set,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            replicas,
            |_, _, t| {
                switches.push(t.kill_switch());
                Arc::new(t)
            },
        );
        (Arc::new(router), switches, fx)
    }

    fn spawn_gateway(router: &Arc<ShardRouter>) -> Gateway {
        Gateway::spawn(Arc::clone(router), None, GatewayConfig::default()).unwrap()
    }

    fn route_body(fx: &kosr_core::figure1::Figure1, k: usize) -> String {
        format!(
            r#"{{"source": {}, "target": {}, "categories": [{}, {}, {}], "k": {k}}}"#,
            fx.s.0, fx.t.0, fx.ma.0, fx.re.0, fx.ci.0
        )
    }

    #[test]
    fn routes_figure1_over_http_bit_identically() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 3))).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let routes = v.get("routes").unwrap().as_array().unwrap();
        let costs: Vec<u64> = routes
            .iter()
            .map(|r| r.get("cost").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(costs, vec![20, 21, 22], "Example 1 over HTTP");

        // Bit-identical to the direct router answer: same vertex tuples.
        let direct = router
            .submit(Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3))
            .unwrap()
            .wait()
            .unwrap();
        for (route, w) in routes.iter().zip(&direct.outcome.witnesses) {
            let vertices: Vec<u64> = route
                .get("vertices")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|x| x.as_u64().unwrap())
                .collect();
            let want: Vec<u64> = w.vertices.iter().map(|v| v.0 as u64).collect();
            assert_eq!(vertices, want);
            // The stop breakdown pairs interior vertices with the query's
            // category sequence.
            let stops = route.get("stops").unwrap().as_array().unwrap();
            assert_eq!(stops.len(), 3);
            assert_eq!(
                stops[0].get("category").unwrap().as_u64().unwrap(),
                fx.ma.0 as u64
            );
            assert_eq!(
                stops[0].get("vertex").unwrap().as_u64().unwrap(),
                w.vertices[1].0 as u64
            );
        }
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert!(v.get("latency_us").unwrap().as_u64().is_some());
    }

    #[test]
    fn traced_route_returns_header_and_full_span_tree() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 3))).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let id = resp
            .header("x-kosr-trace-id")
            .expect("sampled route responses carry X-Kosr-Trace-Id")
            .to_string();

        // The retained trace is structurally valid…
        let trace = gw
            .traces()
            .get(kosr_service::TraceId::parse_hex(&id).unwrap())
            .expect("trace retrievable by its advertised id");
        trace.validate().expect("assembled trace validates");
        assert!(trace.sampled);

        // …and the HTTP surface serves its span tree: gateway → router →
        // shard → replica → execute, with the paper's counters as tags.
        let fetched = client::call(gw.addr(), "GET", &format!("/v1/traces/{id}"), None).unwrap();
        assert_eq!(fetched.status, 200, "{}", fetched.text());
        let v = fetched.json().unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some(id.as_str()));
        let root = v.get("root").unwrap();
        assert_eq!(root.get("name").unwrap().as_str(), Some("gateway"));
        let children = root.get("children").unwrap().as_array().unwrap();
        let names: Vec<&str> = children
            .iter()
            .map(|c| c.get("name").unwrap().as_str().unwrap())
            .collect();
        for stage in ["parse", "router", "serialize"] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        let router_node = children
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("router"))
            .unwrap();
        let shard_nodes: Vec<_> = router_node
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|c| c.get("name").unwrap().as_str() == Some("shard"))
            .collect();
        assert_eq!(shard_nodes.len(), 2, "one shard span per fanned shard");
        let replica = shard_nodes[0].get("children").unwrap().as_array().unwrap()[0].clone();
        assert_eq!(replica.get("name").unwrap().as_str(), Some("replica"));
        let execute = replica
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("execute"))
            .cloned()
            .expect("replica execute span");
        let tags = execute.get("tags").unwrap();
        assert!(tags.get("method").unwrap().as_str().is_some());
        assert!(tags.get("pne_expansions").unwrap().as_u64().is_some());
        let cache = replica
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("cache"))
            .cloned()
            .expect("replica cache span");
        assert!(cache
            .get("tags")
            .unwrap()
            .get("hit")
            .unwrap()
            .as_bool()
            .is_some());
    }

    #[test]
    fn traces_recent_lists_and_bad_ids_are_typed() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        for _ in 0..2 {
            client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 1))).unwrap();
        }
        let resp = client::call(addr, "GET", "/v1/traces/recent", None).unwrap();
        assert_eq!(resp.status, 200);
        let v = resp.json().unwrap();
        assert_eq!(v.get("recent").unwrap().as_array().unwrap().len(), 2);
        assert!(!v.get("slow").unwrap().as_array().unwrap().is_empty());

        // Malformed id → 400, unknown id → 404, wrong method → 405.
        let resp = client::call(addr, "GET", "/v1/traces/nope", None).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid_trace_id"));
        let resp =
            client::call(addr, "GET", &format!("/v1/traces/{}", "0".repeat(32)), None).unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.text().contains("trace_not_found"));
        let resp = client::call(addr, "POST", "/v1/traces/recent", Some("{}")).unwrap();
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn unsampled_requests_still_capture_the_slow_tail() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                trace_sample_ratio: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        // With sampling off, the edge-only trace still competes for the
        // slow log — and an empty log admits the first comer.
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 1))).unwrap();
        assert_eq!(resp.status, 200);
        let id = resp
            .header("x-kosr-trace-id")
            .expect("slow-tail capture still advertises the trace id")
            .to_string();
        let fetched = client::call(gw.addr(), "GET", &format!("/v1/traces/{id}"), None).unwrap();
        assert_eq!(fetched.status, 200);
        let v = fetched.json().unwrap();
        assert_eq!(v.get("sampled").unwrap().as_bool(), Some(false));
        // Edge-only: gateway-tier spans, no propagated shard/replica tree.
        let root = v.get("root").unwrap();
        let names: Vec<String> = root
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"router".to_string()));
        let router_node = root
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("router"))
            .cloned()
            .unwrap();
        assert!(
            router_node
                .get("children")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "unsampled contexts never reach the shards"
        );
        assert_eq!(gw.traces().sampled_total(), 0);
        assert!(gw.traces().slow_only_total() >= 1);
    }

    #[test]
    fn status_class_is_counted_once_after_deadline_rewrites() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                default_deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap();
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 1))).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.text().contains("deadline_exceeded"));
        // The handler records stats after writing the response; wait for
        // the count to land before asserting on it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while gw.stats().requests() < 1 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        // Exactly one response counted, in the *final* (rewritten) class:
        // a request the deadline turned into a 503 must not also leave a
        // 2xx behind.
        assert_eq!(gw.stats().responses_by_class(), (0, 0, 1));
    }

    #[test]
    fn typed_4xx_for_invalid_queries_and_bodies() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        let kind_of = |resp: &client::HttpResponse| {
            resp.json()
                .unwrap()
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        };

        // Malformed JSON.
        let resp = client::call(addr, "POST", "/v1/route", Some("{nope")).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_json");

        // Missing field.
        let resp = client::call(addr, "POST", "/v1/route", Some(r#"{"source": 1}"#)).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_request");

        // Unknown category: the shard layer's typed rejection surfaces as
        // invalid_query.
        let body = format!(
            r#"{{"source": {}, "target": {}, "categories": [40], "k": 1}}"#,
            fx.s.0, fx.t.0
        );
        let resp = client::call(addr, "POST", "/v1/route", Some(&body)).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_query");
        assert!(resp.text().contains("category"), "{}", resp.text());

        // k = 0.
        let body = format!(
            r#"{{"source": {}, "target": {}, "categories": [{}], "k": 0}}"#,
            fx.s.0, fx.t.0, fx.ma.0
        );
        let resp = client::call(addr, "POST", "/v1/route", Some(&body)).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_query");

        // k past the admission cap is refused before any runner pre-sizes
        // a result buffer by it.
        let body = format!(
            r#"{{"source": {}, "target": {}, "categories": [{}], "k": 4294967295}}"#,
            fx.s.0, fx.t.0, fx.ma.0
        );
        let resp = client::call(addr, "POST", "/v1/route", Some(&body)).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_request");
        assert!(resp.text().contains("1..=1024"), "{}", resp.text());

        // Invalid update op.
        let resp = client::call(addr, "POST", "/v1/update", Some(r#"{"op": "destroy"}"#)).unwrap();
        assert_eq!(resp.status, 400);
        // Out-of-range update vertex: the bus's typed rejection.
        let resp = client::call(
            addr,
            "POST",
            "/v1/update",
            Some(r#"{"op": "insert_membership", "vertex": 999, "category": 0}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(kind_of(&resp), "invalid_update");

        // Unknown path / wrong method.
        assert_eq!(
            client::call(addr, "GET", "/nope", None).unwrap().status,
            404
        );
        assert_eq!(
            client::call(addr, "GET", "/v1/route", None).unwrap().status,
            405
        );
        let (ok, client_err, _) = gw.stats().responses_by_class();
        assert!(client_err >= 7, "4xx counted: {client_err}");
        assert_eq!(ok, 0);
    }

    #[test]
    fn zero_deadline_is_a_503_and_larger_ones_pass() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let body = format!(
            r#"{{"source": {}, "target": {}, "categories": [{}], "k": 1, "deadline_ms": 0}}"#,
            fx.s.0, fx.t.0, fx.ma.0
        );
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&body)).unwrap();
        assert_eq!(resp.status, 503, "{}", resp.text());
        assert!(resp.text().contains("deadline_exceeded"));

        let body = body.replace("\"deadline_ms\": 0", "\"deadline_ms\": 30000");
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&body)).unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn oversized_bodies_are_413_before_allocation() {
        let (router, _switches, _fx) = fleet(2, 1);
        let mut gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                max_body_bytes: 256,
                ..Default::default()
            },
        )
        .unwrap();

        // A raw request declaring an absurd Content-Length: if the server
        // tried to allocate it, this test would OOM instead of passing.
        let mut stream = TcpStream::connect(gw.addr()).unwrap();
        write!(
            stream,
            "POST /v1/route HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            u64::MAX
        )
        .unwrap();
        let resp = client::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, 413);
        assert!(resp.text().contains("malformed_request"));
        gw.shutdown();
    }

    #[test]
    fn updates_publish_through_the_bus_and_change_answers() {
        let (router, _switches, fx) = fleet(3, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        let before = client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 1)))
            .unwrap()
            .json()
            .unwrap();
        let best = before.get("routes").unwrap().as_array().unwrap()[0].clone();
        assert_eq!(best.get("cost").unwrap().as_u64(), Some(20));
        // Close the best route's restaurant (stop index 1 = RE).
        let gone = best.get("stops").unwrap().as_array().unwrap()[1]
            .get("vertex")
            .unwrap()
            .as_u64()
            .unwrap();

        let update = format!(
            r#"{{"op": "remove_membership", "vertex": {gone}, "category": {}}}"#,
            fx.re.0
        );
        let resp = client::call(addr, "POST", "/v1/update", Some(&update)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let receipt = resp.json().unwrap();
        assert_eq!(receipt.get("applied").unwrap().as_bool(), Some(true));
        assert!(receipt.get("replicas_touched").unwrap().as_u64().unwrap() > 0);
        // The fleet publish epoch rides the receipt: log tail after commit.
        assert_eq!(receipt.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(receipt.get("log_len").unwrap().as_u64(), Some(1));

        let after = client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 1)))
            .unwrap()
            .json()
            .unwrap();
        let cost = after.get("routes").unwrap().as_array().unwrap()[0]
            .get("cost")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(cost > 20, "closing the best RE must raise the best cost");
    }

    #[test]
    fn healthz_flips_on_replica_kill() {
        let (router, switches, fx) = fleet(2, 2);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        let resp = client::call(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.json().unwrap().get("healthy").unwrap().as_bool(),
            Some(true)
        );

        // Kill shard 0 replica 0; a routed query observes the fault and
        // fails over, flipping the health page.
        switches[0].kill();
        let routed = client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 3))).unwrap();
        assert_eq!(routed.status, 200, "failover hides the kill");
        let resp = client::call(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 503, "degraded fleet");
        let v = resp.json().unwrap();
        assert_eq!(v.get("healthy").unwrap().as_bool(), Some(false));
        let shard0 = &v.get("shards").unwrap().as_array().unwrap()[0];
        assert_eq!(
            shard0.get("replicas").unwrap().as_array().unwrap()[0].as_str(),
            Some("down")
        );
    }

    #[test]
    fn metrics_page_is_valid_prometheus_with_fleet_counters() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        for _ in 0..3 {
            client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 3))).unwrap();
        }
        let resp = client::call(addr, "GET", "/metrics", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")));
        let text = resp.text();
        validate_prometheus_text(&text).expect(&text);
        for needle in [
            "kosr_gateway_qps",
            "kosr_gateway_latency_seconds{quantile=\"0.5\"}",
            "kosr_gateway_latency_seconds{quantile=\"0.99\"}",
            "kosr_gateway_shard_cache_hit_rate",
            "kosr_shard_replicas_healthy{shard=\"0\"}",
            "kosr_shard_failovers_total",
            "kosr_service_qps{shard=\"0\",replica=\"0\"}",
            "kosr_service_cache_hit_rate{shard=",
            "kosr_gateway_requests_total{endpoint=\"route\"} 3",
            "kosr_trace_sampled_total 3",
            "kosr_trace_slow_retained",
            "# TYPE kosr_gateway_latency_histogram_seconds histogram",
            "kosr_gateway_latency_histogram_seconds_bucket",
            "kosr_service_latency_histogram_seconds_bucket{shard=\"0\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Repeat queries hit the replica caches; the edge sees it.
        assert!(gw.stats().shard_cache_hit_rate() > 0.0);
    }

    #[test]
    fn metrics_over_http10_uses_content_length_not_chunked() {
        let (router, _switches, _fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let mut stream = TcpStream::connect(gw.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let resp = client::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, 200);
        // HTTP/1.0 has no chunked framing: the same body arrives with a
        // Content-Length instead.
        assert!(resp.header("transfer-encoding").is_none());
        assert!(resp.header("content-length").is_some());
        validate_prometheus_text(&resp.text()).unwrap();
    }

    #[test]
    fn connection_pool_admission_rejects_the_overflow_with_503() {
        let (router, _switches, fx) = fleet(2, 1);
        let mut gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                max_connections: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // The first connection provably holds the only slot: it completes
        // a keep-alive request/response round trip before anyone else
        // connects.
        let mut holder = TcpStream::connect(gw.addr()).unwrap();
        holder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let body = route_body(&fx, 1);
        write!(
            holder,
            "POST /v1/route HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        assert_eq!(client::read_response(&mut holder).unwrap().status, 200);

        // The overflow connection is refused at the gate, deterministically.
        let mut stream = TcpStream::connect(gw.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let overflow = client::read_response(&mut stream).unwrap();
        assert_eq!(overflow.status, 503);
        assert!(overflow.text().contains("connection_limit"));
        assert!(gw.stats().connections_rejected() >= 1);

        // Freeing the slot readmits new connections.
        drop(holder);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 1))) {
                Ok(resp) if resp.status == 200 => break,
                _ if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
                other => panic!("slot never freed: {other:?}"),
            }
        }
        gw.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let mut stream = TcpStream::connect(gw.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for k in 1..=3 {
            let body = route_body(&fx, k);
            write!(
                stream,
                "POST /v1/route HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .unwrap();
            let resp = read_keep_alive_response(&mut stream);
            assert_eq!(resp.status, 200);
            let v = resp.json().unwrap();
            assert_eq!(
                v.get("routes").unwrap().as_array().unwrap().len(),
                k,
                "k={k} on one connection"
            );
        }
    }

    /// Reads one fixed-length response without consuming past it (the
    /// shared client assumes Connection: close).
    fn read_keep_alive_response(stream: &mut TcpStream) -> client::HttpResponse {
        client::read_response(stream).unwrap()
    }

    #[test]
    fn events_endpoint_serves_the_journal_with_filters() {
        let (router, switches, fx) = fleet(2, 2);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();

        // A published update journals UpdatePublished at the fleet tier.
        let update = format!(
            r#"{{"op": "insert_edge", "from": {}, "to": {}, "weight": 9}}"#,
            fx.s.0, fx.t.0
        );
        assert_eq!(
            client::call(addr, "POST", "/v1/update", Some(&update))
                .unwrap()
                .status,
            200
        );
        // A killed replica observed by a live query journals a Critical
        // failover.
        switches[0].kill();
        let routed = client::call(addr, "POST", "/v1/route", Some(&route_body(&fx, 3))).unwrap();
        assert_eq!(routed.status, 200, "failover hides the kill");

        let resp = client::call(addr, "GET", "/v1/events", None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let next_seq = v.get("next_seq").unwrap().as_u64().unwrap();
        assert!(next_seq >= 2, "at least publish + failover journaled");
        let events = v.get("events").unwrap().as_array().unwrap();
        let kinds: Vec<String> = events
            .iter()
            .map(|e| e.get("kind").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(kinds.contains(&"update_published".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"failover".to_string()), "{kinds:?}");
        // Ascending, gap-free-observable seqs.
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| e.get("seq").unwrap().as_u64().unwrap())
            .collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");

        // severity filter narrows to the Critical ring.
        let resp = client::call(addr, "GET", "/v1/events?severity=critical", None).unwrap();
        assert_eq!(resp.status, 200);
        let v = resp.json().unwrap();
        for e in v.get("events").unwrap().as_array().unwrap() {
            assert_eq!(e.get("severity").unwrap().as_str(), Some("critical"));
        }
        // since_seq returns only the tail; polling from next_seq is empty.
        let resp = client::call(
            addr,
            "GET",
            &format!("/v1/events?since_seq={next_seq}"),
            None,
        )
        .unwrap();
        let v = resp.json().unwrap();
        assert!(v.get("events").unwrap().as_array().unwrap().is_empty());

        // Typed 400s for malformed filters; 405 for wrong method.
        for bad in [
            "/v1/events?severity=loud",
            "/v1/events?since_seq=soon",
            "/v1/events?source=mars",
            "/v1/events?color=red",
        ] {
            let resp = client::call(addr, "GET", bad, None).unwrap();
            assert_eq!(resp.status, 400, "{bad}");
            assert!(resp.text().contains("invalid_request"), "{bad}");
        }
        assert_eq!(
            client::call(addr, "POST", "/v1/events", Some("{}"))
                .unwrap()
                .status,
            405
        );
        assert!(gw.stats().requests_on(Endpoint::Events) >= 3);
    }

    #[test]
    fn alerts_endpoint_and_event_metrics_are_exposed() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        let resp = client::call(addr, "GET", "/v1/alerts", None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        assert!(v.get("firing").unwrap().as_array().unwrap().is_empty());
        assert!(v
            .get("recently_resolved")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // Journal some activity, then check the /metrics families.
        let update = format!(
            r#"{{"op": "insert_edge", "from": {}, "to": {}, "weight": 9}}"#,
            fx.s.0, fx.t.0
        );
        client::call(addr, "POST", "/v1/update", Some(&update)).unwrap();
        let text = client::call(addr, "GET", "/metrics", None).unwrap().text();
        validate_prometheus_text(&text).expect(&text);
        for needle in [
            "kosr_events_emitted_total",
            "kosr_events_total{severity=\"info\",kind=\"update_published\"}",
            "kosr_alert_active{slo=\"availability\"} 0",
            "kosr_alert_active{slo=\"latency_p99\"} 0",
            "kosr_alert_transitions_total{slo=\"availability\",state=\"firing\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(gw.stats().requests_on(Endpoint::Alerts) >= 1);
    }

    #[test]
    fn server_errors_always_carry_a_resolvable_trace_id() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                // Sampling off *and* an instantly expired deadline: the
                // 503 must still advertise a retrievable trace.
                trace_sample_ratio: 0.0,
                default_deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap();
        let resp = client::call(gw.addr(), "POST", "/v1/route", Some(&route_body(&fx, 1))).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.text().contains("deadline_exceeded"));
        let id = resp
            .header("x-kosr-trace-id")
            .expect("5xx responses are always trace-correlatable")
            .to_string();
        let fetched = client::call(gw.addr(), "GET", &format!("/v1/traces/{id}"), None).unwrap();
        assert_eq!(fetched.status, 200, "{}", fetched.text());
    }

    #[test]
    fn rejected_connections_journal_an_admission_event_with_trace() {
        let (router, _switches, fx) = fleet(2, 1);
        let mut gw = Gateway::spawn(
            Arc::clone(&router),
            None,
            GatewayConfig {
                max_connections: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mut holder = TcpStream::connect(gw.addr()).unwrap();
        holder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let body = route_body(&fx, 1);
        write!(
            holder,
            "POST /v1/route HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        assert_eq!(client::read_response(&mut holder).unwrap().status, 200);

        let mut stream = TcpStream::connect(gw.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let overflow = client::read_response(&mut stream).unwrap();
        assert_eq!(overflow.status, 503);
        let id = overflow
            .header("x-kosr-trace-id")
            .expect("rejections advertise a trace id")
            .to_string();

        // The event landed in the fleet journal, Warn-tier, gateway-side,
        // carrying the same trace id the client saw…
        let events = router.events().events_since(0, None, Some("gateway"));
        let ev = events
            .iter()
            .find(|e| e.kind == kosr_service::EventKind::AdmissionRejected)
            .expect("admission rejection journaled");
        assert_eq!(
            ev.trace_id.map(|t| t.to_hex()),
            Some(id.clone()),
            "event ↔ response trace correlation"
        );
        // …and the stub trace resolves while the holder still owns the
        // only slot (the trace/events endpoints need a free slot, so
        // check the store directly).
        assert!(gw
            .traces()
            .get(kosr_service::TraceId::parse_hex(&id).unwrap())
            .is_some());
        drop(holder);
        gw.shutdown();
    }

    #[test]
    fn subscribe_poll_unsubscribe_round_trip_over_http() {
        let (router, _switches, fx) = fleet(3, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();

        // Subscribe: the initial payload is the full top-k with the same
        // shape /v1/route renders.
        let resp = client::call(addr, "POST", "/v1/subscribe", Some(&route_body(&fx, 3))).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let session = v.get("session").unwrap().as_u64().unwrap();
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(0));
        let routes = v.get("routes").unwrap().as_array().unwrap();
        let costs: Vec<u64> = routes
            .iter()
            .map(|r| r.get("cost").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(costs, vec![20, 21, 22], "initial payload is Example 1");
        assert!(routes[0].get("stops").unwrap().as_array().is_some());

        // An empty immediate poll: nothing queued yet.
        let poll_path = format!("/v1/subscribe/{session}/poll");
        let resp = client::call(addr, "GET", &poll_path, None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v.get("resync").unwrap().as_bool(), Some(false));
        assert!(v.get("deltas").unwrap().as_array().unwrap().is_empty());

        // Close the best route's restaurant through /v1/update: the
        // observer sweep queues exactly one delta for this session.
        let gone = routes[0].get("stops").unwrap().as_array().unwrap()[1]
            .get("vertex")
            .unwrap()
            .as_u64()
            .unwrap();
        let update = format!(
            r#"{{"op": "remove_membership", "vertex": {gone}, "category": {}}}"#,
            fx.re.0
        );
        let resp = client::call(addr, "POST", "/v1/update", Some(&update)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let epoch = resp.json().unwrap().get("epoch").unwrap().as_u64().unwrap();
        assert_eq!(epoch, 1);

        let resp = client::call(addr, "GET", &format!("{poll_path}?wait_ms=2000"), None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v.get("resync").unwrap().as_bool(), Some(false));
        let deltas = v.get("deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].get("epoch").unwrap().as_u64(), Some(epoch));
        assert_eq!(deltas[0].get("new_len").unwrap().as_u64(), Some(3));
        let changed = deltas[0].get("changed").unwrap().as_array().unwrap();
        assert!(!changed.is_empty());
        assert!(changed[0].get("rank").unwrap().as_u64().is_some());
        let route = changed[0].get("route").unwrap();
        assert!(route.get("cost").unwrap().as_u64().is_some());
        assert_eq!(route.get("stops").unwrap().as_array().unwrap().len(), 3);

        // The hub's counters ride /metrics next to the fleet's.
        let text = client::call(addr, "GET", "/metrics", None).unwrap().text();
        validate_prometheus_text(&text).expect(&text);
        for needle in [
            "kosr_subscriptions_active 1",
            "kosr_sub_wakeups_total{cause=\"membership\"} 1",
            "kosr_sub_deltas_pushed_total 1",
            "kosr_sub_skipped_total{cause=\"category\"}",
            "kosr_gateway_requests_total{endpoint=\"subscribe\"}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }

        // Unsubscribe ends the session; the id stops resolving.
        let del_path = format!("/v1/subscribe/{session}");
        let resp = client::call(addr, "DELETE", &del_path, None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(
            client::call(addr, "DELETE", &del_path, None)
                .unwrap()
                .status,
            404
        );
        let resp = client::call(addr, "GET", &poll_path, None).unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.text().contains("unknown_session"));
        assert_eq!(gw.subscriptions().stats().active, 0);
    }

    #[test]
    fn subscribe_surface_rejections_are_typed() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();

        // Invalid body shapes reuse the /v1/route parse taxonomy.
        let resp = client::call(addr, "POST", "/v1/subscribe", Some("{nope")).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid_json"));
        let resp = client::call(addr, "POST", "/v1/subscribe", Some(r#"{"source": 1}"#)).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid_request"));
        let body = format!(
            r#"{{"source": {}, "target": {}, "categories": [40], "k": 1}}"#,
            fx.s.0, fx.t.0
        );
        let resp = client::call(addr, "POST", "/v1/subscribe", Some(&body)).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid_query"));

        // Session id parsing and lookup failures.
        let resp = client::call(addr, "GET", "/v1/subscribe/zero/poll", None).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid_session"));
        let resp = client::call(addr, "GET", "/v1/subscribe/7/poll", None).unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.text().contains("unknown_session"));
        let resp = client::call(addr, "GET", "/v1/subscribe/0/poll?wait_ms=soon", None).unwrap();
        assert_eq!(resp.status, 400);
        let resp = client::call(addr, "DELETE", "/v1/subscribe/7", None).unwrap();
        assert_eq!(resp.status, 404);

        // Wrong methods on the subscribe surface are 405, not 404.
        assert_eq!(
            client::call(addr, "GET", "/v1/subscribe", None)
                .unwrap()
                .status,
            405
        );
        assert_eq!(
            client::call(addr, "POST", "/v1/subscribe/7/poll", Some("{}"))
                .unwrap()
                .status,
            405
        );
    }

    #[test]
    fn long_poll_parks_until_an_update_delivers() {
        let (router, _switches, fx) = fleet(2, 1);
        let gw = spawn_gateway(&router);
        let addr = gw.addr();
        let resp = client::call(addr, "POST", "/v1/subscribe", Some(&route_body(&fx, 1))).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let session = v.get("session").unwrap().as_u64().unwrap();
        let gone = v.get("routes").unwrap().as_array().unwrap()[0]
            .get("stops")
            .unwrap()
            .as_array()
            .unwrap()[1]
            .get("vertex")
            .unwrap()
            .as_u64()
            .unwrap();

        // Park a long-poll, then publish the answer-changing update from
        // another connection: the parked poll wakes with the delta.
        let publisher = thread::spawn(move || {
            thread::sleep(Duration::from_millis(100));
            let update = format!(
                r#"{{"op": "remove_membership", "vertex": {gone}, "category": {}}}"#,
                fx.re.0
            );
            client::call(addr, "POST", "/v1/update", Some(&update)).unwrap()
        });
        let resp = client::call(
            addr,
            "GET",
            &format!("/v1/subscribe/{session}/poll?wait_ms=5000"),
            None,
        )
        .unwrap();
        assert_eq!(publisher.join().unwrap().status, 200);
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v.get("resync").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("deltas").unwrap().as_array().unwrap().len(), 1);
    }
}
