//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Alice starts at `s`, wants to visit a shopping mall, then a restaurant,
//! then a cinema, and finish at `t`. We ask for the top-3 optimal sequenced
//! routes and print both the witnesses and the actual road routes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kosr::core::{figure1, IndexedGraph, Method, Query};

fn main() {
    // The eight-vertex road network of Figure 1 with categories
    // MA (shopping malls), RE (restaurants), CI (cinemas).
    let fx = figure1::figure1();

    // One-call preprocessing: contraction hierarchy -> hub order ->
    // 2-hop labels -> inverted label indexes.
    let ig = IndexedGraph::build_default(fx.graph.clone());

    // KOSR query (s, t, <MA, RE, CI>, 3).
    let query = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
    let out = ig.run(&query, Method::Sk);

    let names = ["s", "a", "b", "c", "d", "e", "f", "t"];
    println!("top-{} optimal sequenced routes (StarKOSR):", query.k);
    for (rank, w) in out.witnesses.iter().enumerate() {
        let stops: Vec<&str> = w.vertices.iter().map(|v| names[v.index()]).collect();
        let route = w
            .materialize(&ig.graph, &ig.labels)
            .expect("every returned witness is feasible");
        let road: Vec<&str> = route.vertices.iter().map(|v| names[v.index()]).collect();
        println!(
            "  #{} cost {:>2}  stops {:<15} road {}",
            rank + 1,
            w.cost,
            stops.join("->"),
            road.join("->")
        );
    }
    println!(
        "search effort: {} examined routes, {} NN queries",
        out.stats.examined_routes, out.stats.nn_queries
    );

    assert_eq!(out.costs(), vec![20, 21, 22], "Example 1 of the paper");
}
