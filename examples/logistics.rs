//! Logistics dispatch on a *directed* travel-time network — the paper's
//! general-graph setting where edge weights are asymmetric (rush-hour
//! traffic) and the triangle inequality does not hold.
//!
//! A courier run must go depot -> pickup point -> customs office ->
//! cold-storage warehouse -> delivery address. We compare all the paper's
//! methods on the same query, then use the *no-destination* variant (§IV-C)
//! for a driver who may end the shift at whichever warehouse comes last.
//!
//! ```text
//! cargo run --release --example logistics
//! ```

use kosr::core::{no_destination_kosr, IndexedGraph, Method, Query};
use kosr::graph::CategoryId;
use kosr::index::LabelNn;
use kosr::workloads::{assign_uniform, gen_queries, road_grid_directed};

fn main() {
    // Directed city: each street direction has its own travel time.
    let mut g = road_grid_directed(55, 55, 99);
    // 0 = pickup points, 1 = customs offices, 2 = cold-storage warehouses.
    assign_uniform(&mut g, 3, 60, 41);
    let (pickup, customs, warehouse) = (CategoryId(0), CategoryId(1), CategoryId(2));

    let ig = IndexedGraph::build_default(g);
    let spec = &gen_queries(&ig.graph, 1, 3, 4, 12345)[0];
    let query = Query::new(
        spec.source,
        spec.target,
        vec![pickup, customs, warehouse],
        4,
    );

    println!(
        "courier run {} -> pickup -> customs -> warehouse -> {}  (top-{})",
        query.source, query.target, query.k
    );
    println!("\nmethod comparison on the same query:");
    let mut reference: Option<Vec<u64>> = None;
    for m in Method::ALL {
        let out = ig.run(&query, m);
        println!(
            "  {:<9} {:>9.3} ms   {:>7} examined   {:>6} NN queries",
            m.name(),
            out.stats.time.total.as_secs_f64() * 1e3,
            out.stats.examined_routes,
            out.stats.nn_queries
        );
        // Every method returns the same top-k cost vector.
        match &reference {
            None => reference = Some(out.costs()),
            Some(r) => assert_eq!(r, &out.costs(), "{} disagrees", m.name()),
        }
    }
    let costs = reference.unwrap();
    println!("\nagreed top-{} costs: {costs:?}", costs.len());

    // Shift-end variant: stop at the warehouse, wherever it is.
    let open_end = no_destination_kosr(
        query.source,
        &[pickup, customs, warehouse],
        3,
        LabelNn::new(&ig.labels, &ig.inverted),
    );
    println!("\nno-destination variant (end at any warehouse):");
    for (i, w) in open_end.witnesses.iter().enumerate() {
        println!(
            "  #{}: cost {:>5}  depot {:?} -> stops {:?}",
            i + 1,
            w.cost,
            w.vertices[0],
            &w.vertices[1..]
        );
    }
    assert!(
        open_end.witnesses[0].cost <= costs[0],
        "dropping the fixed destination can only shorten the route"
    );
}
