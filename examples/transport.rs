//! The shard transport end to end, over real sockets: a 24×24 road world
//! is partitioned into 3 region shards, each served by **2 replicas
//! behind loopback TCP servers**; a `ShardRouter` reaches them through
//! pooled `TcpTransport` clients. The run streams queries (checked
//! bit-for-bit against an unsharded reference), kills a replica's server
//! mid-stream to show health/failover, publishes live updates over the
//! wire, and finally restarts the dead replica from a shipped snapshot +
//! update replay.
//!
//! ```text
//! cargo run --release --example transport
//! ```

use std::sync::Arc;

use kosr::core::{IndexedGraph, Query};
use kosr::service::{KosrService, ServiceConfig, Update};
use kosr::shard::{
    PartitionConfig, Partitioner, ReplicaHealth, ShardRouter, ShardSet, ShardTransport,
};
use kosr::transport::{TcpServer, TcpTransport};
use kosr::workloads::{
    assign_clustered, gen_membership_flips, gen_mixed_traffic, road_grid_directed, TrafficMix,
};

const SHARDS: usize = 3;
const REPLICAS: usize = 2;

fn main() {
    let mut g = road_grid_directed(24, 24, 42);
    assign_clustered(&mut g, 6, 30, 0.06, 7);
    println!(
        "world: {} vertices, {} edges, {} clustered categories",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    );

    let t0 = std::time::Instant::now();
    let ig = IndexedGraph::build_default(g.clone());
    println!("index build: {:.2?}", t0.elapsed());

    let partition = Partitioner::new(PartitionConfig {
        num_shards: SHARDS,
        ..Default::default()
    })
    .partition(&ig.graph);
    let set = ShardSet::build(&ig, partition);

    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 2048,
        cache_capacity: 512,
        ..Default::default()
    };
    let reference = KosrService::new(Arc::new(ig.clone()), config.clone());

    // Spawn 3 shards × 2 replicas, each behind its own TCP server.
    let t0 = std::time::Instant::now();
    let mut servers: Vec<Vec<Option<TcpServer>>> = Vec::new();
    let mut transports: Vec<Vec<Arc<dyn ShardTransport>>> = Vec::new();
    for j in 0..SHARDS {
        let shard_ig = Arc::new(set.shard(j).clone());
        let mut row = Vec::new();
        let mut ts: Vec<Arc<dyn ShardTransport>> = Vec::new();
        for r in 0..REPLICAS {
            let svc = Arc::new(KosrService::new(Arc::clone(&shard_ig), config.clone()));
            let server = TcpServer::spawn(svc).expect("bind loopback");
            println!("  shard {j} replica {r} listening on {}", server.addr());
            ts.push(Arc::new(TcpTransport::connect(server.addr())));
            row.push(Some(server));
        }
        servers.push(row);
        transports.push(ts);
    }
    let router = ShardRouter::from_transports(
        transports,
        set.partition().clone(),
        set.base_categories(),
        set.partition_stats().clone(),
    );
    let bus = router.update_bus();
    println!(
        "transport fleet up: {:.2?} for {} replicas\n",
        t0.elapsed(),
        SHARDS * REPLICAS
    );

    // Act 1 — a 600-query stream over the wire, checked bit-for-bit.
    let queries: Vec<Query> = gen_mixed_traffic(
        &g,
        600,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        9,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .collect();

    let t0 = std::time::Instant::now();
    let sharded = router.run_batch(&queries);
    let wall = t0.elapsed();
    let plain = reference.run_batch(&queries);
    let mut answered = 0;
    for (s, u) in sharded.iter().zip(&plain) {
        let (s, u) = (s.as_ref().unwrap(), u.as_ref().unwrap());
        assert_eq!(
            s.outcome.witnesses, u.outcome.witnesses,
            "sharded-over-TCP diverged from unsharded"
        );
        answered += 1;
    }
    println!(
        "act 1: {answered} queries over TCP in {wall:.2?} ({:.0} q/s), all bit-identical to unsharded",
        answered as f64 / wall.as_secs_f64()
    );
    println!(
        "       fan-out planning reads: {} (cached per epoch, {} shards)",
        router.fanout_reads(),
        SHARDS
    );

    // Act 2 — kill shard 0's primary server mid-flight: failover hides it.
    servers[0][0].take();
    println!("\nact 2: shard 0 replica 0 server killed");
    let again = router.run_batch(&queries[..200]);
    for (s, u) in again.iter().zip(&plain[..200]) {
        assert_eq!(
            s.as_ref().unwrap().outcome.witnesses,
            u.as_ref().unwrap().outcome.witnesses,
            "failover changed an answer"
        );
    }
    println!(
        "       200 queries re-served bit-identically; shard 0 health {:?}, {} failovers",
        router.replica_set(0).health(),
        router.replica_set(0).failovers()
    );

    // Act 3 — snapshot, then live updates over the wire (the dead replica
    // defers them; everyone else converges).
    let (cursor, blob) = router.snapshot_shard(0).expect("snapshot from survivor");
    let flips = gen_membership_flips(&g, 10, 23);
    let mut deferred = 0;
    for f in &flips {
        let u = if f.insert {
            Update::InsertMembership {
                vertex: f.vertex,
                category: f.category,
            }
        } else {
            Update::RemoveMembership {
                vertex: f.vertex,
                category: f.category,
            }
        };
        let receipt = bus.publish(&u).expect("publish over TCP");
        deferred += receipt.deferred_replicas;
        reference.apply_update(&u).expect("mirror onto reference");
    }
    let post: Vec<Query> = gen_mixed_traffic(&g, 200, &TrafficMix::default(), 31)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    let sharded_post = router.run_batch(&post);
    let plain_post = reference.run_batch(&post);
    for (s, u) in sharded_post.iter().zip(&plain_post) {
        match (s, u) {
            (Ok(s), Ok(u)) => assert_eq!(s.outcome.witnesses, u.outcome.witnesses),
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string()),
            (s, u) => panic!("post-update divergence: {s:?} vs {u:?}"),
        }
    }
    println!(
        "\nact 3: {} live updates published over the wire ({} deferred on the dead replica); \
         200 post-update queries bit-identical",
        flips.len(),
        deferred
    );

    // Act 4 — restart the dead replica from the shipped snapshot: decode,
    // serve on a fresh socket, install, replay the missed updates.
    let joined = IndexedGraph::decode_snapshot(&blob.bytes).expect("snapshot decodes");
    let joined_svc = Arc::new(KosrService::new(Arc::new(joined), config));
    let server = TcpServer::spawn(joined_svc).expect("bind restart socket");
    let addr = server.addr();
    router.install_replica(0, 0, Arc::new(TcpTransport::connect(addr)), cursor);
    let replayed = bus.recover(0, 0).expect("replay missed updates");
    servers[0][0] = Some(server);
    println!(
        "\nact 4: replica restarted on {addr} from a {} KiB snapshot, {replayed} updates replayed, health {:?}",
        blob.bytes.len() / 1024,
        router.replica_set(0).health()
    );
    assert_eq!(router.replica_set(0).health()[0], ReplicaHealth::Healthy);

    // The restarted replica serves alone for its shard — still exact.
    servers[0][1].take();
    let solo = router.run_batch(&post[..100]);
    for (s, u) in solo.iter().zip(&plain_post[..100]) {
        match (s, u) {
            (Ok(s), Ok(u)) => assert_eq!(
                s.outcome.witnesses, u.outcome.witnesses,
                "snapshot-joined replica diverged"
            ),
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string()),
            (s, u) => panic!("solo divergence: {s:?} vs {u:?}"),
        }
    }
    println!("       snapshot-joined replica served 100 queries alone, bit-identical — ok");
}
