//! The self-healing transport fleet, end to end over real sockets: a
//! 24×24 road world partitioned into 3 region shards, each served by **2
//! replicas behind loopback TCP servers**, reached through multiplexed
//! `TcpTransport` clients (any number of in-flight queries share one
//! connection per replica). A **`FleetSupervisor`** runs on its own
//! clock: it heartbeats the fleet, quarantines a killed replica, compacts
//! the update log, and — when the dead replica comes back as a freshly
//! restarted process with stale state — refreshes it **automatically**
//! over the wire (snapshot push + replay), with no manual `recover` or
//! `heartbeat` call anywhere in this file.
//!
//! ```text
//! cargo run --release --example transport
//! ```

use std::sync::Arc;
use std::time::Duration;

use kosr::core::{IndexedGraph, Query};
use kosr::service::{KosrService, ServiceConfig, Update};
use kosr::shard::{
    PartitionConfig, Partitioner, ReplicaHealth, ShardRouter, ShardSet, ShardTransport,
    SupervisorConfig,
};
use kosr::transport::{TcpServer, TcpTransport};
use kosr::workloads::{
    assign_clustered, gen_membership_flips, gen_mixed_traffic, road_grid_directed, TrafficMix,
};

const SHARDS: usize = 3;
const REPLICAS: usize = 2;

fn main() {
    let mut g = road_grid_directed(24, 24, 42);
    assign_clustered(&mut g, 6, 30, 0.06, 7);
    println!(
        "world: {} vertices, {} edges, {} clustered categories",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    );

    let t0 = std::time::Instant::now();
    let ig = IndexedGraph::build_default(g.clone());
    println!("index build: {:.2?}", t0.elapsed());

    let partition = Partitioner::new(PartitionConfig {
        num_shards: SHARDS,
        ..Default::default()
    })
    .partition(&ig.graph);
    let set = ShardSet::build(&ig, partition);

    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 2048,
        cache_capacity: 512,
        ..Default::default()
    };
    let reference = KosrService::new(Arc::new(ig.clone()), config.clone());

    // Spawn 3 shards × 2 replicas, each behind its own TCP server.
    let t0 = std::time::Instant::now();
    let mut servers: Vec<Vec<Option<TcpServer>>> = Vec::new();
    let mut transports: Vec<Vec<Arc<dyn ShardTransport>>> = Vec::new();
    for j in 0..SHARDS {
        let shard_ig = Arc::new(set.shard(j).clone());
        let mut row = Vec::new();
        let mut ts: Vec<Arc<dyn ShardTransport>> = Vec::new();
        for r in 0..REPLICAS {
            let svc = Arc::new(KosrService::new(Arc::clone(&shard_ig), config.clone()));
            let server = TcpServer::spawn(svc).expect("bind loopback");
            println!("  shard {j} replica {r} listening on {}", server.addr());
            ts.push(Arc::new(TcpTransport::with_deadline(
                server.addr(),
                Duration::from_secs(5),
            )));
            row.push(Some(server));
        }
        servers.push(row);
        transports.push(ts);
    }
    let router = ShardRouter::from_transports(
        transports,
        set.partition().clone(),
        set.base_categories(),
        set.partition_stats().clone(),
    );
    let bus = router.update_bus();
    // The supervisor on its own clock: tight watermark and replay limit so
    // this short run visibly compacts and snapshot-refreshes.
    let sup = router
        .supervisor(SupervisorConfig {
            tick_every: Duration::from_millis(20),
            compact_watermark: 8,
            replay_limit: 4,
        })
        .start();
    println!(
        "transport fleet up: {:.2?} for {} replicas, supervisor ticking every 20ms\n",
        t0.elapsed(),
        SHARDS * REPLICAS
    );

    // Act 1 — a 600-query stream, all multiplexed over one connection per
    // replica, checked bit-for-bit.
    let queries: Vec<Query> = gen_mixed_traffic(
        &g,
        600,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        9,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .collect();

    let t0 = std::time::Instant::now();
    let sharded = router.run_batch(&queries);
    let wall = t0.elapsed();
    let plain = reference.run_batch(&queries);
    let mut answered = 0;
    for (s, u) in sharded.iter().zip(&plain) {
        let (s, u) = (s.as_ref().unwrap(), u.as_ref().unwrap());
        assert_eq!(
            s.outcome.witnesses, u.outcome.witnesses,
            "sharded-over-TCP diverged from unsharded"
        );
        answered += 1;
    }
    println!(
        "act 1: {answered} queries multiplexed over TCP in {wall:.2?} ({:.0} q/s), all bit-identical to unsharded",
        answered as f64 / wall.as_secs_f64()
    );
    println!(
        "       fan-out planning reads: {} (cached per epoch, {} shards)",
        router.fanout_reads(),
        SHARDS
    );

    // Act 2 — kill shard 0's primary server mid-stream: the supervisor's
    // heartbeat quarantines it; failover hides it from queries.
    servers[0][0].take();
    let quarantined = {
        let started = std::time::Instant::now();
        loop {
            if router.replica_set(0).health()[0] == ReplicaHealth::Down {
                break started.elapsed();
            }
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "supervisor failed to notice the kill"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    println!(
        "\nact 2: shard 0 replica 0 server killed — supervisor quarantined it in {quarantined:.2?}"
    );
    let again = router.run_batch(&queries[..200]);
    for (s, u) in again.iter().zip(&plain[..200]) {
        assert_eq!(
            s.as_ref().unwrap().outcome.witnesses,
            u.as_ref().unwrap().outcome.witnesses,
            "failover changed an answer"
        );
    }
    println!(
        "       200 queries re-served bit-identically; shard 0 health {:?}, {} failovers",
        router.replica_set(0).health(),
        router.replica_set(0).failovers()
    );

    // Act 3 — live updates over the wire. The dead replica misses all of
    // them, and the supervisor compacts the log underneath it: its cursor
    // is stranded below the head, so replay becomes impossible *by
    // design* — exactly what the snapshot-refresh path is for.
    let flips = gen_membership_flips(&g, 12, 23);
    for f in &flips {
        let u = if f.insert {
            Update::InsertMembership {
                vertex: f.vertex,
                category: f.category,
            }
        } else {
            Update::RemoveMembership {
                vertex: f.vertex,
                category: f.category,
            }
        };
        bus.publish(&u).expect("publish over TCP");
        reference.apply_update(&u).expect("mirror onto reference");
    }
    // Give the supervisor a few ticks to compact.
    std::thread::sleep(Duration::from_millis(100));
    println!(
        "\nact 3: {} live updates published over the wire; log: {} published, head {}, {} live entries (watermark 8)",
        flips.len(),
        bus.log_len(),
        bus.log_head(),
        bus.log_live_len()
    );
    let post: Vec<Query> = gen_mixed_traffic(&g, 200, &TrafficMix::default(), 31)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    let sharded_post = router.run_batch(&post);
    let plain_post = reference.run_batch(&post);
    for (s, u) in sharded_post.iter().zip(&plain_post) {
        match (s, u) {
            (Ok(s), Ok(u)) => assert_eq!(s.outcome.witnesses, u.outcome.witnesses),
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string()),
            (s, u) => panic!("post-update divergence: {s:?} vs {u:?}"),
        }
    }
    println!("       200 post-update queries bit-identical");

    // Act 4 — restart the dead replica as a fresh process with *stale*
    // state (the pre-update shard build) on a new socket, plug its
    // transport in… and just watch: the supervisor notices the
    // behind-the-log replica, pushes a snapshot into it over the wire,
    // replays the tail, and reinstates it. No recover call.
    let stale_svc = Arc::new(KosrService::new(
        Arc::new(set.shard(0).clone()),
        config.clone(),
    ));
    let server = TcpServer::spawn(stale_svc).expect("bind restart socket");
    let addr = server.addr();
    router.install_replica(
        0,
        0,
        Arc::new(TcpTransport::with_deadline(addr, Duration::from_secs(5))),
        0, // a fresh build has applied none of the published log
    );
    servers[0][0] = Some(server);
    let healed = sup.await_healthy(Duration::from_secs(30));
    let report = sup.report();
    assert!(healed, "supervisor failed to heal the fleet: {report:?}");
    println!(
        "\nact 4: replica restarted stale on {addr} — supervisor auto-refreshed it \
         ({} snapshot refreshes, {} cursor-too-old signals, {} compactions, {} replays)",
        report.snapshot_refreshes, report.cursor_too_old, report.compactions, report.replays
    );
    assert_eq!(router.replica_set(0).health()[0], ReplicaHealth::Healthy);

    // The refreshed replica serves alone for its shard — still exact.
    servers[0][1].take();
    let solo = router.run_batch(&post[..100]);
    for (s, u) in solo.iter().zip(&plain_post[..100]) {
        match (s, u) {
            (Ok(s), Ok(u)) => assert_eq!(
                s.outcome.witnesses, u.outcome.witnesses,
                "auto-refreshed replica diverged"
            ),
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string()),
            (s, u) => panic!("solo divergence: {s:?} vs {u:?}"),
        }
    }
    println!("       auto-refreshed replica served 100 queries alone, bit-identical — ok");
}
