//! SK-DB: answering KOSR queries with the label indexes **resident on
//! disk** (§IV-C) — for deployments where the in-memory index does not fit.
//!
//! The on-disk layout groups each category's inverted index together with
//! its members' `Lout` labels, so one query performs exactly `|C| + 4`
//! seeks. This example builds the index file, answers a query through it,
//! verifies the answer against in-memory StarKOSR, and prints the I/O bill.
//!
//! ```text
//! cargo run --release --example disk_index
//! ```

use kosr::core::{run_sk_db, IndexedGraph, Method, Query};
use kosr::graph::CategoryId;
use kosr::index::disk::DiskIndex;
use kosr::workloads::{assign_uniform, gen_queries, road_grid_directed};

fn main() {
    let mut g = road_grid_directed(45, 45, 555);
    assign_uniform(&mut g, 8, 70, 6);
    let ig = IndexedGraph::build_default(g);

    // Persist the index: vertex directory + one segment per category.
    let path = std::env::temp_dir().join("kosr_example_index.bin");
    ig.write_disk_index(&path).expect("write index");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "index file: {:.2} MB for {} vertices / {} categories",
        bytes as f64 / 1e6,
        ig.graph.num_vertices(),
        ig.graph.categories().num_categories()
    );

    let disk = DiskIndex::open(&path).expect("open index");
    let spec = &gen_queries(&ig.graph, 1, 5, 10, 777)[0];
    let query = Query::new(
        spec.source,
        spec.target,
        vec![
            CategoryId(0),
            CategoryId(2),
            CategoryId(4),
            CategoryId(5),
            CategoryId(7),
        ],
        10,
    );

    let from_disk = run_sk_db(&disk, &query).expect("disk query");
    println!(
        "\nSK-DB: top-{} costs {:?} in {:.2} ms (load included)",
        query.k,
        from_disk.costs(),
        from_disk.stats.time.total.as_secs_f64() * 1e3
    );
    println!(
        "I/O: {} seeks (= |C| + 4 = {}), {:.1} KB read",
        disk.seek_count(),
        query.categories.len() + 4,
        disk.bytes_read() as f64 / 1e3
    );

    // The in-memory method returns the identical answer, just faster.
    let in_memory = ig.run(&query, Method::Sk);
    assert_eq!(from_disk.costs(), in_memory.costs());
    println!(
        "in-memory SK: same costs in {:.2} ms",
        in_memory.stats.time.total.as_secs_f64() * 1e3
    );

    std::fs::remove_file(&path).ok();
}
