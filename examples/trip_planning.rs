//! Trip planning over a synthetic city: the paper's motivating scenario at
//! realistic scale, including a *personal preference* variant (§IV-C).
//!
//! A user drives from home to a friend's place and wants to pass a gas
//! station, a supermarket and a pharmacy, in that order. We return the
//! top-5 alternatives (the whole point of KOSR: the single optimum rarely
//! suits everyone), then re-plan with the constraint that the supermarket
//! must be one of the user's preferred chain stores.
//!
//! ```text
//! cargo run --release --example trip_planning
//! ```

use kosr::core::{star_kosr, FilteredNn, IndexedGraph, Method, Query};
use kosr::graph::{CategoryId, VertexId};
use kosr::index::{LabelNn, LabelTarget};
use kosr::workloads::{assign_uniform, road_grid_undirected};

fn main() {
    // A ~60x60 city grid with symmetric street distances.
    let mut g = road_grid_undirected(60, 60, 2024);
    // Three POI categories: 0 = gas, 1 = supermarket, 2 = pharmacy.
    assign_uniform(&mut g, 3, 80, 7);
    let (gas, market, pharmacy) = (CategoryId(0), CategoryId(1), CategoryId(2));

    let ig = IndexedGraph::build_default(g);
    let home = VertexId(0); // north-west corner
    let friend = VertexId((60 * 60) - 1); // south-east corner

    let query = Query::new(home, friend, vec![gas, market, pharmacy], 5);
    let out = ig.run(&query, Method::Sk);
    println!("top-5 trips (any supermarket):");
    for (i, w) in out.witnesses.iter().enumerate() {
        println!(
            "  #{}: cost {:>5}  stops {:?}",
            i + 1,
            w.cost,
            &w.vertices[1..w.vertices.len() - 1]
        );
    }
    println!(
        "  ({} routes examined, {} NN queries, {:.2} ms)\n",
        out.stats.examined_routes,
        out.stats.nn_queries,
        out.stats.time.total.as_secs_f64() * 1e3
    );

    // Preference: only every fourth supermarket belongs to the user's
    // favourite chain. The filter plugs into the NN stream (the paper's
    // "line 15 of Algorithm 3" hook) and composes with any method.
    let preferred: Vec<VertexId> = ig
        .graph
        .categories()
        .vertices_of(market)
        .iter()
        .copied()
        .filter(|v| v.0 % 4 == 0)
        .collect();
    println!(
        "re-planning with {} preferred supermarkets out of {}:",
        preferred.len(),
        ig.graph.categories().category_size(market)
    );
    let allowed: std::collections::HashSet<VertexId> = preferred.into_iter().collect();
    let nn = FilteredNn::new(LabelNn::new(&ig.labels, &ig.inverted), move |c, v| {
        c != market || allowed.contains(&v)
    });
    let constrained = star_kosr(&query, nn, LabelTarget::new(&ig.labels, friend));
    for (i, w) in constrained.witnesses.iter().enumerate() {
        println!(
            "  #{}: cost {:>5}  stops {:?}",
            i + 1,
            w.cost,
            &w.vertices[1..w.vertices.len() - 1]
        );
    }
    assert!(
        constrained.witnesses[0].cost >= out.witnesses[0].cost,
        "constraining can only increase the optimal cost"
    );
}
