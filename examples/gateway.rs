//! The HTTP edge end to end: a 20×20 road world partitioned into **2
//! region shards × 2 replicas**, a `FleetSupervisor` on its own clock,
//! and a `Gateway` in front — driven entirely through **JSON over real
//! sockets**. Mixed traffic (queries, live updates, health probes, and
//! deliberately invalid requests) hits the edge; route answers are
//! checked bit-for-bit against an unsharded oracle; then a replica is
//! killed mid-run to show `/healthz` flip to 503, the shard failover
//! counter advance on `/metrics`, and the supervisor heal the fleet with
//! no manual call anywhere in this file. The finale is tracing end to
//! end: a route answer's `X-Kosr-Trace-Id` fetches its full
//! gateway→shard→replica span tree (planner method and PNE expansion
//! counters included), and the slow-query log proves the worst of the
//! stream was captured and is retrievable.
//!
//! ```text
//! cargo run --release --example gateway
//! ```

use std::sync::Arc;
use std::time::Duration;

use kosr::core::{IndexedGraph, Query};
use kosr::gateway::{client, Gateway, GatewayConfig};
use kosr::service::{KosrService, ServiceConfig};
use kosr::shard::{
    PartitionConfig, Partitioner, ReplicaHealth, ShardRouter, ShardSet, SupervisorConfig,
};
use kosr::workloads::{
    assign_clustered, gen_http_traffic, road_grid_directed, route_body, HttpCallKind,
    HttpTrafficMix, TrafficMix,
};

const SHARDS: usize = 2;
const REPLICAS: usize = 2;

fn metric_value(text: &str, prefix: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(prefix))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

fn main() {
    let mut g = road_grid_directed(20, 20, 42);
    assign_clustered(&mut g, 6, 30, 0.06, 7);
    println!(
        "world: {} vertices, {} edges, {} clustered categories",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    );
    let ig = IndexedGraph::build_default(g.clone());

    let partition = Partitioner::new(PartitionConfig {
        num_shards: SHARDS,
        ..Default::default()
    })
    .partition(&ig.graph);
    let set = ShardSet::build(&ig, partition);
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 2048,
        cache_capacity: 512,
        ..Default::default()
    };
    let reference = KosrService::new(Arc::new(ig.clone()), config.clone());

    let mut switches = Vec::new();
    let router = Arc::new(ShardRouter::with_replicas(
        set,
        config,
        REPLICAS,
        |_, _, t| {
            switches.push(t.kill_switch());
            Arc::new(t)
        },
    ));
    // A deliberately lazy heartbeat (200ms): after the kill below, live
    // queries reach the dead replica *before* the supervisor does, so the
    // query-time failover counter visibly advances on /metrics.
    let supervisor = Arc::new(
        router
            .supervisor(SupervisorConfig {
                tick_every: Duration::from_millis(200),
                ..Default::default()
            })
            .start(),
    );
    let gateway = Gateway::spawn(
        Arc::clone(&router),
        Some(Arc::clone(&supervisor)),
        GatewayConfig::default(),
    )
    .expect("bind gateway");
    let addr = gateway.addr();
    println!("gateway up on http://{addr} fronting {SHARDS} shards x {REPLICAS} replicas\n");

    // Act 1 — mixed JSON traffic over real sockets: route queries checked
    // bit-for-bit against the unsharded oracle, invalid requests answered
    // with typed 4xx, probes with 200/valid Prometheus text.
    let calls = gen_http_traffic(
        &g,
        400,
        &HttpTrafficMix {
            queries: TrafficMix {
                hot_fraction: 0.4,
                ..Default::default()
            },
            update_fraction: 0.0, // updates get their own act below
            invalid_fraction: 0.08,
            probe_fraction: 0.05,
            deadline_ms: Some(30_000),
        },
        9,
    );
    let specs = kosr::workloads::gen_mixed_traffic(
        &g,
        400,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        9,
    );
    let t0 = std::time::Instant::now();
    let (mut routed, mut rejected, mut probed) = (0usize, 0usize, 0usize);
    for (call, spec) in calls.iter().zip(&specs) {
        let resp = client::call(addr, call.method, call.path, call.body.as_deref())
            .expect("edge reachable");
        match call.kind {
            HttpCallKind::Route => {
                assert_eq!(resp.status, 200, "{}", resp.text());
                let v = resp.json().expect("json body");
                let routes = v.get("routes").unwrap().as_array().unwrap();
                let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
                let want = reference.submit(q).unwrap().wait().unwrap();
                assert_eq!(routes.len(), want.outcome.witnesses.len());
                for (route, w) in routes.iter().zip(&want.outcome.witnesses) {
                    assert_eq!(route.get("cost").unwrap().as_u64().unwrap(), w.cost);
                }
                routed += 1;
            }
            HttpCallKind::Invalid => {
                assert!(
                    (400..500).contains(&resp.status),
                    "invalid traffic must 4xx, got {}: {}",
                    resp.status,
                    resp.text()
                );
                rejected += 1;
            }
            HttpCallKind::Healthz | HttpCallKind::Metrics => {
                assert_eq!(resp.status, 200);
                probed += 1;
            }
            HttpCallKind::Update => unreachable!("update_fraction is 0"),
        }
    }
    let stats = gateway.stats();
    println!(
        "act 1: {} calls over sockets in {:.2?} — {routed} routes bit-identical to the oracle, \
         {rejected} invalid requests typed 4xx, {probed} probes",
        calls.len(),
        t0.elapsed(),
    );
    println!(
        "       edge: {:.0} req/s, p50 {:?}, p99 {:?}, shard-cache hit rate {:.0}%\n",
        stats.qps(),
        stats.latency_quantile(0.5),
        stats.latency_quantile(0.99),
        100.0 * stats.shard_cache_hit_rate(),
    );

    // Act 2 — a live update through POST /v1/update, mirrored on the
    // oracle; answers stay bit-identical.
    let sample = &specs[0];
    let best = client::call(addr, "POST", "/v1/route", Some(&route_body(sample, None)))
        .unwrap()
        .json()
        .unwrap();
    let first_cat = sample.categories[0];
    let stop = best.get("routes").unwrap().as_array().unwrap()[0]
        .get("stops")
        .unwrap()
        .as_array()
        .unwrap()[0]
        .get("vertex")
        .unwrap()
        .as_u64()
        .unwrap();
    let update = format!(
        "{{\"op\": \"remove_membership\", \"vertex\": {stop}, \"category\": {}}}",
        first_cat.0
    );
    let receipt = client::call(addr, "POST", "/v1/update", Some(&update)).unwrap();
    assert_eq!(receipt.status, 200, "{}", receipt.text());
    reference
        .apply_update(&kosr::service::Update::RemoveMembership {
            vertex: kosr::graph::VertexId(stop as u32),
            category: first_cat,
        })
        .unwrap();
    let after = client::call(addr, "POST", "/v1/route", Some(&route_body(sample, None)))
        .unwrap()
        .json()
        .unwrap();
    let q = Query::new(
        sample.source,
        sample.target,
        sample.categories.clone(),
        sample.k,
    );
    let want = reference.submit(q).unwrap().wait().unwrap();
    assert_eq!(
        after.get("routes").unwrap().as_array().unwrap()[0]
            .get("cost")
            .unwrap()
            .as_u64()
            .unwrap(),
        want.outcome.witnesses[0].cost,
        "post-update answers still match the oracle"
    );
    println!(
        "act 2: removed the best route's first stop (vertex {stop}) over the wire — receipt {}",
        receipt.text()
    );

    // Act 3 — kill shard 0's primary replica. Queries keep answering
    // through failover; /healthz flips; the failover counter advances.
    let metrics_before = client::call(addr, "GET", "/metrics", None).unwrap().text();
    let failovers_before = metric_value(&metrics_before, "kosr_shard_failovers_total");
    switches[0].kill();
    for spec in &specs[..60] {
        let resp = client::call(addr, "POST", "/v1/route", Some(&route_body(spec, None))).unwrap();
        assert_eq!(resp.status, 200, "failover hides the kill");
    }
    let flipped = {
        let started = std::time::Instant::now();
        loop {
            let health = client::call(addr, "GET", "/healthz", None).unwrap();
            if health.status == 503 {
                break started.elapsed();
            }
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "healthz never flipped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let metrics_after = client::call(addr, "GET", "/metrics", None).unwrap().text();
    let failovers_after = metric_value(&metrics_after, "kosr_shard_failovers_total");
    assert!(
        failovers_after > failovers_before,
        "failover counter must advance: {failovers_before} -> {failovers_after}"
    );
    println!(
        "\nact 3: killed shard 0 replica 0 — 60 queries served through failover, \
         /healthz flipped to 503 in {flipped:.2?}, \
         kosr_shard_failovers_total {failovers_before} -> {failovers_after}"
    );

    // Act 4 — revive: the supervisor reinstates the replica on its own
    // clock; /healthz recovers and the recovery counters land on /metrics.
    switches[0].revive();
    assert!(
        supervisor.await_healthy(Duration::from_secs(30)),
        "supervisor failed to heal: {:?}",
        supervisor.report()
    );
    let health = client::call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        router.replica_set(0).health()[0],
        ReplicaHealth::Healthy,
        "replica reinstated"
    );
    let metrics = client::call(addr, "GET", "/metrics", None).unwrap().text();
    kosr::gateway::validate_prometheus_text(&metrics).expect("valid Prometheus text");
    println!(
        "\nact 4: replica revived — supervisor healed the fleet ({} replays, {} snapshot \
         refreshes), /healthz back to 200",
        metric_value(&metrics, "kosr_supervisor_replays_total"),
        metric_value(&metrics, "kosr_supervisor_snapshot_refreshes_total"),
    );
    println!("\nfleet metrics excerpt:");
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("kosr_gateway_qps")
                || l.starts_with("kosr_gateway_latency_seconds")
                || l.starts_with("kosr_gateway_shard_cache_hit_rate")
                || l.starts_with("kosr_shard_replicas_healthy")
                || l.starts_with("kosr_supervisor_replays_total")
                || l.starts_with("kosr_supervisor_snapshot_refreshes_total")
                || l.starts_with("kosr_fleet_healthy"))
    }) {
        println!("  {line}");
    }

    // Act 5 — tracing end to end. Every route answer names its trace; the
    // id fetches the full span tree across tiers, pruning counters and
    // all; and the slow-query log retained the worst of the whole stream.
    // A `k` one past anything the stream asked before: prefix-truncation
    // reuse can't serve it, so the replica demonstrably *executes* and
    // the trace carries the paper's pruning counters.
    let mut traced_spec = specs[1].clone();
    traced_spec.k += 1;
    let resp = client::call(
        addr,
        "POST",
        "/v1/route",
        Some(&route_body(&traced_spec, None)),
    )
    .expect("edge reachable");
    assert_eq!(resp.status, 200);
    let trace_id = resp
        .header("x-kosr-trace-id")
        .expect("sampled responses carry their trace id")
        .to_string();
    let fetched = client::call(addr, "GET", &format!("/v1/traces/{trace_id}"), None).unwrap();
    assert_eq!(fetched.status, 200, "{}", fetched.text());
    let tree = fetched.json().expect("span tree json");
    let root = tree.get("root").expect("assembled root span");
    assert_eq!(root.get("name").unwrap().as_str(), Some("gateway"));
    let replica = descendant(root, "replica")
        .expect("the span tree reaches the replica tier (gateway → shard → replica)");
    let admission = descendant(replica, "admission").expect("admission span");
    let method = admission
        .get("tags")
        .and_then(|t| t.get("method"))
        .and_then(|m| m.as_str())
        .expect("planner method tagged on the trace")
        .to_string();
    let expansions = descendant(replica, "execute")
        .and_then(|e| e.get("tags")?.get("pne_expansions")?.as_u64())
        .expect("an uncached traced query profiles its PNE expansions");

    // The slow-query log: summaries list the worst traces, and the
    // slowest one is itself retrievable by id — the e2e slow-path story.
    let recent = client::call(addr, "GET", "/v1/traces/recent", None).unwrap();
    assert_eq!(recent.status, 200);
    let page = recent.json().unwrap();
    let slow = page.get("slow").unwrap().as_array().unwrap();
    assert!(
        !slow.is_empty(),
        "400 traced calls must populate the slow log"
    );
    let slowest_id = slow[0].get("trace_id").unwrap().as_str().unwrap();
    let slowest_wall = slow[0].get("wall_us").unwrap().as_u64().unwrap();
    let slowest = client::call(addr, "GET", &format!("/v1/traces/{slowest_id}"), None).unwrap();
    assert_eq!(slowest.status, 200, "slow-query traces are retrievable");
    assert_eq!(
        slowest.json().unwrap().get("wall_us").unwrap().as_u64(),
        Some(slowest_wall)
    );
    let final_metrics = client::call(addr, "GET", "/metrics", None).unwrap().text();
    println!(
        "\nact 5: trace {trace_id} spans gateway → shard → replica (method {method}, \
         pne_expansions {expansions}); slow log holds {} traces, worst {slowest_wall}µs \
         (trace {slowest_id}, fetched by id)",
        slow.len(),
    );
    for line in final_metrics
        .lines()
        .filter(|l| !l.starts_with('#') && l.starts_with("kosr_trace"))
    {
        println!("  {line}");
    }

    // Act 6 — the fleet event journal and SLO alerts, over the wire. The
    // kill in act 3 journaled a Critical event and fired the availability
    // burn-rate alert; the heal in act 4 resolves it. The supervisor's
    // recovery decision is annotated with the seq of the event that
    // triggered it — the journal is self-correlating.
    let events = client::call(addr, "GET", "/v1/events?severity=critical", None).unwrap();
    assert_eq!(events.status, 200, "{}", events.text());
    let page = events.json().unwrap();
    let critical = page.get("events").unwrap().as_array().unwrap();
    assert!(
        critical.iter().any(|e| matches!(
            e.get("kind").unwrap().as_str().unwrap(),
            "failover" | "replica_down"
        )),
        "the kill must have journaled a Critical event"
    );
    let recoveries = client::call(addr, "GET", "/v1/events?source=supervisor", None)
        .unwrap()
        .json()
        .unwrap();
    let annotated = recoveries
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|e| {
            matches!(
                e.get("kind").unwrap().as_str().unwrap(),
                "replay_recovered" | "snapshot_refreshed"
            ) && e.get("tags").unwrap().get("trigger").is_some()
        })
        .expect("a recovery event annotated with its triggering down-event seq");
    let trigger = annotated
        .get("tags")
        .unwrap()
        .get("trigger")
        .unwrap()
        .as_u64()
        .unwrap();

    // The alert lifecycle: fired on the kill, resolved after the heal
    // (flap damping wants a couple of clean ticks — poll briefly).
    let resolved_alert = {
        let started = std::time::Instant::now();
        loop {
            let alerts = client::call(addr, "GET", "/v1/alerts", None)
                .unwrap()
                .json()
                .unwrap();
            let firing = alerts.get("firing").unwrap().as_array().unwrap().is_empty();
            let resolved = alerts
                .get("recently_resolved")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .find(|a| a.get("slo").unwrap().as_str() == Some("availability"))
                .cloned();
            if firing {
                if let Some(a) = resolved {
                    break a;
                }
            }
            assert!(
                started.elapsed() < Duration::from_secs(15),
                "availability alert never completed its firing → resolved cycle"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    let event_metrics = client::call(addr, "GET", "/metrics", None).unwrap().text();
    let events_total = metric_value(&event_metrics, "kosr_events_emitted_total");
    println!(
        "\nact 6: event journal holds {} Critical records (recovery trigger seq {trigger}); \
         availability alert fired on the kill and resolved at seq {} after the heal; \
         {events_total:.0} events journaled fleet-wide",
        critical.len(),
        resolved_alert.get("seq").unwrap().as_u64().unwrap(),
    );
    for line in event_metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("kosr_events_total") || l.starts_with("kosr_alert_active"))
    }) {
        println!("  {line}");
    }
}

/// Depth-first search for a span named `name` in a `/v1/traces/{id}` tree.
fn descendant<'a>(
    node: &'a kosr::gateway::json::Json,
    name: &str,
) -> Option<&'a kosr::gateway::json::Json> {
    if node.get("name")?.as_str() == Some(name) {
        return Some(node);
    }
    node.get("children")?
        .as_array()?
        .iter()
        .find_map(|c| descendant(c, name))
}
