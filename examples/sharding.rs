//! The sharded serving layer end to end: a 28×28 road world with
//! spatially clustered POI categories is partitioned into 4 region
//! shards, a `ShardRouter` fans a 1,000-query multi-region stream out
//! over the per-shard `KosrService` replicas, and every merged answer is
//! cross-checked bit-for-bit against an unsharded service. A live-update
//! act closes the most popular restaurant mid-stream through the
//! `LiveUpdateBus` and shows every replica converging.
//!
//! ```text
//! cargo run --release --example sharding
//! ```

use std::sync::Arc;

use kosr::core::{IndexedGraph, Query};
use kosr::service::{KosrService, ServiceConfig, Update};
use kosr::shard::{PartitionConfig, Partitioner, ShardRouter, ShardSet};
use kosr::workloads::{assign_clustered, gen_region_traffic, road_grid_directed, RegionTraffic};

fn main() {
    // A directed road grid with 8 spatially clustered categories of 40
    // POIs each — the membership shape region sharding is built for.
    let mut g = road_grid_directed(28, 28, 42);
    assign_clustered(&mut g, 8, 40, 0.05, 7);
    println!(
        "world: {} vertices, {} edges, {} clustered categories",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    );

    let t0 = std::time::Instant::now();
    let ig = IndexedGraph::build_default(g);
    println!("index build: {:.2?}", t0.elapsed());

    // Partition into 4 membership-balanced regions.
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 4,
        ..Default::default()
    })
    .partition(&ig.graph);
    let pstats = partition.stats(&ig.graph);
    println!(
        "partition: sizes {:?}, memberships {:?}, {} cut edges, {} boundary vertices\n",
        pstats.shard_sizes, pstats.shard_memberships, pstats.cut_edges, pstats.boundary_vertices
    );

    // One KosrService replica per shard + an unsharded reference deployment.
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 2048,
        cache_capacity: 1024,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let set = ShardSet::build(&ig, partition.clone());
    let router = ShardRouter::new(set, config.clone());
    println!(
        "shard build: {:.2?} for {} replicas",
        t0.elapsed(),
        router.num_shards()
    );
    let reference = KosrService::new(Arc::new(ig.clone()), config);

    // A 1,000-query multi-region stream: zipf-hot regions, 70% local trips.
    let stream = gen_region_traffic(&ig.graph, &partition, 1000, &RegionTraffic::default(), 9);
    let queries: Vec<Query> = stream
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    let fanout: usize = queries
        .iter()
        .map(|q| router.plan_fanout(q).unwrap().len())
        .sum();
    println!(
        "serving {} queries, mean fan-out {:.2} of {} shards ...",
        queries.len(),
        fanout as f64 / queries.len() as f64,
        router.num_shards()
    );

    let sharded = router.run_batch(&queries);
    let unsharded = reference.run_batch(&queries);
    let mut checked = 0;
    for (s, u) in sharded.iter().zip(&unsharded) {
        let (s, u) = (s.as_ref().expect("sharded"), u.as_ref().expect("unsharded"));
        assert_eq!(
            s.outcome.witnesses, u.outcome.witnesses,
            "sharding changed an answer"
        );
        checked += 1;
    }
    println!(
        "verified: {checked}/{} merged answers bit-identical to the unsharded service\n",
        queries.len()
    );

    for (j, stats) in router.per_shard_stats().iter().enumerate() {
        println!(
            "shard {j}: {} queries, {:.0}% cache hits, p99 {:?}, busy {:?}",
            stats.completed,
            100.0 * stats.cache_hit_rate(),
            stats.latency_p99,
            stats.busy
        );
    }

    // Live updates: close the restaurant used by the most popular query's
    // best route, publish through the bus, verify convergence everywhere.
    let hot = &queries[0];
    let best = &sharded[0].as_ref().unwrap().outcome.witnesses[0];
    let (stop, category) = (best.vertices[1], hot.categories[0]);
    let update = Update::RemoveMembership {
        vertex: stop,
        category,
    };
    let bus = router.update_bus();
    let receipt = bus.publish(&update).expect("valid update");
    reference.apply_update(&update).expect("valid update");
    println!(
        "\nupdate: closed {stop:?} in {:?} — owner shard {}, {} replicas touched, {} cached answers invalidated",
        ig.graph.categories().name(category),
        receipt.owner_shard.unwrap(),
        receipt.replicas_touched,
        receipt.invalidated
    );

    let after_sharded = router.run_batch(&queries[..200]);
    let after_unsharded = reference.run_batch(&queries[..200]);
    let mut changed = 0;
    for (i, (s, u)) in after_sharded.iter().zip(&after_unsharded).enumerate() {
        let (s, u) = (s.as_ref().expect("sharded"), u.as_ref().expect("unsharded"));
        assert_eq!(
            s.outcome.witnesses, u.outcome.witnesses,
            "post-update divergence"
        );
        if let Ok(before) = &sharded[i] {
            changed += (before.outcome.witnesses != s.outcome.witnesses) as usize;
        }
    }
    println!(
        "post-update: 200/200 re-verified bit-identical; {changed} answers changed by the closure"
    );
}
