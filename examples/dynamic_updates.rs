//! Dynamic category maintenance (§IV-C): a venue changes what it offers and
//! the index follows along **without** rebuilding the 2-hop labels.
//!
//! A café at a busy corner starts serving full dinners, so it joins the
//! `restaurant` category: the inverted label index absorbs the change in
//! `O(|Lin(v)| log |Ci|)`, and the very next query can route through it.
//! Later it drops the dinner menu again and the index (and answers) return
//! to the previous state.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use kosr::core::{IndexedGraph, Method, Query};
use kosr::graph::CategoryId;
use kosr::workloads::{assign_uniform, gen_queries, road_grid_undirected};

fn main() {
    let mut g = road_grid_undirected(40, 40, 31);
    assign_uniform(&mut g, 2, 25, 8);
    let (cafe, restaurant) = (CategoryId(0), CategoryId(1));
    let mut ig = IndexedGraph::build_default(g);

    let spec = &gen_queries(&ig.graph, 1, 2, 3, 2)[0];
    let query = Query::new(spec.source, spec.target, vec![cafe, restaurant], 3);
    let before = ig.run(&query, Method::Sk);
    println!("before the update: top-3 costs {:?}", before.costs());

    // Promote the best café into the restaurant category too (it now serves
    // dinner). The incremental update touches only the inverted lists of
    // the hubs in the café's Lin label.
    let promoted = before.witnesses[0].vertices[1];
    let mut cats = ig.graph.categories().clone();
    let changed = ig
        .inverted
        .insert_membership(&ig.labels, &mut cats, promoted, restaurant);
    ig.graph.set_categories(cats);
    println!("\npromoted {promoted:?} into 'restaurant' (index updated incrementally: {changed})");

    let after = ig.run(&query, Method::Sk);
    println!("after the update:  top-3 costs {:?}", after.costs());
    assert!(
        after.witnesses[0].cost <= before.witnesses[0].cost,
        "a new restaurant option can only help"
    );
    // The promoted venue can now serve both stops back to back.
    let zero_leg = after
        .witnesses
        .iter()
        .any(|w| w.vertices[1] == promoted && w.vertices[2] == promoted);
    println!("some top route uses the café for both stops: {zero_leg}");

    // Dinner service ends: remove the membership, answers roll back.
    let mut cats = ig.graph.categories().clone();
    ig.inverted
        .remove_membership(&ig.labels, &mut cats, promoted, restaurant);
    ig.graph.set_categories(cats);
    let rolled_back = ig.run(&query, Method::Sk);
    println!(
        "\nafter the removal: top-3 costs {:?} (matches 'before': {})",
        rolled_back.costs(),
        rolled_back.costs() == before.costs()
    );
    assert_eq!(rolled_back.costs(), before.costs());
}
