//! KOSR on a social network — the paper's G+ experiment setting: a dense,
//! unweighted, small-diameter graph where *every* hop costs 1 and huge
//! category fan-outs stress the dominance pruning.
//!
//! An outreach campaign must route an introduction chain from one account
//! to another through: a machine-learning community member, then a systems
//! community member, then a databases community member. Top-k answers give
//! alternative chains if someone declines. k = 1 also demonstrates GSP, the
//! OSR comparator of Figure 7.
//!
//! ```text
//! cargo run --release --example social_hops
//! ```

use kosr::core::{gsp, GspEngine, IndexedGraph, Method, Query};
use kosr::graph::CategoryId;
use kosr::workloads::{assign_uniform, social_graph};

fn main() {
    // Preferential-attachment graph: 1500 accounts, 20 follows each.
    let mut g = social_graph(1500, 20, 7);
    // Topic communities (unweighted graphs: §IV-C — "set all weights to 1",
    // which the generator already does).
    assign_uniform(&mut g, 3, 120, 3);
    let (ml, sys, db) = (CategoryId(0), CategoryId(1), CategoryId(2));

    let ch = kosr::ch::build(&g);
    let ig = IndexedGraph::build_default(g);
    let query = Query::new(
        kosr::graph::VertexId(11),
        kosr::graph::VertexId(1377),
        vec![ml, sys, db],
        5,
    );

    let out = ig.run(&query, Method::Sk);
    println!(
        "top-{} introduction chains from {} to {}:",
        query.k, query.source, query.target
    );
    for (i, w) in out.witnesses.iter().enumerate() {
        println!("  #{}: {} hops via {:?}", i + 1, w.cost, &w.vertices);
    }
    println!(
        "  ({} routes examined — hop ties make social graphs the paper's \
         hardest case for pruning)",
        out.stats.examined_routes
    );

    // OSR (k = 1): GSP against StarKOSR, both engines.
    let (w_gsp, stats) = gsp(
        &ig.graph,
        query.source,
        query.target,
        &query.categories,
        &GspEngine::Ch(&ch),
    );
    let w_gsp = w_gsp.expect("feasible");
    println!(
        "\nGSP (k=1, CH engine): cost {} in {} graph searches, {:.2} ms",
        w_gsp.cost,
        stats.searches,
        stats.total.as_secs_f64() * 1e3
    );
    assert_eq!(w_gsp.cost, out.witnesses[0].cost, "GSP agrees with SK's #1");
}
