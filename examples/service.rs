//! The serving layer end to end: a mixed 1,200-query traffic stream pushed
//! through `kosr-service` on a multi-worker pool, cross-checked
//! bit-for-bit against the single-threaded `IndexedGraph::run` baseline.
//!
//! Demonstrates the whole subsystem: per-query planning (watch the method
//! mix in the output), the canonical-key LRU result cache soaking up the
//! hot set, admission control, and the aggregate `ServiceStats` (QPS,
//! p50/p99 latency, cache hit rate).
//!
//! ```text
//! cargo run --release --example service
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use kosr::core::{IndexedGraph, Query};
use kosr::service::{KosrService, QueryPlanner, ServiceConfig};
use kosr::workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn main() {
    // A directed road grid with 8 categories of 40 POIs each.
    let mut g = road_grid_directed(28, 28, 42);
    assign_uniform(&mut g, 8, 40, 7);
    println!(
        "world: {} vertices, {} edges, {} categories",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    );

    let t0 = std::time::Instant::now();
    let ig = Arc::new(IndexedGraph::build_default(g));
    println!("index build: {:.2?}\n", t0.elapsed());

    // A 1,200-query stream mixing four shape classes; half the traffic
    // revisits a hot set of 8 popular queries.
    let stream = gen_mixed_traffic(&ig.graph, 1200, &TrafficMix::default(), 9);
    let queries: Vec<Query> = stream
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();

    // Serve it on 4 workers.
    let service = KosrService::new(
        Arc::clone(&ig),
        ServiceConfig {
            workers: 4,
            queue_capacity: 2048,
            cache_capacity: 1024,
            ..Default::default()
        },
    );
    println!(
        "serving {} queries on {} workers ...",
        queries.len(),
        service.num_workers()
    );
    let responses = service.run_batch(&queries);

    // What did the planner decide?
    let mut methods: HashMap<&'static str, usize> = HashMap::new();
    for q in &queries {
        *methods.entry(service.plan(q).method.name()).or_default() += 1;
    }
    let mut mix: Vec<_> = methods.into_iter().collect();
    mix.sort();
    println!(
        "planner mix: {}",
        mix.iter()
            .map(|(m, n)| format!("{m}×{n}"))
            .collect::<Vec<_>>()
            .join("  ")
    );

    // Cross-check every response against the sequential canonical baseline
    // under the same plans: concurrency and caching must not change a
    // single route.
    let planner = QueryPlanner::default();
    let mut checked = 0usize;
    for (q, resp) in queries.iter().zip(&responses) {
        let resp = resp.as_ref().expect("workload admits and completes");
        let plan = planner.plan(&ig, q);
        let seq = ig.run_canonical(q, plan.method, plan.examined_budget);
        assert_eq!(resp.outcome.costs(), seq.costs(), "costs diverged");
        assert_eq!(
            resp.outcome
                .witnesses
                .iter()
                .map(|w| &w.vertices)
                .collect::<Vec<_>>(),
            seq.witnesses
                .iter()
                .map(|w| &w.vertices)
                .collect::<Vec<_>>(),
            "routes diverged"
        );
        checked += 1;
    }
    println!(
        "verified: {checked}/{} responses bit-identical to sequential runs\n",
        queries.len()
    );

    // The aggregate snapshot now includes per-method latency counters —
    // the observed-cost feedback planner calibration consumes.
    println!("{}", service.stats());
    let per_method = service.method_stats();
    let executed: u64 = per_method.iter().map(|m| m.completed).sum();
    for m in &per_method {
        println!(
            "calibration: {:>8} observed {} runs at p50 {:?} (planner picked it for {:.0}% of executed queries)",
            m.method.name(),
            m.completed,
            m.latency_p50,
            100.0 * m.completed as f64 / executed as f64,
        );
    }
}
