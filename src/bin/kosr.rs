//! `kosr` — command-line front end for top-k optimal sequenced route
//! queries over graphs in the native text format.
//!
//! ```text
//! kosr stats   --graph city.kosr
//! kosr query   --graph city.kosr -s 4 -t 981 -C MA,RE,CI -k 3 [--method sk]
//! kosr osr     --graph city.kosr -s 4 -t 981 -C MA,RE,CI            # k = 1 via GSP
//! kosr anyorder --graph city.kosr -s 4 -t 981 -C MA,RE,CI           # any visiting order
//! ```
//!
//! Categories are given by name or numeric id, comma separated. Methods:
//! `sk` (default), `pk`, `kpne`, `sk-dij`, `pk-dij`, `kpne-dij`.

use std::io::BufReader;
use std::process::exit;

use kosr::core::{arbitrary_order_osr, gsp, GspEngine, IndexedGraph, Method, Query};
use kosr::graph::{io, CategoryId, Graph, VertexId};

fn usage() -> ! {
    eprintln!(
        "usage:\n  kosr stats    --graph FILE\n  kosr query    --graph FILE -s SRC -t DST -C c1,c2,... [-k K] [--method M]\n  kosr osr      --graph FILE -s SRC -t DST -C c1,c2,...\n  kosr anyorder --graph FILE -s SRC -t DST -C c1,c2,...\nmethods: sk pk kpne sk-dij pk-dij kpne-dij"
    );
    exit(2);
}

struct Args {
    graph: Option<String>,
    source: Option<u32>,
    target: Option<u32>,
    categories: Vec<String>,
    k: usize,
    method: String,
}

fn parse_args(rest: &[String]) -> Args {
    let mut a = Args {
        graph: None,
        source: None,
        target: None,
        categories: Vec::new(),
        k: 3,
        method: "sk".into(),
    };
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize| {
            rest.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", rest[i]);
                usage()
            })
        };
        match rest[i].as_str() {
            "--graph" => {
                a.graph = Some(need(i).clone());
                i += 2;
            }
            "-s" | "--source" => {
                a.source = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "-t" | "--target" => {
                a.target = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "-C" | "--categories" => {
                a.categories = need(i).split(',').map(str::to_string).collect();
                i += 2;
            }
            "-k" => {
                a.k = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--method" => {
                a.method = need(i).to_lowercase();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    a
}

fn load_graph(path: &str) -> Graph {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    io::read_native(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn resolve_categories(g: &Graph, names: &[String]) -> Vec<CategoryId> {
    names
        .iter()
        .map(|name| {
            if let Some(c) = g.categories().category_by_name(name) {
                return c;
            }
            if let Ok(id) = name.parse::<u32>() {
                if (id as usize) < g.categories().num_categories() {
                    return CategoryId(id);
                }
            }
            eprintln!("unknown category '{name}'");
            exit(1);
        })
        .collect()
}

fn require_endpoints(g: &Graph, a: &Args) -> (VertexId, VertexId, Vec<CategoryId>) {
    let (Some(s), Some(t)) = (a.source, a.target) else {
        usage();
    };
    if s as usize >= g.num_vertices() || t as usize >= g.num_vertices() {
        eprintln!("source/target out of range (|V| = {})", g.num_vertices());
        exit(1);
    }
    if a.categories.is_empty() {
        usage();
    }
    (
        VertexId(s),
        VertexId(t),
        resolve_categories(g, &a.categories),
    )
}

fn print_witness(g: &Graph, rank: usize, w: &kosr::core::Witness) {
    let stops: Vec<String> = w
        .vertices
        .iter()
        .map(|&v| {
            let cats = g.categories().categories_of(v);
            if cats.is_empty() {
                format!("{v}")
            } else {
                format!("{v}[{}]", g.categories().name(cats[0]))
            }
        })
        .collect();
    println!("#{rank}  cost {:>8}  {}", w.cost, stops.join(" -> "));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv[0].as_str();
    let args = parse_args(&argv[1..]);
    let Some(graph_path) = args.graph.clone() else {
        usage();
    };
    let g = load_graph(&graph_path);

    match cmd {
        "stats" => {
            println!("vertices    {}", g.num_vertices());
            println!("edges       {}", g.num_edges());
            println!("categories  {}", g.categories().num_categories());
            println!("memberships {}", g.categories().num_memberships());
            let scc = kosr::graph::strongly_connected_components(&g);
            println!(
                "SCCs        {} (largest {})",
                scc.num_components,
                scc.largest().1
            );
            for c in 0..g.categories().num_categories() {
                let c = CategoryId(c as u32);
                println!(
                    "  category {:<12} |Ci| = {}",
                    g.categories().name(c),
                    g.categories().category_size(c)
                );
            }
        }
        "query" => {
            let (s, t, cats) = require_endpoints(&g, &args);
            let method = match args.method.as_str() {
                "sk" => Method::Sk,
                "pk" => Method::Pk,
                "kpne" => Method::Kpne,
                "sk-dij" => Method::SkDij,
                "pk-dij" => Method::PkDij,
                "kpne-dij" => Method::KpneDij,
                other => {
                    eprintln!("unknown method '{other}'");
                    usage();
                }
            };
            let q = Query::new(s, t, cats, args.k);
            if let Err(e) = q.validate(&g) {
                eprintln!("invalid query: {e}");
                exit(1);
            }
            eprintln!("building indexes ...");
            let ig = IndexedGraph::build_default(g);
            let out = ig.run(&q, method);
            if out.witnesses.is_empty() {
                println!("no feasible route");
                exit(3);
            }
            for (i, w) in out.witnesses.iter().enumerate() {
                print_witness(&ig.graph, i + 1, w);
            }
            eprintln!(
                "({} examined, {} NN queries, {:.2} ms)",
                out.stats.examined_routes,
                out.stats.nn_queries,
                out.stats.time.total.as_secs_f64() * 1e3
            );
        }
        "osr" => {
            let (s, t, cats) = require_endpoints(&g, &args);
            let (w, stats) = gsp(&g, s, t, &cats, &GspEngine::Dijkstra);
            match w {
                Some(w) => {
                    print_witness(&g, 1, &w);
                    eprintln!(
                        "(GSP: {} graph searches, {:.2} ms)",
                        stats.searches,
                        stats.total.as_secs_f64() * 1e3
                    );
                }
                None => {
                    println!("no feasible route");
                    exit(3);
                }
            }
        }
        "anyorder" => {
            let (s, t, cats) = require_endpoints(&g, &args);
            let (w, stats) = arbitrary_order_osr(&g, s, t, &cats);
            match w {
                Some(w) => {
                    print_witness(&g, 1, &w);
                    eprintln!(
                        "(subset DP: {} sweeps, {:.2} ms)",
                        stats.sweeps,
                        stats.total.as_secs_f64() * 1e3
                    );
                }
                None => {
                    println!("no feasible route");
                    exit(3);
                }
            }
        }
        _ => usage(),
    }
}
