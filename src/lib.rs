//! # kosr — Top-k Optimal Sequenced Routes
//!
//! Facade crate re-exporting the whole workspace: a production-quality Rust
//! reproduction of *Finding Top-k Optimal Sequenced Routes* (Liu, Jin, Yang,
//! Zhou — ICDE 2018, arXiv:1802.08014).
//!
//! A KOSR query `(s, t, C, k)` finds the `k` cheapest routes from `s` to `t`
//! that visit one vertex of each category of `C = ⟨C1, …, Cj⟩` in order, on a
//! general directed graph whose weights need not satisfy the triangle
//! inequality.
//!
//! ```
//! use kosr::graph::{GraphBuilder, VertexId};
//! use kosr::core::figure1;
//!
//! // The paper's running example (Figure 1): top-3 routes cost 20, 21, 22.
//! let fx = figure1::figure1();
//! let g = &fx.graph;
//! assert_eq!(g.num_vertices(), 8);
//! ```
//!
//! Module map (one per workspace crate):
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR graph, categories, I/O |
//! | [`pathfinding`] | Dijkstra toolkit, resumable k-NN search |
//! | [`ch`] | contraction hierarchies + PHAST sweeps |
//! | [`hoplabel`] | 2-hop labeling (pruned landmark labeling) |
//! | [`index`] | inverted label index, `FindNN`, `FindNEN` |
//! | [`core`] | KPNE, PruningKOSR, StarKOSR, PNE, GSP |
//! | [`workloads`] | synthetic graphs, categories, query + traffic generators |
//! | [`service`] | concurrent serving: planner, result cache, batch executor, live updates |
//! | [`shard`] | partitioned multi-replica serving: fan-out routing, top-k merge, update bus |
//! | [`transport`] | wire-protocol shard transport: frames, TCP/in-proc replicas, health/failover, snapshots |
//! | [`gateway`] | HTTP edge: JSON query API, admission control, fleet-wide Prometheus `/metrics` |

#![forbid(unsafe_code)]

pub use kosr_ch as ch;
pub use kosr_core as core;
pub use kosr_gateway as gateway;
pub use kosr_graph as graph;
pub use kosr_hoplabel as hoplabel;
pub use kosr_index as index;
pub use kosr_pathfinding as pathfinding;
pub use kosr_service as service;
pub use kosr_shard as shard;
pub use kosr_transport as transport;
pub use kosr_workloads as workloads;
